#!/usr/bin/env bash
# Checks that intra-repo markdown links resolve to real files. No
# network: external (http/https/mailto) targets and GitHub-relative
# targets (leading ../, e.g. the CI badge's ../../actions/... link) are
# skipped. Run from the repository root; CI runs it in the docs job.
set -euo pipefail

broken=$(
  for file in README.md ROADMAP.md PAPER.md PAPERS.md CHANGES.md docs/*.md compat/README.md; do
    [ -f "$file" ] || continue
    dir=$(dirname "$file")
    # Pull every ](target) out of the file, one target per line. Keying
    # on the closing bracket (not the whole [text](target) form) also
    # catches the outer target of badge-style nested links like
    # [![img](badge)](target). (`|| true`: a file with no links is fine
    # under pipefail.)
    { grep -o ']([^)]*)' "$file" || true; } | sed 's/^](\(.*\))$/\1/' |
      while IFS= read -r target; do
        target=${target%%#*} # strip fragment
        case "$target" in
          '' | http://* | https://* | mailto:* | ../*) continue ;;
        esac
        if [ ! -e "$dir/$target" ]; then
          echo "BROKEN: $file -> $target"
        fi
      done
  done
)

if [ -n "$broken" ]; then
  echo "$broken"
  echo "markdown link check failed"
  exit 1
fi
echo "markdown links ok"
