//! The paper's quantitative claims, checked end to end at moderate batch
//! size. These are the same invariants the benchmark harnesses print;
//! here they gate the test suite.

use lessismore::core::{
    evaluate, evaluate_parallel, normalize_against, plan_dfsdt, DfsdtConfig, Pipeline, Policy,
    SearchLevels,
};
use lessismore::device::DeviceProfile;
use lessismore::llm::{ModelProfile, Quant};
use lessismore::workloads::{bfcl, geoengine};

const N: usize = 120;
const SEED: u64 = 20_250_331;

fn llama() -> ModelProfile {
    ModelProfile::by_name("llama3.1-8b").expect("model exists")
}

#[test]
fn table1_quant_ordering_reproduces_on_the_full_pipeline() {
    // Table I: BFCL success collapses monotonically with quantization
    // aggressiveness; full precision is far ahead.
    let workload = bfcl(SEED, N);
    let levels = SearchLevels::build(&workload);
    let model = llama();
    let success = |quant| {
        evaluate(
            &Pipeline::new(&workload, &levels, &model, quant).with_seed(SEED),
            Policy::Default,
        )
        .success_rate
    };
    let f16 = success(Quant::F16);
    let q4_0 = success(Quant::Q4_0);
    let q4_km = success(Quant::Q4KM);
    let q8_0 = success(Quant::Q8_0);
    assert!(
        f16 > q8_0 && q8_0 > q4_0,
        "f16 {f16:.2} q8 {q8_0:.2} q4_0 {q4_0:.2}"
    );
    assert!(q4_km > q4_0);
    // Within ±8 points of the paper's absolute numbers.
    for (got, want) in [
        (f16, 0.6304),
        (q4_0, 0.2043),
        (q4_km, 0.3957),
        (q8_0, 0.4435),
    ] {
        assert!((got - want).abs() < 0.08, "got {got:.3}, paper {want:.3}");
    }
}

#[test]
fn table2_configuration_ladder_reproduces() {
    // Table II: fewer tools cut time a lot; a smaller context cuts both
    // time and power further.
    let workload = geoengine(SEED, N);
    let levels = SearchLevels::build(&workload);
    let model = llama();
    let pipeline = Pipeline::new(&workload, &levels, &model, Quant::Q4KM).with_seed(SEED);
    let all: Vec<usize> = (0..workload.registry.len()).collect();

    let mut totals = [(0.0f64, 0.0f64); 3];
    for query in &workload.queries {
        let reduced: Vec<usize> = query
            .steps
            .iter()
            .filter_map(|s| workload.registry.index_of(&s.tool))
            .chain(0..12)
            .collect::<std::collections::BTreeSet<usize>>()
            .into_iter()
            .collect();
        for (slot, offered, ctx) in [
            (0, &all, 16_384u32),
            (1, &reduced, 16_384),
            (2, &reduced, 8_192),
        ] {
            let r = pipeline.run_query_offered(query, offered, ctx);
            totals[slot].0 += r.cost.seconds;
            totals[slot].1 += r.cost.joules;
        }
    }
    let time = |i: usize| totals[i].0 / N as f64;
    let power = |i: usize| totals[i].1 / totals[i].0;
    assert!(time(1) < 0.8 * time(0), "{} vs {}", time(1), time(0));
    assert!(time(2) < time(1));
    assert!(power(2) < power(1));
    // Paper's max drops: −43% time, −19% power. Accept the same order.
    let time_drop = 1.0 - time(2) / time(0);
    let power_drop = 1.0 - power(2) / power(0);
    assert!(time_drop > 0.30, "time drop {time_drop:.2}");
    assert!(power_drop > 0.08, "power drop {power_drop:.2}");
}

#[test]
#[ignore = "slow full-figure sweep; CI runs it in the ignored-tests job (cargo test -- --ignored)"]
fn figure2_shape_for_all_six_models() {
    // For every model: LiM is never slower than default, never draws more
    // power, and for every model except Mistral improves success.
    let workload = bfcl(SEED, N);
    let levels = SearchLevels::build(&workload);
    for model in lessismore::llm::profiles::catalog() {
        let pipeline = Pipeline::new(&workload, &levels, &model, Quant::Q4KM).with_seed(SEED);
        // Sharded evaluation is bit-identical to sequential (see
        // lim_core::evaluate_parallel), so the sweep can use all cores.
        let default = evaluate_parallel(&pipeline, Policy::Default, 0);
        let lim = evaluate_parallel(&pipeline, Policy::less_is_more(3), 0);
        let (time, power) = normalize_against(&default, &lim);
        assert!(time < 0.75, "{}: norm time {time:.2}", model.name);
        assert!(power < 1.0, "{}: norm power {power:.2}", model.name);
        if model.name != "mistral-8b" {
            assert!(
                lim.success_rate > default.success_rate,
                "{}: {:.3} vs {:.3}",
                model.name,
                lim.success_rate,
                default.success_rate
            );
        } else {
            assert!(
                (lim.success_rate - default.success_rate).abs() < 0.1,
                "mistral should stay flat"
            );
        }
    }
}

#[test]
#[ignore = "slow full-figure sweep; CI runs it in the ignored-tests job (cargo test -- --ignored)"]
fn figure3_shape_for_the_four_kept_models() {
    let workload = geoengine(SEED, N);
    let levels = SearchLevels::build(&workload);
    for name in ["hermes2-pro-8b", "llama3.1-8b", "mistral-8b", "qwen2-7b"] {
        let model = ModelProfile::by_name(name).expect("model exists");
        // Average over the four Ollama quants, as the paper's per-model
        // summaries do — single-variant draws are too noisy to resolve
        // the small GeoEngine gains (llama: 53.2% → 56%).
        let mut d_succ = 0.0;
        let mut g_succ = 0.0;
        let mut l_succ = 0.0;
        let mut time_ratio = 0.0;
        for quant in Quant::OLLAMA {
            let pipeline = Pipeline::new(&workload, &levels, &model, quant).with_seed(SEED);
            let default = evaluate_parallel(&pipeline, Policy::Default, 0);
            let gorilla = evaluate_parallel(&pipeline, Policy::Gorilla { k: 3 }, 0);
            let lim = evaluate_parallel(&pipeline, Policy::less_is_more(3), 0);
            d_succ += default.success_rate / 4.0;
            g_succ += gorilla.success_rate / 4.0;
            l_succ += lim.success_rate / 4.0;
            time_ratio += normalize_against(&default, &lim).0 / 4.0;
        }
        assert!(
            l_succ >= d_succ - 0.03,
            "{name}: LiM {l_succ:.3} vs default {d_succ:.3}"
        );
        assert!(
            g_succ < l_succ,
            "{name}: gorilla must lose on sequential chains"
        );
        // GeoEngine time cuts are present but smaller than BFCL's.
        assert!(time_ratio < 1.05, "{name}: norm time {time_ratio:.2}");
    }
}

#[test]
fn figure3_exclusion_of_small_models_reproduces() {
    let workload = geoengine(SEED, N);
    let levels = SearchLevels::build(&workload);
    for name in ["phi3-8b", "qwen2-1.5b"] {
        let model = ModelProfile::by_name(name).expect("model exists");
        let pipeline = Pipeline::new(&workload, &levels, &model, Quant::Q4KM).with_seed(SEED);
        let default = evaluate(&pipeline, Policy::Default);
        assert!(
            default.success_rate < 0.2,
            "{name}: default geo success {:.3} should collapse to ≈10%",
            default.success_rate
        );
    }
}

#[test]
fn toolllm_gate_reproduces() {
    let workload = geoengine(SEED, 10);
    let small = DeviceProfile::new(
        "orin-32gb",
        32 * 1024 * 1024 * 1024,
        133.0e9,
        20.0e12,
        9.0,
        1.23e-12,
        60.0e-12,
        267.0e-12,
    );
    assert!(plan_dfsdt(
        &workload,
        &llama(),
        Quant::Q4KM,
        &small,
        &DfsdtConfig::default()
    )
    .is_err());
    let plan = plan_dfsdt(
        &workload,
        &llama(),
        Quant::Q4KM,
        &DeviceProfile::jetson_agx_orin(),
        &DfsdtConfig::default(),
    )
    .expect("fits on 64 GB");
    assert!(
        plan.seconds_per_query > 100.0,
        "DFSDT must be impractically slow"
    );
}

#[test]
fn levels_preference_matches_benchmark_structure() {
    let model = ModelProfile::by_name("hermes2-pro-8b").expect("model exists");
    let b = bfcl(SEED, N);
    let bl = SearchLevels::build(&b);
    let bfcl_lim = evaluate(
        &Pipeline::new(&b, &bl, &model, Quant::Q4KM).with_seed(SEED),
        Policy::less_is_more(3),
    );
    assert!(
        bfcl_lim.level1_share > 0.5,
        "BFCL L1 share {:.2}",
        bfcl_lim.level1_share
    );

    let g = geoengine(SEED, N);
    let gl = SearchLevels::build(&g);
    let geo_lim = evaluate(
        &Pipeline::new(&g, &gl, &model, Quant::Q4KM).with_seed(SEED),
        Policy::less_is_more(3),
    );
    assert!(
        geo_lim.level2_share > 0.5,
        "Geo L2 share {:.2}",
        geo_lim.level2_share
    );
}
