//! Reproducibility: every layer of the stack is a pure function of its
//! seeds, so full experiment tables can be regenerated bit-for-bit.

use lessismore::core::{evaluate, Pipeline, Policy, SearchLevels};
use lessismore::llm::{ModelProfile, Quant};
use lessismore::workloads::{augment::augment, augment::AugmentConfig, bfcl, geoengine};

#[test]
fn workloads_are_pure_functions_of_seed() {
    let a = bfcl(77, 50);
    let b = bfcl(77, 50);
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.train_queries, b.train_queries);
    let g1 = geoengine(77, 50);
    let g2 = geoengine(77, 50);
    assert_eq!(g1.queries, g2.queries);
}

#[test]
fn augmentation_and_levels_are_deterministic() {
    let w = geoengine(12, 40);
    let cfg = AugmentConfig::default();
    assert_eq!(augment(&w, &cfg), augment(&w, &cfg));
    let l1 = SearchLevels::build(&w);
    let l2 = SearchLevels::build(&w);
    assert_eq!(l1.clusters().len(), l2.clusters().len());
    for (a, b) in l1.clusters().iter().zip(l2.clusters()) {
        assert_eq!(a.tool_indices, b.tool_indices);
        assert_eq!(a.centroid, b.centroid);
    }
}

#[test]
fn full_evaluations_are_bit_identical() {
    let w = bfcl(13, 40);
    let levels = SearchLevels::build(&w);
    let model = ModelProfile::by_name("phi3-8b").expect("model exists");
    for policy in [
        Policy::Default,
        Policy::Gorilla { k: 3 },
        Policy::less_is_more(5),
    ] {
        let p1 = Pipeline::new(&w, &levels, &model, Quant::Q4_1).with_seed(5);
        let p2 = Pipeline::new(&w, &levels, &model, Quant::Q4_1).with_seed(5);
        let m1 = evaluate(&p1, policy);
        let m2 = evaluate(&p2, policy);
        assert_eq!(m1, m2, "policy {}", policy.label());
    }
}

#[test]
fn distinct_policies_draw_decorrelated_outcomes() {
    // The per-attempt seed derivation must not alias across policies,
    // models or quants — otherwise comparisons would be artificially
    // correlated.
    let w = bfcl(14, 60);
    let levels = SearchLevels::build(&w);
    let model = ModelProfile::by_name("llama3.1-8b").expect("model exists");
    let pipeline = Pipeline::new(&w, &levels, &model, Quant::Q4KM);

    let default: Vec<bool> = pipeline
        .run_all(Policy::Default)
        .iter()
        .map(|r| r.success)
        .collect();
    let gorilla: Vec<bool> = pipeline
        .run_all(Policy::Gorilla { k: 51 })
        .iter()
        .map(|r| r.success)
        .collect();
    // Same offered-tool count (Gorilla with k = catalog size ⇒ all tools)
    // but a different policy tag ⇒ different draws.
    assert_ne!(default, gorilla);
}

#[test]
fn changing_the_seed_changes_outcomes_but_not_structure() {
    let w = geoengine(15, 40);
    let levels = SearchLevels::build(&w);
    let model = ModelProfile::by_name("qwen2-7b").expect("model exists");
    let m1 = evaluate(
        &Pipeline::new(&w, &levels, &model, Quant::Q8_0).with_seed(1),
        Policy::less_is_more(3),
    );
    let m2 = evaluate(
        &Pipeline::new(&w, &levels, &model, Quant::Q8_0).with_seed(2),
        Policy::less_is_more(3),
    );
    // Outcome rates move (different draws)…
    assert_ne!(
        (m1.success_rate, m1.avg_seconds),
        (m2.success_rate, m2.avg_seconds)
    );
    // …but the averages stay in the same statistical neighbourhood.
    assert!((m1.success_rate - m2.success_rate).abs() < 0.25);
}
