//! Integration proof of the sharded batch-evaluation engine: for every
//! policy, benchmark and thread count, the parallel path produces results
//! bit-identical to the sequential path through the public facade.

use lessismore::core::{
    evaluate, evaluate_parallel, shard_bounds, sharded_map, Pipeline, Policy, SearchLevels,
};
use lessismore::llm::{ModelProfile, Quant};
use lessismore::workloads::{bfcl, geoengine};

#[test]
fn parallel_evaluation_is_bit_identical_on_both_benchmarks() {
    for (workload, quant) in [(bfcl(9, 40), Quant::Q4KM), (geoengine(9, 40), Quant::Q8_0)] {
        let levels = SearchLevels::build(&workload);
        let model = ModelProfile::by_name("llama3.1-8b").expect("model exists");
        let pipeline = Pipeline::new(&workload, &levels, &model, quant).with_seed(5);
        for policy in [
            Policy::Default,
            Policy::Gorilla { k: 3 },
            Policy::less_is_more(3),
        ] {
            let sequential = evaluate(&pipeline, policy);
            for threads in [1, 2, 5, 8] {
                let parallel = evaluate_parallel(&pipeline, policy, threads);
                // PartialEq on f64 fields: equal means equal bits here,
                // since both sides are finite and non-zero by construction.
                assert_eq!(
                    sequential,
                    parallel,
                    "{} / {} / {threads} threads",
                    workload.name,
                    policy.label()
                );
            }
        }
    }
}

#[test]
fn parallel_per_query_results_match_in_order() {
    let workload = bfcl(31, 33);
    let levels = SearchLevels::build(&workload);
    let model = ModelProfile::by_name("qwen2-7b").expect("model exists");
    let pipeline = Pipeline::new(&workload, &levels, &model, Quant::Q4_1);
    let sequential = pipeline.run_all(Policy::less_is_more(3));
    let parallel = pipeline.run_all_parallel(Policy::less_is_more(3), 4);
    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.query_id, p.query_id, "canonical order must be preserved");
        assert_eq!(s.cost.seconds.to_bits(), p.cost.seconds.to_bits());
        assert_eq!(s.cost.joules.to_bits(), p.cost.joules.to_bits());
        assert_eq!(s, p);
    }
}

#[test]
fn sharding_utilities_compose_through_the_facade() {
    // The generic executor is public API: downstream users can shard
    // their own embarrassingly parallel work with the same guarantees.
    let items: Vec<u64> = (0..57).collect();
    let out = sharded_map(&items, 0, |ix, &x| x * 3 + ix as u64);
    assert_eq!(out, items.iter().map(|&x| x * 4).collect::<Vec<u64>>());
    let bounds = shard_bounds(230, 8);
    assert_eq!(bounds.len(), 8);
    assert_eq!(bounds.iter().map(std::ops::Range::len).sum::<usize>(), 230);
}
