//! Integration tests for the deployment-oriented features: persisted
//! offline artifacts, execution traces and repeated-evaluation statistics.

use lessismore::core::{
    evaluate, evaluate_repeated, load_levels, save_levels, Pipeline, Policy, SearchLevels,
};
use lessismore::llm::{ModelProfile, Quant};
use lessismore::workloads::{bfcl, geoengine};

#[test]
fn persisted_levels_reproduce_pipeline_results_exactly() {
    // Build → save → load → run: the reloaded artifact must drive the
    // exact same evaluation as the freshly built one.
    let workload = geoengine(42, 40);
    let built = SearchLevels::build(&workload);
    let doc_text = save_levels(&built).to_string();
    let reloaded =
        load_levels(&lessismore::json::parse(&doc_text).expect("valid JSON")).expect("loads");

    let model = ModelProfile::by_name("hermes2-pro-8b").expect("model exists");
    let from_built = evaluate(
        &Pipeline::new(&workload, &built, &model, Quant::Q4KM).with_seed(9),
        Policy::less_is_more(3),
    );
    let from_loaded = evaluate(
        &Pipeline::new(&workload, &reloaded, &model, Quant::Q4KM).with_seed(9),
        Policy::less_is_more(3),
    );
    assert_eq!(from_built, from_loaded);
}

#[test]
fn artifact_is_a_reasonable_size_for_edge_shipping() {
    // 51 tools + ~24 clusters of 768-d vectors as JSON: megabytes, not
    // gigabytes — shippable next to the model weights.
    let workload = bfcl(1, 20);
    let levels = SearchLevels::build(&workload);
    let bytes = save_levels(&levels).to_string().len();
    assert!(bytes > 100_000, "suspiciously small artifact: {bytes} B");
    assert!(bytes < 30_000_000, "artifact too large to ship: {bytes} B");
}

#[test]
fn traces_aggregate_to_batch_metrics() {
    // Summing per-trace outcomes must agree with the batch evaluation —
    // the trace is a faithful record, not a parallel implementation.
    let workload = bfcl(11, 30);
    let levels = SearchLevels::build(&workload);
    let model = ModelProfile::by_name("qwen2-7b").expect("model exists");
    let pipeline = Pipeline::new(&workload, &levels, &model, Quant::Q8_0);
    let policy = Policy::less_is_more(3);

    let batch = evaluate(&pipeline, policy);
    let mut successes = 0usize;
    let mut seconds = 0.0f64;
    for query in &workload.queries {
        let (result, trace) = pipeline.run_query_traced(query, policy);
        successes += usize::from(result.success);
        seconds += result.cost.seconds;
        // The trace phases account for the full bill.
        let trace_seconds: f64 = trace.phases.iter().map(|p| p.seconds).sum();
        assert!((trace_seconds - result.cost.seconds).abs() < 1e-9);
    }
    assert!((batch.success_rate - successes as f64 / 30.0).abs() < 1e-12);
    assert!((batch.avg_seconds - seconds / 30.0).abs() < 1e-9);
}

#[test]
fn repeated_evaluation_brackets_the_single_run() {
    let workload = bfcl(13, 40);
    let levels = SearchLevels::build(&workload);
    let model = ModelProfile::by_name("llama3.1-8b").expect("model exists");
    let pipeline = Pipeline::new(&workload, &levels, &model, Quant::Q4KM);
    let seeds: Vec<u64> = (100..108).collect();
    let repeated = evaluate_repeated(&pipeline, Policy::Default, &seeds);
    assert_eq!(repeated.runs, 8);
    // The analytic expectation for this cell sits near Table I's 39.57%;
    // the CI over 8 × 40 queries must bracket a plausible neighbourhood.
    let lo = repeated.success_rate.mean - repeated.success_rate.half_width - 0.1;
    let hi = repeated.success_rate.mean + repeated.success_rate.half_width + 0.1;
    assert!(
        lo < 0.3957 && 0.3957 < hi,
        "CI [{lo:.3}, {hi:.3}] vs paper 0.3957"
    );
    // Latency CI should be tight (latency varies less than success).
    assert!(repeated.avg_seconds.half_width < repeated.avg_seconds.mean * 0.2);
}

#[test]
fn trace_json_exports_all_steps_of_a_chain() {
    let workload = geoengine(17, 20);
    let levels = SearchLevels::build(&workload);
    let model = ModelProfile::by_name("mistral-8b").expect("model exists");
    let pipeline = Pipeline::new(&workload, &levels, &model, Quant::Q4_1);
    let query = workload
        .queries
        .iter()
        .find(|q| q.steps.len() >= 3)
        .expect("a chain");
    let (result, trace) = pipeline.run_query_traced(query, Policy::Default);
    // Default policy never breaks the chain early except on error signal,
    // which cannot happen when all tools are offered.
    assert_eq!(trace.steps.len(), query.steps.len());
    let doc = trace.to_json();
    let steps = doc
        .get("steps")
        .and_then(lessismore::json::Value::as_array)
        .expect("steps");
    assert_eq!(steps.len(), query.steps.len());
    for (step_doc, gold) in steps.iter().zip(&query.steps) {
        assert_eq!(
            step_doc
                .get("expected_tool")
                .and_then(lessismore::json::Value::as_str),
            Some(gold.tool.as_str())
        );
        assert_eq!(
            step_doc
                .get("offered")
                .and_then(lessismore::json::Value::as_i64),
            Some(46)
        );
    }
    let _ = result;
}
