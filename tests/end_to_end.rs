//! Cross-crate integration: the full offline→online path through the
//! `lessismore` facade, exercising every substrate together.

use lessismore::core::{
    ControllerConfig, Pipeline, Policy, SearchLevel, SearchLevels, ToolController,
};
use lessismore::embed::Embedder;
use lessismore::llm::{recommender::recommend_descriptions, ModelProfile, Quant};
use lessismore::vecstore::VectorIndex;
use lessismore::workloads::{bfcl, geoengine};

#[test]
fn offline_artifacts_are_consistent_across_crates() {
    let workload = geoengine(3, 40);
    let levels = SearchLevels::build(&workload);

    // Level 1 indexes exactly the registry.
    assert_eq!(levels.tool_index().len(), workload.registry.len());

    // Every cluster's tools exist in the registry, and together the
    // clusters cover a decent share of the catalog.
    let mut covered: Vec<usize> = levels
        .clusters()
        .iter()
        .flat_map(|c| c.tool_indices.iter().copied())
        .collect();
    covered.sort_unstable();
    covered.dedup();
    assert!(covered.iter().all(|i| *i < workload.registry.len()));
    assert!(
        covered.len() * 2 >= workload.registry.len(),
        "clusters cover only {}/{} tools",
        covered.len(),
        workload.registry.len()
    );

    // Centroids are unit-norm embeddings of the right dimensionality.
    for c in levels.clusters() {
        assert_eq!(c.centroid.dim(), Embedder::new().dim());
        assert!(!c.centroid.is_zero());
    }
}

#[test]
fn recommender_output_flows_through_controller_to_valid_subsets() {
    let workload = bfcl(5, 40);
    let levels = SearchLevels::build(&workload);
    let controller = ToolController::new(&levels, ControllerConfig::with_k(3));
    let model = ModelProfile::by_name("qwen2-7b").expect("model exists");

    for (i, query) in workload.queries.iter().take(20).enumerate() {
        let descs: Vec<String> = query
            .steps
            .iter()
            .filter_map(|s| workload.registry.get_by_name(&s.tool))
            .map(|t| t.description().to_owned())
            .collect();
        let refs: Vec<&str> = descs.iter().map(String::as_str).collect();
        let recs = recommend_descriptions(&model, Quant::Q8_0, &query.text, &refs, i as u64);
        let selection = controller.select(&query.text, &recs);

        // Tool indices are always valid and deduplicated.
        let mut seen = selection.tool_indices.clone();
        seen.sort_unstable();
        let before = seen.len();
        seen.dedup();
        assert_eq!(seen.len(), before, "duplicate tool offered");
        assert!(seen.iter().all(|t| *t < workload.registry.len()));

        // The subset renders to valid JSON that the registry can parse back.
        let rendered = workload.registry.render_subset(&selection.tool_indices);
        let parsed = lessismore::json::parse(&rendered.to_string()).expect("valid JSON");
        assert_eq!(
            parsed.as_array().map(|a| a.len()),
            Some(selection.tool_indices.len())
        );
    }
}

#[test]
fn gold_retrieval_recall_is_high_for_capable_models() {
    // The controller must put the gold tool in front of the agent for the
    // vast majority of queries — otherwise Less-is-More's gains would be
    // an artifact of the simulator rather than of retrieval quality.
    let workload = bfcl(9, 60);
    let levels = SearchLevels::build(&workload);
    let controller = ToolController::new(&levels, ControllerConfig::with_k(3));
    let model = ModelProfile::by_name("hermes2-pro-8b").expect("model exists");

    let mut hits = 0;
    for (i, query) in workload.queries.iter().enumerate() {
        let descs: Vec<String> = query
            .steps
            .iter()
            .filter_map(|s| workload.registry.get_by_name(&s.tool))
            .map(|t| t.description().to_owned())
            .collect();
        let refs: Vec<&str> = descs.iter().map(String::as_str).collect();
        let recs = recommend_descriptions(&model, Quant::Q4KM, &query.text, &refs, i as u64);
        let selection = controller.select(&query.text, &recs);
        let gold = workload
            .registry
            .index_of(&query.steps[0].tool)
            .expect("gold exists");
        if selection.tool_indices.contains(&gold) {
            hits += 1;
        }
    }
    let recall = f64::from(hits) / workload.queries.len() as f64;
    assert!(recall > 0.9, "gold recall {recall:.2}");
}

#[test]
fn level3_fallback_requires_no_search_artifacts() {
    // Level 3 must always be available even for a workload with no
    // training queries (no clusters can be built).
    let mut workload = bfcl(2, 10);
    workload.train_queries.clear();
    let levels = SearchLevels::build(&workload);
    assert_eq!(levels.clusters().len(), 0);
    let controller = ToolController::new(&levels, ControllerConfig::default());
    let selection = controller.select("whatever the user asks", &["gibberish".to_owned()]);
    // With no Level-2 space the controller still produces a usable
    // selection (Level 1 or the full set — never an empty offer).
    assert!(!selection.tool_indices.is_empty());
}

#[test]
fn pipeline_runs_all_models_and_quants_without_panic() {
    let workload = bfcl(4, 6);
    let levels = SearchLevels::build(&workload);
    for model in lessismore::llm::profiles::catalog() {
        for quant in Quant::ALL {
            let pipeline = Pipeline::new(&workload, &levels, &model, quant);
            for policy in [
                Policy::Default,
                Policy::Gorilla { k: 3 },
                Policy::less_is_more(3),
            ] {
                let results = pipeline.run_all(policy);
                assert_eq!(results.len(), 6);
                for r in &results {
                    assert!(r.cost.seconds > 0.0);
                    assert!(r.cost.joules > 0.0);
                    assert!(r.offered_tools > 0);
                }
            }
        }
    }
}

#[test]
fn confidence_fallback_reaches_level_3_on_garbage_recommendations() {
    let workload = bfcl(6, 10);
    let levels = SearchLevels::build(&workload);
    let controller = ToolController::new(&levels, ControllerConfig::default());
    let selection = controller.select(
        "zzzz",
        &["qqqq wwww eeee".to_owned(), "rrrr tttt yyyy".to_owned()],
    );
    assert_eq!(selection.level, SearchLevel::Full);
    assert_eq!(selection.tool_indices.len(), workload.registry.len());
}
