//! Policy sweep over the BFCL-like benchmark for one model: prints the
//! paper's four metrics for default / Gorilla / Less-is-More, per
//! quantization variant. A miniature of the Figure 2 harness that runs in
//! seconds.
//!
//! ```sh
//! cargo run --release --example bfcl_sweep [model-name]
//! ```

use lessismore::core::{evaluate, normalize_against, Pipeline, Policy, SearchLevels};
use lessismore::llm::{ModelProfile, Quant};
use lessismore::workloads::bfcl;

fn main() {
    let model_name = std::env::args().nth(1).unwrap_or_else(|| "qwen2-7b".into());
    let model = ModelProfile::by_name(&model_name).unwrap_or_else(|| {
        eprintln!("unknown model {model_name}; available:");
        for m in lessismore::llm::profiles::catalog() {
            eprintln!("  {}", m.name);
        }
        std::process::exit(1);
    });

    let workload = bfcl(99, 120);
    let levels = SearchLevels::build(&workload);
    println!(
        "{:<8} {:<12} {:>8} {:>9} {:>10} {:>11} {:>7}",
        "quant", "policy", "success", "tool-acc", "norm-time", "norm-power", "tools"
    );
    for quant in Quant::OLLAMA {
        let pipeline = Pipeline::new(&workload, &levels, &model, quant);
        let baseline = evaluate(&pipeline, Policy::Default);
        for policy in [
            Policy::Default,
            Policy::Gorilla { k: 3 },
            Policy::less_is_more(3),
            Policy::less_is_more(5),
        ] {
            let metrics = evaluate(&pipeline, policy);
            let (time, power) = normalize_against(&baseline, &metrics);
            println!(
                "{:<8} {:<12} {:>7.1}% {:>8.1}% {:>9.2}x {:>10.2}x {:>7.1}",
                quant.label(),
                policy.label(),
                100.0 * metrics.success_rate,
                100.0 * metrics.tool_accuracy,
                time,
                power,
                metrics.avg_offered_tools
            );
        }
    }
}
