//! Quickstart: build the search levels for a benchmark, run one query
//! under the default and the Less-is-More policies, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lessismore::core::{ControllerConfig, Pipeline, Policy, SearchLevels, ToolController};
use lessismore::llm::{recommender::recommend_descriptions, ModelProfile, Quant};
use lessismore::workloads::bfcl;

fn main() {
    // 1. A benchmark: 51 tools, single-call queries with gold labels.
    let workload = bfcl(42, 20);
    println!(
        "workload: {} tools, {} queries",
        workload.registry.len(),
        workload.queries.len()
    );

    // 2. Offline stage: build all three search levels.
    let levels = SearchLevels::build(&workload);
    println!(
        "levels: {} tools in level-1, {} clusters in level-2",
        levels.tool_count(),
        levels.clusters().len()
    );

    // 3. Pick an edge model and quantization.
    let model = ModelProfile::by_name("llama3.1-8b").expect("model exists");
    let quant = Quant::Q4KM;
    let pipeline = Pipeline::new(&workload, &levels, &model, quant);

    // 4. Peek inside the online stage for the first query.
    let query = &workload.queries[0];
    println!("\nquery: {}", query.text);
    let gold_descs: Vec<String> = query
        .steps
        .iter()
        .filter_map(|s| workload.registry.get_by_name(&s.tool))
        .map(|t| t.description().to_owned())
        .collect();
    let gold_refs: Vec<&str> = gold_descs.iter().map(String::as_str).collect();
    let recs = recommend_descriptions(&model, quant, &query.text, &gold_refs, 7);
    println!("recommender suggested: {recs:?}");
    let controller = ToolController::new(&levels, ControllerConfig::with_k(3));
    let selection = controller.select(&query.text, &recs);
    println!(
        "controller: {} with {} tools (L1 score {:.3}, L2 score {:.3})",
        selection.level,
        selection.tool_indices.len(),
        selection.level1_score,
        selection.level2_score
    );

    // 5. Execute under both policies and compare cost.
    let default = pipeline.run_query(query, Policy::Default);
    let lim = pipeline.run_query(query, Policy::less_is_more(3));
    println!(
        "\ndefault     : success={} tools={} time={:.1}s power={:.1}W",
        default.success,
        default.offered_tools,
        default.cost.seconds,
        default.cost.avg_watts()
    );
    println!(
        "less-is-more: success={} tools={} time={:.1}s power={:.1}W",
        lim.success,
        lim.offered_tools,
        lim.cost.seconds,
        lim.cost.avg_watts()
    );
}
