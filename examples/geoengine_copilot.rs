//! A geospatial copilot session — the workload class from the paper's
//! motivating example ("Plot the fmow VQA captions in UK from Fall 2009").
//!
//! Walks a sequential GeoEngine-style query through the full
//! Less-is-More pipeline and prints a step-by-step trace: recommender
//! output, level arbitration, the offered tool subset, per-step outcomes
//! and the energy/latency bill, contrasted with vanilla function calling.
//!
//! ```sh
//! cargo run --release --example geoengine_copilot
//! ```

use lessismore::core::{ControllerConfig, Pipeline, Policy, SearchLevels, ToolController};
use lessismore::llm::{recommender::recommend_descriptions, ModelProfile, Quant};
use lessismore::workloads::geoengine;

fn main() {
    let workload = geoengine(7, 60);
    println!(
        "GeoEngine-like workload: {} tools, {} sequential queries (mean chain {:.2})",
        workload.registry.len(),
        workload.queries.len(),
        workload.mean_chain_len()
    );

    println!("\n-- offline stage ------------------------------------------------");
    let levels = SearchLevels::build(&workload);
    println!(
        "built Search Levels: {} tool embeddings (Level 1), {} co-usage clusters (Level 2)",
        levels.tool_count(),
        levels.clusters().len()
    );
    for cluster in levels.clusters().iter().take(4) {
        let names: Vec<&str> = cluster
            .tool_indices
            .iter()
            .filter_map(|i| workload.registry.get(*i))
            .map(|t| t.name())
            .collect();
        println!("  cluster {:>2}: {}", cluster.id, names.join(", "));
    }
    println!("  ...");

    println!("\n-- online stage -------------------------------------------------");
    let model = ModelProfile::by_name("hermes2-pro-8b").expect("model exists");
    let quant = Quant::Q4KM;
    let query = workload
        .queries
        .iter()
        .find(|q| q.category == "vqa-mapping")
        .expect("vqa-mapping recipe present");
    println!("user: {}", query.text);
    println!("gold chain: {}", query.gold_tools().join(" -> "));

    let gold_descs: Vec<String> = query
        .steps
        .iter()
        .filter_map(|s| workload.registry.get_by_name(&s.tool))
        .map(|t| t.description().to_owned())
        .collect();
    let gold_refs: Vec<&str> = gold_descs.iter().map(String::as_str).collect();
    let recs = recommend_descriptions(&model, quant, &query.text, &gold_refs, 11);
    println!(
        "\nrecommender (no tools attached) proposed {} ideal tools:",
        recs.len()
    );
    for r in &recs {
        println!("  - {r}");
    }

    let controller = ToolController::new(&levels, ControllerConfig::with_k(3));
    let selection = controller.select(&query.text, &recs);
    println!(
        "\ncontroller: {} (L1 {:.3} vs L2 {:.3}) -> {} tools offered",
        selection.level,
        selection.level1_score,
        selection.level2_score,
        selection.tool_indices.len()
    );
    let offered: Vec<&str> = selection
        .tool_indices
        .iter()
        .filter_map(|i| workload.registry.get(*i))
        .map(|t| t.name())
        .collect();
    println!("offered: {}", offered.join(", "));

    println!("\n-- execution ----------------------------------------------------");
    let pipeline = Pipeline::new(&workload, &levels, &model, quant);
    let lim = pipeline.run_query(query, Policy::less_is_more(3));
    let vanilla = pipeline.run_query(query, Policy::Default);
    println!(
        "less-is-more: success={} tool_correct={} time={:.1}s energy={:.0}J power={:.1}W",
        lim.success,
        lim.tool_correct,
        lim.cost.seconds,
        lim.cost.joules,
        lim.cost.avg_watts()
    );
    println!(
        "default     : success={} tool_correct={} time={:.1}s energy={:.0}J power={:.1}W",
        vanilla.success,
        vanilla.tool_correct,
        vanilla.cost.seconds,
        vanilla.cost.joules,
        vanilla.cost.avg_watts()
    );
    println!(
        "\nsavings: {:.0}% time, {:.0}% energy",
        100.0 * (1.0 - lim.cost.seconds / vanilla.cost.seconds),
        100.0 * (1.0 - lim.cost.joules / vanilla.cost.joules)
    );
}
