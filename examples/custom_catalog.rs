//! Bring-your-own tools: wires a custom smart-home tool catalog into the
//! Less-is-More machinery — the adoption path for a downstream user who
//! has an agent with their own APIs rather than a benchmark.
//!
//! Shows catalog definition with `lim-tools`, workload assembly (a few
//! training utterances are enough to seed Level-2 clustering), level
//! construction and controller decisions for fresh user requests.
//!
//! ```sh
//! cargo run --release --example custom_catalog
//! ```

use lessismore::core::{ControllerConfig, SearchLevels, ToolController};
use lessismore::json::Value;
use lessismore::tools::{ParamSpec, ParamType, ToolRegistry, ToolSpec};
use lessismore::workloads::{GoldStep, Query, Workload, WorkloadKind};

fn catalog() -> ToolRegistry {
    let specs = [
        (
            "lights_on",
            "lighting",
            "Turns on the lights in a room",
            vec!["room"],
        ),
        (
            "lights_off",
            "lighting",
            "Turns off the lights in a room",
            vec!["room"],
        ),
        (
            "set_brightness",
            "lighting",
            "Sets the light brightness level of a room",
            vec!["room", "level"],
        ),
        (
            "set_thermostat",
            "climate",
            "Sets the target temperature of the thermostat",
            vec!["temperature"],
        ),
        (
            "read_thermostat",
            "climate",
            "Reads the current temperature inside the house",
            vec![],
        ),
        (
            "start_vacuum",
            "cleaning",
            "Starts the robot vacuum cleaning a room",
            vec!["room"],
        ),
        (
            "dock_vacuum",
            "cleaning",
            "Sends the robot vacuum back to its dock",
            vec![],
        ),
        (
            "play_music",
            "media",
            "Plays music by a given artist on the speakers",
            vec!["artist"],
        ),
        ("stop_music", "media", "Stops the music playback", vec![]),
        (
            "lock_door",
            "security",
            "Locks a door of the house",
            vec!["door"],
        ),
        (
            "unlock_door",
            "security",
            "Unlocks a door of the house",
            vec!["door"],
        ),
        (
            "camera_snapshot",
            "security",
            "Takes a snapshot from a security camera",
            vec!["camera"],
        ),
    ];
    ToolRegistry::from_specs(specs.into_iter().map(|(name, category, desc, params)| {
        let mut builder = ToolSpec::builder(name).description(desc).category(category);
        for p in params {
            builder = builder.param(ParamSpec::required(p, ParamType::String, "argument"));
        }
        builder.build()
    }))
    .expect("catalog names are unique")
}

/// A few historical utterances with their known tool chains — this is all
/// Level 2 needs to learn which tools are co-used.
fn training_queries() -> Vec<Query> {
    let sessions: [(&str, &str, Vec<&str>); 8] = [
        (
            "movie night: dim the lights and play some jazz",
            "media",
            vec!["set_brightness", "play_music"],
        ),
        (
            "bedtime — lights off and lock the front door",
            "security",
            vec!["lights_off", "lock_door"],
        ),
        (
            "clean the kitchen and then dock the vacuum",
            "cleaning",
            vec!["start_vacuum", "dock_vacuum"],
        ),
        (
            "is it cold inside? set the thermostat to something cozy",
            "climate",
            vec!["read_thermostat", "set_thermostat"],
        ),
        (
            "party mode: bright lights and loud music",
            "media",
            vec!["set_brightness", "play_music"],
        ),
        (
            "leaving home: lock up and take a camera snapshot",
            "security",
            vec!["lock_door", "camera_snapshot"],
        ),
        (
            "vacuum the living room please",
            "cleaning",
            vec!["start_vacuum"],
        ),
        (
            "good night — everything off, doors locked",
            "security",
            vec!["lights_off", "stop_music", "lock_door"],
        ),
    ];
    sessions
        .into_iter()
        .enumerate()
        .map(|(i, (text, category, tools))| Query {
            id: i as u64,
            text: text.to_owned(),
            category: category.to_owned(),
            steps: tools
                .into_iter()
                .map(|t| GoldStep {
                    tool: t.to_owned(),
                    args: Value::object::<&str, _>([]),
                })
                .collect(),
        })
        .collect()
}

fn main() {
    let workload = Workload {
        name: "smart-home",
        kind: WorkloadKind::Sequential,
        registry: catalog(),
        queries: Vec::new(),
        train_queries: training_queries(),
    };
    let levels = SearchLevels::build(&workload);
    println!(
        "smart-home catalog: {} tools -> {} co-usage clusters",
        levels.tool_count(),
        levels.clusters().len()
    );
    for cluster in levels.clusters() {
        let names: Vec<&str> = cluster
            .tool_indices
            .iter()
            .filter_map(|i| workload.registry.get(*i))
            .map(|t| t.name())
            .collect();
        println!("  cluster {}: {}", cluster.id, names.join(", "));
    }

    // Calibrate the confidence threshold to your own catalog: with a
    // dozen terse tool descriptions the cosine scale sits lower than on
    // the paper benchmarks, so the fallback floor comes down with it.
    let config = ControllerConfig {
        k: 2,
        fallback_threshold: 0.22,
    };
    let controller = ToolController::new(&levels, config);
    // In production the recommendations come from your on-device LLM
    // prompted with *no* tools (§III-B); here we hand-write two requests.
    let cases = [
        (
            "movie night: set the mood in the living room",
            vec![
                "a tool that dims the lights or sets their brightness in a room".to_owned(),
                "a tool that plays music by an artist on the speakers".to_owned(),
            ],
        ),
        (
            "did I leave the back door open?",
            vec!["a tool that takes a snapshot from a security camera".to_owned()],
        ),
    ];
    for (query, recs) in cases {
        let selection = controller.select(query, &recs);
        let names: Vec<&str> = selection
            .tool_indices
            .iter()
            .filter_map(|i| workload.registry.get(*i))
            .map(|t| t.name())
            .collect();
        println!(
            "\nquery: {query}\n  -> {} ({} tools): {}",
            selection.level,
            names.len(),
            names.join(", ")
        );
        println!(
            "  prompt payload: {} chars instead of {} (full catalog)",
            workload.registry.prompt_chars(&selection.tool_indices),
            workload
                .registry
                .prompt_chars(&(0..workload.registry.len()).collect::<Vec<_>>())
        );
    }
}
