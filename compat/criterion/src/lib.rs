//! Offline drop-in subset of the `criterion` crate.
//!
//! The build environment has no crates.io access, so this shim provides
//! the benchmarking surface the workspace's `micro` bench uses:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a plain warmup + timed-batch loop reporting mean and
//! best iteration time — adequate for the "is this negligible next to an
//! LLM decode step" comparisons the harness makes, without the real
//! crate's statistical machinery. Results print to stdout; there is no
//! HTML report.

use std::time::{Duration, Instant};

/// Re-export so existing `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Target wall-clock time for one measurement, nanoseconds.
const MEASURE_TARGET_NS: u128 = 200_000_000;
/// Warmup budget, nanoseconds.
const WARMUP_TARGET_NS: u128 = 50_000_000;
/// Hard cap on measured iterations (keeps ultra-fast benches bounded).
const MAX_ITERS: u64 = 1_000_000;

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepts and ignores harness CLI arguments (`--bench`, filters, …),
    /// mirroring the real builder method.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut body);
        self
    }

    /// Opens a named group; member benchmarks print as `group/member`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
        }
    }
}

/// A labelled set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b| body(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A `function_name/parameter` pair naming one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds the id from a function name and a displayable parameter.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

/// Timing loop driver passed to benchmark closures.
pub struct Bencher {
    /// (iterations, elapsed) of the measured batch.
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    /// Measures `body`: warms up, sizes a batch, then times it.
    pub fn iter<O, F>(&mut self, mut body: F)
    where
        F: FnMut() -> O,
    {
        // Warmup, and estimate per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed().as_nanos() < WARMUP_TARGET_NS && warmup_iters < MAX_ITERS {
            black_box(body());
            warmup_iters += 1;
        }
        let per_iter_ns =
            (warmup_start.elapsed().as_nanos() / u128::from(warmup_iters.max(1))).max(1);
        let iters = u64::try_from(MEASURE_TARGET_NS / per_iter_ns)
            .unwrap_or(MAX_ITERS)
            .clamp(1, MAX_ITERS);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(body());
        }
        self.measured = Some((iters, start.elapsed()));
    }
}

fn run_one(label: &str, body: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { measured: None };
    body(&mut bencher);
    match bencher.measured {
        Some((iters, elapsed)) => {
            let mean_ns = elapsed.as_nanos() as f64 / iters as f64;
            println!("{label:<40} {:>12} /iter  ({iters} iters)", fmt_ns(mean_ns));
        }
        None => println!("{label:<40} (no measurement: Bencher::iter never called)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default().configure_from_args();
        c.bench_function("smoke/add", |b| b.iter(|| black_box(2u64) + black_box(3)));
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 3)
        });
        g.finish();
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(12_300.0), "12.30 µs");
        assert_eq!(fmt_ns(12_300_000.0), "12.30 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }
}
