//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so this clean-room shim
//! supplies the slice of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (multiple `#[test]` fns with `arg in strategy`
//!   bindings) and the [`prop_assert!`] / [`prop_assert_eq!`] macros;
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive`, `boxed`,
//!   plus [`strategy::Just`], [`prop_oneof!`] unions, numeric range
//!   strategies and regex-subset string strategies;
//! * [`collection`] strategies (`vec`, `btree_map`, `btree_set`);
//! * [`arbitrary::any`] for primitives.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its inputs and panics as-is) and a fixed deterministic seed per test
//! name, so failures always reproduce. Case count defaults to 48 and can
//! be overridden with `PROPTEST_CASES`.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Mirror of the real crate's `prop` facade module (`prop::collection::…`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// One-stop import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that runs the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_cases = $crate::test_runner::case_count();
                for __pt_case in 0..__pt_cases {
                    let mut __pt_rng =
                        $crate::test_runner::case_rng(stringify!($name), __pt_case);
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __pt_rng);)+
                    let mut __pt_inputs = ::std::string::String::new();
                    $(
                        ::std::fmt::Write::write_fmt(
                            &mut __pt_inputs,
                            format_args!("  {} = {:?}\n", stringify!($arg), &$arg),
                        )
                        .expect("write to string");
                    )+
                    let __pt_result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __pt_result {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:\n{}",
                            __pt_case + 1,
                            __pt_cases,
                            e,
                            __pt_inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current property-test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property-test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if !(*__pt_l == *__pt_r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __pt_l,
                __pt_r
            )));
        }
    }};
}

/// Fails the current property-test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if *__pt_l == *__pt_r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __pt_l
            )));
        }
    }};
}

/// Uniform choice between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
