//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Accepted size arguments: a fixed length or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut StdRng) -> usize {
        if self.min + 1 >= self.max {
            self.min
        } else {
            rng.random_range(self.min..self.max)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec()`](fn@vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap` with a target size drawn from `size`.
///
/// Key collisions are retried a bounded number of times, so very tight key
/// domains may yield slightly fewer entries than requested.
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

/// Output of [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.draw(rng);
        let mut map = BTreeMap::new();
        let mut attempts = 0;
        while map.len() < target && attempts < target * 10 + 16 {
            let key = self.keys.generate(rng);
            map.entry(key).or_insert_with(|| self.values.generate(rng));
            attempts += 1;
        }
        map
    }
}

/// Strategy for `BTreeSet` with a target size drawn from `size`.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.draw(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target * 10 + 16 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn vec_respects_size_bounds() {
        let strat = vec(0u32..100, 2..5);
        let mut rng = case_rng("vec_respects_size_bounds", 0);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn fixed_size_is_exact() {
        let strat = vec(0u32..100, 4usize);
        let mut rng = case_rng("fixed_size_is_exact", 0);
        assert_eq!(strat.generate(&mut rng).len(), 4);
    }

    #[test]
    fn sets_and_maps_hit_targets_with_wide_domains() {
        let mut rng = case_rng("sets_and_maps", 0);
        let set = btree_set(0u64..1_000_000, 5..6).generate(&mut rng);
        assert_eq!(set.len(), 5);
        let map = btree_map(0u64..1_000_000, 0u32..10, 3..4).generate(&mut rng);
        assert_eq!(map.len(), 3);
    }
}
