//! `any::<T>()` for the primitive types the workspace generates.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{Rng, StandardSample};
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl<T: StandardSample> Arbitrary for T {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T` (uniform over the whole domain
/// for integers and `bool`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
