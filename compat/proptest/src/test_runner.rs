//! Deterministic case scheduling for the [`crate::proptest!`] macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A failed property-test case (carried out of the test body by the
/// `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: String) -> Self {
        Self { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Number of cases each property test runs: `PROPTEST_CASES` or 48.
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// Deterministic per-case RNG: seeded from the test name and case index,
/// so every failure reproduces without a persistence file.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the name, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn case_rngs_are_stable_and_distinct() {
        let a: u64 = case_rng("t", 0).random();
        let b: u64 = case_rng("t", 0).random();
        let c: u64 = case_rng("t", 1).random();
        let d: u64 = case_rng("u", 0).random();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
