//! Regex-subset string generation.
//!
//! The real crate interprets `&str` strategies as full regexes. This shim
//! implements the subset the workspace's patterns use: literal characters,
//! character classes with ranges and escapes, groups, the `\PC`
//! ("not a control character") class, and `{m}` / `{m,n}` / `*` / `+` /
//! `?` repetitions. Unsupported syntax panics with a clear message so a
//! new pattern fails loudly rather than generating the wrong language.

use rand::rngs::StdRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    /// Inclusive character ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
    Group(Vec<Repeat>),
    /// `\PC` — any character outside the Unicode control category.
    NotControl,
}

#[derive(Debug, Clone)]
struct Repeat {
    node: Node,
    min: u32,
    max: u32,
}

/// Characters drawn for `\PC`: printable ASCII plus a few multibyte
/// code points so UTF-8 handling gets exercised.
const NOT_CONTROL_EXTRA: [char; 6] = ['é', 'ß', '中', '文', '😀', '∑'];

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on regex syntax outside the supported subset.
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let nodes = parse_sequence(&mut pattern.chars().peekable(), pattern, false);
    let mut out = String::new();
    for rep in &nodes {
        emit(rep, rng, &mut out);
    }
    out
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn parse_sequence(chars: &mut Chars<'_>, pattern: &str, in_group: bool) -> Vec<Repeat> {
    let mut nodes = Vec::new();
    while let Some(&c) = chars.peek() {
        if c == ')' {
            assert!(in_group, "unbalanced ')' in pattern {pattern:?}");
            chars.next();
            return nodes;
        }
        chars.next();
        let node = match c {
            '[' => parse_class(chars, pattern),
            '(' => Node::Group(parse_sequence(chars, pattern, true)),
            '\\' => parse_escape(chars, pattern),
            '|' | '*' | '+' | '?' | '{' | '}' | ']' | '.' | '^' | '$' => {
                panic!("unsupported regex syntax {c:?} in pattern {pattern:?}")
            }
            lit => Node::Lit(lit),
        };
        let (min, max) = parse_repetition(chars, pattern);
        nodes.push(Repeat { node, min, max });
    }
    assert!(!in_group, "unbalanced '(' in pattern {pattern:?}");
    nodes
}

fn parse_escape(chars: &mut Chars<'_>, pattern: &str) -> Node {
    match chars.next() {
        Some('P') => {
            // Only the \PC (non-control) category is supported.
            match chars.next() {
                Some('C') => Node::NotControl,
                other => panic!("unsupported \\P category {other:?} in {pattern:?}"),
            }
        }
        Some('n') => Node::Lit('\n'),
        Some('t') => Node::Lit('\t'),
        Some('r') => Node::Lit('\r'),
        Some(c @ ('\\' | '"' | '\'' | '(' | ')' | '[' | ']' | '{' | '}' | '.' | '-' | ' ')) => {
            Node::Lit(c)
        }
        other => panic!("unsupported escape \\{other:?} in {pattern:?}"),
    }
}

fn parse_class(chars: &mut Chars<'_>, pattern: &str) -> Node {
    let mut ranges = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
        match c {
            ']' => {
                if let Some(p) = pending {
                    ranges.push((p, p));
                }
                assert!(!ranges.is_empty(), "empty class in {pattern:?}");
                return Node::Class(ranges);
            }
            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                let lo = pending.take().expect("pending start");
                let hi = class_char(chars, pattern);
                assert!(lo <= hi, "inverted range {lo:?}-{hi:?} in {pattern:?}");
                ranges.push((lo, hi));
            }
            _ => {
                if let Some(p) = pending.replace(resolve_class_char(c, chars, pattern)) {
                    ranges.push((p, p));
                }
            }
        }
    }
}

fn class_char(chars: &mut Chars<'_>, pattern: &str) -> char {
    let c = chars
        .next()
        .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
    resolve_class_char(c, chars, pattern)
}

fn resolve_class_char(c: char, chars: &mut Chars<'_>, pattern: &str) -> char {
    if c != '\\' {
        return c;
    }
    match chars.next() {
        Some('n') => '\n',
        Some('t') => '\t',
        Some('r') => '\r',
        Some(e @ ('\\' | '"' | '\'' | ']' | '[' | '-' | '^')) => e,
        other => panic!("unsupported class escape \\{other:?} in {pattern:?}"),
    }
}

fn parse_repetition(chars: &mut Chars<'_>, pattern: &str) -> (u32, u32) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    let (min, max) = match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.parse().expect("repetition min"),
                            hi.parse().expect("repetition max"),
                        ),
                        None => {
                            let n = spec.parse().expect("repetition count");
                            (n, n)
                        }
                    };
                    assert!(min <= max, "inverted repetition in {pattern:?}");
                    return (min, max);
                }
                spec.push(c);
            }
            panic!("unterminated repetition in {pattern:?}")
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        _ => (1, 1),
    }
}

fn emit(rep: &Repeat, rng: &mut StdRng, out: &mut String) {
    let count = if rep.min == rep.max {
        rep.min
    } else {
        rng.random_range(rep.min..=rep.max)
    };
    for _ in 0..count {
        match &rep.node {
            Node::Lit(c) => out.push(*c),
            Node::Class(ranges) => {
                let (lo, hi) = ranges[rng.random_range(0..ranges.len())];
                let span = hi as u32 - lo as u32 + 1;
                let pick = lo as u32 + rng.random_range(0..span);
                // Class ranges in the supported patterns never straddle
                // the surrogate gap.
                out.push(char::from_u32(pick).expect("valid scalar in class range"));
            }
            Node::Group(nodes) => {
                for inner in nodes {
                    emit(inner, rng, out);
                }
            }
            Node::NotControl => {
                // Mostly printable ASCII, occasionally multibyte.
                if rng.random_range(0..10) == 0 {
                    let ix = rng.random_range(0..NOT_CONTROL_EXTRA.len());
                    out.push(NOT_CONTROL_EXTRA[ix]);
                } else {
                    out.push(char::from_u32(rng.random_range(0x20u32..0x7F)).expect("ascii"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::case_rng;

    #[test]
    fn word_lists_match_shape() {
        let mut rng = case_rng("word_lists_match_shape", 0);
        for _ in 0..100 {
            let s = generate("[a-z]{3,10}( [a-z]{3,10}){0,8}", &mut rng);
            for word in s.split(' ') {
                assert!((3..=10).contains(&word.len()), "bad word {word:?} in {s:?}");
                assert!(word.chars().all(|c| c.is_ascii_lowercase()));
            }
        }
    }

    #[test]
    fn classes_with_escapes_and_controls() {
        let mut rng = case_rng("classes_with_escapes", 0);
        for _ in 0..100 {
            let s = generate("[a-zA-Z0-9 _\\\\\"\n\t]{0,24}", &mut rng);
            assert!(s.chars().count() <= 24);
            for c in s.chars() {
                assert!(
                    c.is_ascii_alphanumeric() || " _\\\"\n\t".contains(c),
                    "unexpected {c:?}"
                );
            }
        }
    }

    #[test]
    fn not_control_class_is_printable() {
        let mut rng = case_rng("not_control", 0);
        for _ in 0..50 {
            let s = generate("\\PC{0,64}", &mut rng);
            assert!(s.chars().count() <= 64);
            assert!(s.chars().all(|c| !c.is_control()), "control char in {s:?}");
        }
    }

    #[test]
    fn fixed_repetition_is_exact() {
        let mut rng = case_rng("fixed_rep", 0);
        let s = generate("[a-f]{4}x", &mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.ends_with('x'));
    }

    #[test]
    #[should_panic(expected = "unsupported regex syntax")]
    fn unsupported_syntax_panics() {
        let mut rng = case_rng("unsupported", 0);
        let _ = generate("a|b", &mut rng);
    }
}
