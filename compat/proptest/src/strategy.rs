//! The [`Strategy`] trait and the combinators the workspace uses.

use rand::distr::{HalfOpen, SampleUniform};
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no value tree / shrinking: `generate`
/// draws a finished value directly from the given RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Builds a recursive strategy: `self` is the leaf case, and `recurse`
    /// wraps an inner strategy into the branch case. `depth` bounds the
    /// nesting; the size hints of the real API are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = Union::new(vec![leaf.clone(), recurse(strat).boxed()]).boxed();
        }
        strat
    }
}

/// Object-safe façade so strategies can be boxed.
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice over several boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let ix = rng.random_range(0..self.arms.len());
        self.arms[ix].generate(rng)
    }
}

impl<T: SampleUniform + HalfOpen + Clone + 'static> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T: SampleUniform + Clone + 'static> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// String literals are regex-subset strategies, as in the real crate.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn map_and_union_compose() {
        let strat = crate::prop_oneof![Just(0u32), (10u32..20).prop_map(|x| x * 2),];
        let mut rng = case_rng("map_and_union_compose", 0);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v == 0 || (20..40).contains(&v), "bad value {v}");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u32),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u32..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = case_rng("recursive_strategies_terminate", 1);
        for _ in 0..100 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 8, "tree too deep: {t:?}");
        }
    }
}
