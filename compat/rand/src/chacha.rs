//! ChaCha block function (D. J. Bernstein's public-domain algorithm),
//! fixed at 12 rounds — the variant the real `StdRng` uses.

/// Emits the keystream of ChaCha12 as a sequence of `u32` words.
#[derive(Debug, Clone)]
pub struct ChaCha12 {
    /// Key + constant + counter/nonce state (16 words).
    state: [u32; 16],
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next word index into `block`; 16 forces a refill.
    index: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl ChaCha12 {
    /// Builds the generator from a 256-bit key; counter and nonce start
    /// at zero.
    pub fn new(key: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Words 12..16 (block counter + nonce) stay zero.
        Self {
            state,
            block: [0; 16],
            index: 16,
        }
    }

    #[inline]
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..6 {
            // Two rounds per loop: one column, one diagonal.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12/13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    /// Next keystream word.
    #[inline]
    pub fn next_word(&mut self) -> u32 {
        if self.index == 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::ChaCha12;

    #[test]
    fn stream_is_deterministic_and_nontrivial() {
        let mut a = ChaCha12::new([7; 32]);
        let mut b = ChaCha12::new([7; 32]);
        let wa: Vec<u32> = (0..40).map(|_| a.next_word()).collect();
        let wb: Vec<u32> = (0..40).map(|_| b.next_word()).collect();
        assert_eq!(wa, wb);
        // Crosses a block boundary and keeps changing.
        assert_ne!(&wa[..16], &wa[16..32]);
        let mut c = ChaCha12::new([8; 32]);
        assert_ne!(wa[0], c.next_word());
    }
}
