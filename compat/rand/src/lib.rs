//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the external `rand` dependency is satisfied by this small, clean-room,
//! API-compatible implementation of exactly the surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a ChaCha12-based seedable generator (the same
//!   algorithm family the real `StdRng` uses);
//! * [`SeedableRng`] — `from_seed` / `seed_from_u64`, with the same
//!   PCG32-based seed-expansion as `rand_core`;
//! * [`Rng`] — `random::<T>()` and `random_range(range)` for the integer
//!   and float types the workspace samples.
//!
//! Everything is deterministic given a seed, which is the only property the
//! workspace actually relies on (see `DESIGN.md` in the repository root).

pub mod distr;
pub mod rngs;

mod chacha;

pub use distr::{SampleRange, SampleUniform, StandardSample};

/// Low-level source of randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it to a full seed with
    /// a PCG32 stream (the same expansion `rand_core` uses, so seeds keep
    /// their meaning if the real crate is ever swapped back in).
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let word = pcg32(&mut state);
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T` (uniform over
    /// the type's range; `[0, 1)` for floats).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.random_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let y = rng.random_range(1990i32..=2023);
            assert!((1990..=2023).contains(&y));
            let z = rng.random_range(5u64..=5000);
            assert!((5..=5000).contains(&z));
        }
    }

    #[test]
    fn range_distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[rng.random_range(0usize..4)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "skewed counts {counts:?}");
        }
    }

    #[test]
    fn bool_probability_tracks_p() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }
}
