//! Named generator types.

use crate::chacha::ChaCha12;
use crate::{RngCore, SeedableRng};

/// The workspace's standard seedable generator (ChaCha12 keystream).
#[derive(Debug, Clone)]
pub struct StdRng {
    core: ChaCha12,
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.core.next_word()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.core.next_word());
        let hi = u64::from(self.core.next_word());
        hi << 32 | lo
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self {
            core: ChaCha12::new(seed),
        }
    }
}
