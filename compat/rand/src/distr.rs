//! Standard and uniform-range sampling for the primitive types the
//! workspace draws.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types samplable by [`crate::Rng::random`].
pub trait StandardSample {
    /// Draws one value from the type's standard distribution.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for i32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl StandardSample for i64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision — the same
    /// `(u64 >> 11) · 2⁻⁵³` mapping the real crate uses.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (rng.next_u64() >> 11) as f64 * SCALE
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        const SCALE: f32 = 1.0 / (1u32 << 24) as f32;
        (rng.next_u32() >> 8) as f32 * SCALE
    }
}

/// Types with uniform range sampling ([`crate::Rng::random_range`]).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased integer draw from `[0, range)` via Lemire's widening-multiply
/// rejection method; `range == 0` means the full 2⁶⁴ span.
fn lemire_u64<R: RngCore>(rng: &mut R, range: u64) -> u64 {
    if range == 0 {
        return rng.next_u64();
    }
    let threshold = range.wrapping_neg() % range;
    loop {
        let wide = u128::from(rng.next_u64()) * u128::from(range);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! uniform_int {
    ($ty:ty, $unsigned:ty) => {
        impl SampleUniform for $ty {
            fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                // Width of the inclusive range as u64; 0 encodes "whole
                // 64-bit span" for the widest case.
                let span = (high as $unsigned).wrapping_sub(low as $unsigned) as u64;
                let range = span.wrapping_add(1);
                let draw = lemire_u64(rng, range);
                low.wrapping_add(draw as $ty)
            }
        }
    };
}

uniform_int!(u8, u8);
uniform_int!(u16, u16);
uniform_int!(u32, u32);
uniform_int!(u64, u64);
uniform_int!(usize, usize);
uniform_int!(i8, u8);
uniform_int!(i16, u16);
uniform_int!(i32, u32);
uniform_int!(i64, u64);
uniform_int!(isize, usize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        let x: f64 = StandardSample::sample(rng);
        low + x * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        let x: f32 = StandardSample::sample(rng);
        low + x * (high - low)
    }
}

/// Range forms accepted by [`crate::Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + HalfOpen> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(rng, self.start, self.end.predecessor())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Types whose half-open upper bound has a well-defined predecessor.
pub trait HalfOpen {
    /// The largest value strictly below `self`.
    fn predecessor(self) -> Self;
}

macro_rules! half_open_int {
    ($($ty:ty),*) => {
        $(impl HalfOpen for $ty {
            fn predecessor(self) -> Self {
                self - 1
            }
        })*
    };
}

half_open_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl HalfOpen for f64 {
    /// Floats keep the half-open semantics directly: the standard draw is
    /// in `[0, 1)`, so scaling by `high − low` never reaches `high`.
    fn predecessor(self) -> Self {
        self
    }
}

impl HalfOpen for f32 {
    fn predecessor(self) -> Self {
        self
    }
}
