//! Less-is-More — facade crate.
//!
//! Re-exports the workspace crates under one roof so applications can
//! depend on a single `lessismore` crate. The architecture follows the
//! paper "Less is More: Optimizing Function Calling for LLM Execution on
//! Edge Devices" (DATE 2025); see `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the reproduced tables and figures.
//!
//! # Examples
//!
//! ```
//! use lessismore::core::{Pipeline, Policy, SearchLevels};
//! use lessismore::llm::{ModelProfile, Quant};
//!
//! let workload = lessismore::workloads::bfcl(1, 5);
//! let levels = SearchLevels::build(&workload);
//! let model = ModelProfile::by_name("qwen2-7b").expect("model exists");
//! let pipeline = Pipeline::new(&workload, &levels, &model, Quant::Q4KM);
//! let result = pipeline.run_query(&workload.queries[0], Policy::less_is_more(3));
//! assert!(result.cost.seconds > 0.0);
//! ```

pub mod cli;

/// Benchmark-sweep grid runner and `BENCH_*.json` reporting.
pub use lim_bench as bench;
/// Agglomerative clustering and ROUGE scoring.
pub use lim_cluster as cluster;
/// The paper's search levels, controller, pipeline and metrics.
pub use lim_core as core;
/// Edge-device (Jetson AGX Orin) timing/power/memory model.
pub use lim_device as device;
/// Deterministic 768-d sentence embeddings.
pub use lim_embed as embed;
/// Minimal JSON tree, parser and writer.
pub use lim_json as json;
/// Calibrated edge-LLM behaviour and cost simulator.
pub use lim_llm as llm;
/// Long-lived cache-accelerated serving engine with session traces.
pub use lim_serve as serve;
/// Tool schemas, registry and call validation.
pub use lim_tools as tools;
/// Flat and IVF vector indexes.
pub use lim_vecstore as vecstore;
/// BFCL-like and GeoEngine-like benchmark workloads.
pub use lim_workloads as workloads;
