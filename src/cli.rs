//! Command-line parsing for the `lim` binary.
//!
//! The binary used to hand-roll one flat `Options` struct and a single
//! `parse` loop inline; every subcommand read the same bag of fields.
//! This module keeps the zero-dependency flag loop but groups the flags
//! into typed blocks — [`IndexFlags`], [`AdmissionFlags`],
//! [`SnapshotFlags`] — so a subcommand's signature says which knobs it
//! actually consumes, and the resolution helpers (flag → `IndexSpec`,
//! flag → `AdmissionConfig`) live next to the flags they read.
//!
//! The `--help` text is hand-maintained; [`help_text`] is asserted
//! against the parser's own source by a unit test here, so a new flag
//! cannot land undocumented.

use crate::core::{IndexSpec, Policy};
use crate::device::DeviceKind;
use crate::llm::Quant;
use crate::serve::{AdmissionConfig, GovernorConfig, ShedPolicy};
use crate::vecstore::{HnswParams, IvfParams};
use crate::workloads::trace::ArrivalProcess;

/// Level-1 vector-index backend selection (`--index` plus the HNSW
/// knobs). Meaningful wherever levels are built: `evaluate`, `bench`,
/// `trace`, `levels`, `snapshot build`, and cold-boot `loadgen`/`serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexFlags {
    /// Backend name: `"flat"`, `"ivf"` or `"hnsw"`.
    pub index: String,
    /// HNSW per-layer degree override (`--hnsw-m`).
    pub hnsw_m: Option<usize>,
    /// HNSW construction beam width override (`--ef-construction`).
    pub ef_construction: Option<usize>,
    /// HNSW query-time beam width override (`--ef-search`).
    pub ef_search: Option<usize>,
}

impl Default for IndexFlags {
    fn default() -> Self {
        Self {
            index: "flat".into(),
            hnsw_m: None,
            ef_construction: None,
            ef_search: None,
        }
    }
}

impl IndexFlags {
    /// Resolves the flags into the backend spec the level build uses.
    /// The HNSW knobs are meaningful for `hnsw` only; on the other
    /// backends they are ignored (the ann curve applies them to its HNSW
    /// cell regardless of `--index`).
    pub fn spec(&self) -> IndexSpec {
        match self.index.as_str() {
            "ivf" => IndexSpec::Ivf(IvfParams::default()),
            "hnsw" => IndexSpec::Hnsw(self.hnsw()),
            _ => IndexSpec::Flat,
        }
    }

    /// The HNSW parameter block with any CLI overrides applied.
    pub fn hnsw(&self) -> HnswParams {
        let mut params = HnswParams::default();
        if let Some(m) = self.hnsw_m {
            params.m = m;
        }
        if let Some(ef) = self.ef_construction {
            params.ef_construction = ef;
        }
        if let Some(ef) = self.ef_search {
            params.ef_search = ef;
        }
        params
    }
}

/// Energy flags: the device profile every simulated request is costed
/// on (`--device`, honored uniformly by `evaluate`, `bench`, `loadgen`
/// and `serve`) and the power-budget governor knobs for `loadgen` /
/// `serve` (`--power-cap-w`, `--carbon-trace`, `--carbon-budget`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyFlags {
    /// Device profile the energy model bills phase costs on.
    pub device: DeviceKind,
    /// Sustained-watts cap the governor enforces (0 = ungoverned).
    pub power_cap_w: f64,
    /// Seed for the deterministic carbon-intensity trace.
    pub carbon_trace: u64,
    /// Carbon budget in grams CO₂ per hour (0 = no carbon cap).
    pub carbon_budget_g_per_h: f64,
}

impl EnergyFlags {
    /// The engine-side governor configuration these flags select.
    pub fn governor(&self) -> GovernorConfig {
        GovernorConfig {
            power_cap_w: self.power_cap_w,
            carbon_seed: self.carbon_trace,
            carbon_budget_g_per_h: self.carbon_budget_g_per_h,
            ..GovernorConfig::default()
        }
    }
}

/// Admission-control and arrival-process flags for `loadgen` / `serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionFlags {
    /// Arrival process for `loadgen` (trace generation) and `serve`
    /// (deterministic re-stamp of the loaded trace). `None` keeps the
    /// trace's own process (back-to-back for `loadgen`) — re-stamping is
    /// strictly opt-in, so a trace's recorded timestamps are honored
    /// unless the operator explicitly asks otherwise.
    pub arrivals: Option<ArrivalProcess>,
    /// Bounded admission-queue capacity (0 = admission disabled).
    pub queue_depth: usize,
    /// Shed policy once the queue fills.
    pub shed_policy: ShedPolicy,
    /// Simulated executors draining the admission queue.
    pub servers: usize,
}

impl Default for AdmissionFlags {
    fn default() -> Self {
        Self {
            arrivals: None,
            queue_depth: 0,
            shed_policy: ShedPolicy::Reject,
            servers: 1,
        }
    }
}

impl AdmissionFlags {
    /// The engine-side admission configuration these flags select.
    pub fn config(&self) -> AdmissionConfig {
        AdmissionConfig {
            queue_depth: self.queue_depth,
            servers: self.servers,
            shed_policy: self.shed_policy,
        }
    }
}

/// Snapshot / checkpoint boot flags for `loadgen` / `serve` (and the
/// file argument of `snapshot inspect`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotFlags {
    /// Boot snapshot: skip the level build, or the file to inspect
    /// (`snapshot inspect`).
    pub snapshot: Option<String>,
    /// Checkpoint to restore warm caches and session state from.
    pub checkpoint: Option<String>,
    /// Where to write a checkpoint after the replay (or on graceful
    /// drain of a wire stream).
    pub save_checkpoint: Option<String>,
}

/// Everything the `lim` flag parser can produce. Subcommands read the
/// scalar fields plus the typed groups they care about.
pub struct Options {
    /// Benchmark name (`bfcl` / `geoengine`).
    pub benchmark: String,
    /// Model profile name.
    pub model: String,
    /// Quantization level.
    pub quant: Quant,
    /// Tool-selection policy.
    pub policy: Policy,
    /// Evaluation-pool size.
    pub queries: usize,
    /// Seed for workload build and draws.
    pub seed: u64,
    /// Query index for `trace`.
    pub query_index: usize,
    /// `levels --save FILE`.
    pub save: Option<String>,
    /// `levels --load FILE`.
    pub load: Option<String>,
    /// Whether `--policy` was passed explicitly (so `bench` can honour
    /// it as a single-policy sweep).
    pub policy_set: bool,
    /// Worker threads for `bench`; 0 = available parallelism.
    pub threads: usize,
    /// Sweep dimensions for `bench`; empty = derive from the singular
    /// `--model` / `--quant` options.
    pub models: Vec<String>,
    /// Quant sweep for `bench`.
    pub quants: Vec<Quant>,
    /// Policy sweep for `bench`.
    pub policies: Vec<Policy>,
    /// Output document path.
    pub out: Option<String>,
    /// Serving workers for `loadgen`/`serve`; 0 = available parallelism.
    pub workers: usize,
    /// Zipf exponent for `loadgen`.
    pub zipf: f64,
    /// Sessions to generate for `loadgen`.
    pub sessions: usize,
    /// Mean requests per session for `loadgen`.
    pub requests: usize,
    /// Tenants sharing the engine for `loadgen` (1 = single-tenant).
    pub tenants: usize,
    /// Zipf exponent skewing traffic across tenants for `loadgen`.
    pub tenant_skew: f64,
    /// Admission-control flags for `loadgen`/`serve`.
    pub admission: AdmissionFlags,
    /// Device-profile and power-governor flags.
    pub energy: EnergyFlags,
    /// Trace JSON to replay (`serve`) or encode (`wire`).
    pub trace: Option<String>,
    /// Where `loadgen` writes the generated trace JSON.
    pub save_trace: Option<String>,
    /// `loadgen --churn N`: stamp N live registrations and N retirements
    /// onto the generated trace (0 = static catalog).
    pub churn: usize,
    /// Seed for the churn schedule (positions, synthetic tools, retire
    /// picks); independent of the trace seed.
    pub churn_seed: u64,
    /// Snapshot / checkpoint boot flags.
    pub snapshots: SnapshotFlags,
    /// Level-1 vector-index flags.
    pub index: IndexFlags,
    /// `lim bench --ann`: run the index-backend latency curve instead of
    /// the policy grid.
    pub ann: bool,
    /// Catalog sizes for the ann curve (`--catalogs 1000,10000`).
    pub catalogs: Vec<usize>,
    /// Baseline document for `compare`.
    pub baseline: Option<String>,
    /// Current document for `compare`.
    pub current: Option<String>,
    /// Relative regression tolerance for `compare`.
    pub tolerance: f64,
    /// `serve --stdin`: speak `lim/wire-v1` over stdin/stdout instead of
    /// replaying a trace file.
    pub stdin: bool,
    /// `serve --listen SOCKET`: speak `lim/wire-v1` over a unix socket.
    pub listen: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            benchmark: "bfcl".into(),
            model: "llama3.1-8b".into(),
            quant: Quant::Q4KM,
            policy: Policy::less_is_more(3),
            queries: 230,
            seed: 20_250_331,
            query_index: 0,
            save: None,
            load: None,
            policy_set: false,
            threads: 0,
            models: Vec::new(),
            quants: Vec::new(),
            policies: Vec::new(),
            out: None,
            workers: 0,
            zipf: 1.0,
            sessions: 64,
            requests: 8,
            tenants: 1,
            tenant_skew: 1.0,
            admission: AdmissionFlags::default(),
            energy: EnergyFlags::default(),
            trace: None,
            save_trace: None,
            churn: 0,
            churn_seed: crate::workloads::churn::ChurnConfig::default().seed,
            snapshots: SnapshotFlags::default(),
            index: IndexFlags::default(),
            ann: false,
            catalogs: Vec::new(),
            baseline: None,
            current: None,
            tolerance: 0.10,
            stdin: false,
            listen: None,
        }
    }
}

/// Parses a policy spec: `default`, `gorilla:K` or `lim:K`.
///
/// # Errors
///
/// Returns a description of the malformed spec.
pub fn parse_policy(text: &str) -> Result<Policy, String> {
    if text == "default" {
        return Ok(Policy::Default);
    }
    if let Some(k) = text.strip_prefix("gorilla:") {
        let k = k.parse().map_err(|_| format!("bad k in {text:?}"))?;
        return Ok(Policy::Gorilla { k });
    }
    if let Some(k) = text.strip_prefix("lim:") {
        let k = k.parse().map_err(|_| format!("bad k in {text:?}"))?;
        return Ok(Policy::less_is_more(k));
    }
    Err(format!("unknown policy {text:?}"))
}

/// Parses the flag list that follows a `lim` subcommand.
///
/// # Errors
///
/// Returns a description of the first unknown flag, missing value or
/// malformed argument.
pub fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--benchmark" => options.benchmark = value("--benchmark")?,
            "--model" => options.model = value("--model")?,
            "--quant" => {
                let v = value("--quant")?;
                options.quant = Quant::ALL
                    .into_iter()
                    .find(|q| q.label() == v)
                    .ok_or_else(|| format!("unknown quant {v:?}"))?;
            }
            "--policy" => {
                let v = value("--policy")?;
                options.policy = parse_policy(&v)?;
                options.policy_set = true;
            }
            "--queries" => {
                options.queries = value("--queries")?
                    .parse()
                    .map_err(|_| "--queries needs an integer".to_owned())?;
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_owned())?;
            }
            "--query" => {
                options.query_index = value("--query")?
                    .parse()
                    .map_err(|_| "--query needs an index".to_owned())?;
            }
            "--save" => options.save = Some(value("--save")?),
            "--load" => options.load = Some(value("--load")?),
            "--threads" => {
                options.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads needs an integer (0 = all cores)".to_owned())?;
            }
            "--models" => {
                options.models = value("--models")?.split(',').map(str::to_owned).collect();
            }
            "--quants" => {
                options.quants = value("--quants")?
                    .split(',')
                    .map(|v| {
                        Quant::ALL
                            .into_iter()
                            .find(|q| q.label() == v)
                            .ok_or_else(|| format!("unknown quant {v:?}"))
                    })
                    .collect::<Result<Vec<Quant>, String>>()?;
            }
            "--policies" => {
                options.policies = value("--policies")?
                    .split(',')
                    .map(parse_policy)
                    .collect::<Result<Vec<Policy>, String>>()?;
            }
            "--out" => options.out = Some(value("--out")?),
            "--workers" => {
                options.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer (0 = all cores)".to_owned())?;
            }
            "--zipf" => {
                options.zipf = value("--zipf")?
                    .parse()
                    .map_err(|_| "--zipf needs a number".to_owned())?;
            }
            "--sessions" => {
                options.sessions = value("--sessions")?
                    .parse()
                    .map_err(|_| "--sessions needs an integer".to_owned())?;
            }
            "--requests" => {
                options.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests needs an integer".to_owned())?;
            }
            "--tenants" => {
                options.tenants = value("--tenants")?
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| "--tenants needs a positive integer".to_owned())?;
            }
            "--tenant-skew" => {
                options.tenant_skew = value("--tenant-skew")?
                    .parse()
                    .ok()
                    .filter(|s: &f64| s.is_finite() && *s >= 0.0)
                    .ok_or_else(|| "--tenant-skew needs a non-negative number".to_owned())?;
            }
            "--arrivals" => {
                options.admission.arrivals = Some(ArrivalProcess::parse(&value("--arrivals")?)?);
            }
            "--queue-depth" => {
                options.admission.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth needs an integer (0 = disabled)".to_owned())?;
            }
            "--shed-policy" => {
                options.admission.shed_policy = ShedPolicy::parse(&value("--shed-policy")?)?;
            }
            "--servers" => {
                options.admission.servers = value("--servers")?
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| "--servers needs a positive integer".to_owned())?;
            }
            "--device" => {
                options.energy.device = value("--device")?
                    .parse()
                    .map_err(|e: crate::device::ParseDeviceError| e.to_string())?;
            }
            "--power-cap-w" => {
                options.energy.power_cap_w = value("--power-cap-w")?
                    .parse()
                    .ok()
                    .filter(|w: &f64| w.is_finite() && *w >= 0.0)
                    .ok_or_else(|| {
                        "--power-cap-w needs a non-negative number (0 = ungoverned)".to_owned()
                    })?;
            }
            "--carbon-trace" => {
                options.energy.carbon_trace = value("--carbon-trace")?
                    .parse()
                    .map_err(|_| "--carbon-trace needs an integer seed".to_owned())?;
            }
            "--carbon-budget" => {
                options.energy.carbon_budget_g_per_h = value("--carbon-budget")?
                    .parse()
                    .ok()
                    .filter(|g: &f64| g.is_finite() && *g >= 0.0)
                    .ok_or_else(|| {
                        "--carbon-budget needs a non-negative number in gCO2/h (0 = uncapped)"
                            .to_owned()
                    })?;
            }
            "--index" => {
                let v = value("--index")?;
                if !["flat", "ivf", "hnsw"].contains(&v.as_str()) {
                    return Err(format!("unknown index backend {v:?} (flat|ivf|hnsw)"));
                }
                options.index.index = v;
            }
            "--ef-search" => {
                options.index.ef_search = Some(
                    value("--ef-search")?
                        .parse()
                        .ok()
                        .filter(|n| *n > 0)
                        .ok_or_else(|| "--ef-search needs a positive integer".to_owned())?,
                );
            }
            "--ef-construction" => {
                options.index.ef_construction = Some(
                    value("--ef-construction")?
                        .parse()
                        .ok()
                        .filter(|n| *n > 0)
                        .ok_or_else(|| "--ef-construction needs a positive integer".to_owned())?,
                );
            }
            "--hnsw-m" => {
                options.index.hnsw_m = Some(
                    value("--hnsw-m")?
                        .parse()
                        .ok()
                        .filter(|n| *n >= 2)
                        .ok_or_else(|| "--hnsw-m needs an integer >= 2".to_owned())?,
                );
            }
            "--ann" => options.ann = true,
            "--catalogs" => {
                options.catalogs = value("--catalogs")?
                    .split(',')
                    .map(|v| {
                        v.parse()
                            .ok()
                            .filter(|n| *n > 0)
                            .ok_or_else(|| format!("bad catalog size {v:?}"))
                    })
                    .collect::<Result<Vec<usize>, String>>()?;
            }
            "--trace" => options.trace = Some(value("--trace")?),
            "--save-trace" => options.save_trace = Some(value("--save-trace")?),
            "--churn" => {
                options.churn = value("--churn")?
                    .parse()
                    .map_err(|_| "--churn needs an integer (0 = static catalog)".to_owned())?;
            }
            "--churn-seed" => {
                options.churn_seed = value("--churn-seed")?
                    .parse()
                    .map_err(|_| "--churn-seed needs an integer".to_owned())?;
            }
            "--snapshot" => options.snapshots.snapshot = Some(value("--snapshot")?),
            "--checkpoint" => options.snapshots.checkpoint = Some(value("--checkpoint")?),
            "--save-checkpoint" => {
                options.snapshots.save_checkpoint = Some(value("--save-checkpoint")?);
            }
            "--baseline" => options.baseline = Some(value("--baseline")?),
            "--current" => options.current = Some(value("--current")?),
            "--tolerance" => {
                options.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|_| "--tolerance needs a number".to_owned())?;
            }
            "--stdin" => options.stdin = true,
            "--listen" => options.listen = Some(value("--listen")?),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(options)
}

/// The `--help` text. Hand-maintained, but a unit test asserts every
/// `--flag` the parser accepts appears here, so new options cannot land
/// without their documentation.
pub fn help_text() -> String {
    "lim — Less-is-More tool-selection reproduction\n\n\
     commands:\n  \
     models     list the six calibrated model profiles\n  \
     evaluate   run a policy over a benchmark and print the paper's four metrics\n  \
     bench      sharded parallel policy sweep; prints the grid, optionally --out FILE\n  \
     trace      print the JSON execution trace of one query\n  \
     levels     build the offline search levels; --save FILE / --load FILE\n  \
     snapshot   build: write a lim/snapshot-v1 boot snapshot (--out FILE);\n             \
     inspect: print its header and section table without decoding sections\n  \
     loadgen    generate a Zipf session trace and replay it on the serving engine\n  \
     serve      replay a saved trace JSON on the serving engine (--trace FILE),\n             \
     or ingest a live lim/wire-v1 stream (--stdin | --listen SOCKET)\n  \
     wire       encode a trace JSON as a lim/wire-v1 request stream (--trace FILE)\n  \
     compare    gate a BENCH_*.json against a committed baseline (CI)\n\n\
     options:\n  \
     --benchmark bfcl|geoengine   --model NAME          --quant f16|q4_0|q4_1|q4_K_M|q8_0\n  \
     --policy default|gorilla:K|lim:K                   --queries N    --seed S\n  \
     --query I (trace only)      --save FILE / --load FILE (levels only)\n  \
     --index flat|ivf|hnsw        Level-1 vector-index backend (default flat;\n  \
     snapshots and checkpoints carry their own index kind and ignore the flag)\n  \
     --hnsw-m N  --ef-construction N  --ef-search N    HNSW graph knobs\n  \
     --device agx-orin|agx-orin-30w|orin-nano   device profile the energy model\n  \
     bills phase costs on (evaluate/bench/loadgen/serve; default agx-orin)\n\n\
     bench options:\n  \
     --threads N (0 = all cores)  --models a,b,c        --quants q4_K_M,q8_0\n  \
     --policies default,gorilla:3,lim:3,lim:5           --out BENCH_2.json\n  \
     --ann  (index-backend latency-vs-catalog-size curve, lim-bench/ann-v1,\n  \
     instead of the policy grid)   --catalogs 1000,10000  (sizes for --ann)\n\n\
     loadgen / serve options:\n  \
     --workers N (0 = all cores)  --zipf S  --sessions N  --requests N (mean/session)\n  \
     --tenants N (loadgen: share the engine across N isolated catalogs; 1 = classic\n  \
     single-tenant path, byte-identical to the pre-tenancy engine)\n  \
     --tenant-skew S (loadgen: Zipf exponent skewing traffic across tenants;\n  \
     0 = uniform, larger = hotter tenant 0)\n  \
     --arrivals back-to-back|poisson:RATE|burst:RATE:SIZE   (loadgen stamps the trace;\n  \
     serve/wire deterministically re-stamp a loaded trace — strictly opt-in, a\n  \
     replayed or streamed trace's own timestamps are honored unless the flag is given)\n  \
     --queue-depth N (0 = no admission control)  --shed-policy reject|degrade\n  \
     --servers N (simulated executors draining the admission queue)\n  \
     --power-cap-w W (sustained-watts cap for the energy governor; the engine\n  \
     steps service down to an economy quantization when the sliding window\n  \
     would breach the cap and back up with hysteresis; 0 = ungoverned)\n  \
     --carbon-trace SEED (seed for the deterministic grid carbon-intensity trace)\n  \
     --carbon-budget G (grams CO2 per hour the governor holds the window under;\n  \
     0 = no carbon cap)\n  \
     --save-trace FILE (loadgen)  --trace FILE (serve/wire)  --out BENCH_serve_1.json\n  \
     --churn N (loadgen: stamp N live tool registrations + N retirements onto the\n  \
     trace at seeded positions; retires never touch tools the gold labels need)\n  \
     --churn-seed S (seed for the churn schedule, independent of --seed)\n  \
     --stdin (serve: read lim/wire-v1 frames from stdin, answer on stdout;\n  \
     EOF or SIGTERM drains gracefully and emits the final report frame)\n  \
     --listen SOCKET (serve: accept lim/wire-v1 connections on a unix socket,\n  \
     one stream at a time on the same warm engine; SIGTERM stops accepting)\n  \
     --snapshot FILE (boot from a lim/snapshot-v1 snapshot: skip the level build;\n  \
     also the file argument of `snapshot inspect`)\n  \
     --checkpoint FILE (restore warm caches + session state from a checkpoint:\n  \
     skip the level build AND the cold-cache ramp)\n  \
     --save-checkpoint FILE (write the engine's warm state after the replay\n  \
     or on graceful wire-stream drain)\n  \
     (serve rebuilds the exact generation-time workload from the trace document\n  \
     itself — benchmark, seed and pool size are recorded in the JSON; a wire\n  \
     stream's hello frame carries the same fields)\n\n\
     compare options:\n  \
     --baseline FILE  --current FILE  --tolerance 0.10"
        .to_owned()
}

#[cfg(test)]
mod tests {
    /// The usage block is hand-maintained and has drifted before: this
    /// scans the parser's own source for `"--flag" =>` match arms and
    /// asserts each flag appears in the `--help` output, so a new option
    /// cannot land undocumented.
    #[test]
    fn every_parsed_flag_appears_in_help() {
        let source = include_str!("cli.rs");
        let help = super::help_text();
        let mut flags = Vec::new();
        for line in source.lines() {
            let trimmed = line.trim();
            let Some(rest) = trimmed.strip_prefix("\"--") else {
                continue;
            };
            let Some((flag, after)) = rest.split_once('"') else {
                continue;
            };
            if !after.trim_start().starts_with("=>") {
                continue;
            }
            flags.push(format!("--{flag}"));
        }
        assert!(
            flags.len() >= 39,
            "flag scan looks broken: only found {flags:?}"
        );
        for required in [
            "--index",
            "--ef-search",
            "--ef-construction",
            "--hnsw-m",
            "--stdin",
            "--listen",
            "--device",
            "--power-cap-w",
            "--carbon-trace",
            "--carbon-budget",
        ] {
            assert!(
                flags.iter().any(|f| f == required),
                "{required} is not parsed anywhere"
            );
        }
        for flag in &flags {
            assert!(
                help.contains(flag.as_str()),
                "{flag} is parsed but missing from the --help text"
            );
        }
    }

    /// The snapshot/checkpoint flags parse into the options they set.
    #[test]
    fn snapshot_flags_parse() {
        let args: Vec<String> = [
            "--snapshot",
            "levels.limsnap",
            "--checkpoint",
            "warm.limsnap",
            "--save-checkpoint",
            "next.limsnap",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let options = super::parse(&args).expect("valid flags");
        assert_eq!(
            options.snapshots.snapshot.as_deref(),
            Some("levels.limsnap")
        );
        assert_eq!(
            options.snapshots.checkpoint.as_deref(),
            Some("warm.limsnap")
        );
        assert_eq!(
            options.snapshots.save_checkpoint.as_deref(),
            Some("next.limsnap")
        );
        assert!(super::parse(&["--snapshot".to_owned()]).is_err());
    }

    /// The index-backend flags parse into the spec the level build uses,
    /// regardless of flag order.
    #[test]
    fn index_flags_parse() {
        let args: Vec<String> = [
            "--ef-search",
            "96",
            "--index",
            "hnsw",
            "--hnsw-m",
            "24",
            "--ef-construction",
            "200",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let options = super::parse(&args).expect("valid flags");
        let super::IndexSpec::Hnsw(params) = options.index.spec() else {
            panic!("--index hnsw must resolve to an HNSW spec");
        };
        assert_eq!(params.m, 24);
        assert_eq!(params.ef_construction, 200);
        assert_eq!(params.ef_search, 96);

        let flat = super::parse(&[]).expect("defaults");
        assert!(matches!(flat.index.spec(), super::IndexSpec::Flat));
        let ivf = super::parse(&["--index".to_owned(), "ivf".to_owned()]).expect("ivf");
        assert!(matches!(ivf.index.spec(), super::IndexSpec::Ivf(_)));

        assert!(super::parse(&["--index".to_owned(), "pq".to_owned()]).is_err());
        assert!(super::parse(&["--hnsw-m".to_owned(), "1".to_owned()]).is_err());
        assert!(super::parse(&["--ef-search".to_owned(), "0".to_owned()]).is_err());
    }

    /// The ann-curve flags parse: `--ann` is a bare switch and
    /// `--catalogs` is a positive-integer list.
    #[test]
    fn ann_flags_parse() {
        let args: Vec<String> = ["--ann", "--catalogs", "500,2000"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let options = super::parse(&args).expect("valid flags");
        assert!(options.ann);
        assert_eq!(options.catalogs, vec![500, 2000]);
        assert!(super::parse(&["--catalogs".to_owned(), "10,x".to_owned()]).is_err());
        assert!(super::parse(&["--catalogs".to_owned(), "0".to_owned()]).is_err());
    }

    /// The admission flags parse into the options they claim to set, and
    /// resolve into the engine-side configuration.
    #[test]
    fn admission_flags_parse() {
        let args: Vec<String> = [
            "--arrivals",
            "poisson:2.5",
            "--queue-depth",
            "16",
            "--shed-policy",
            "degrade",
            "--servers",
            "2",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let options = super::parse(&args).expect("valid flags");
        assert_eq!(
            options.admission.arrivals,
            Some(super::ArrivalProcess::Poisson { rate_rps: 2.5 })
        );
        assert_eq!(options.admission.queue_depth, 16);
        assert_eq!(options.admission.shed_policy, super::ShedPolicy::Degrade);
        assert_eq!(options.admission.servers, 2);
        let config = options.admission.config();
        assert_eq!(config.queue_depth, 16);
        assert_eq!(config.servers, 2);
        assert_eq!(config.shed_policy, super::ShedPolicy::Degrade);
        assert!(super::parse(&["--arrivals".to_owned(), "warp:9".to_owned()]).is_err());
        assert!(super::parse(&["--shed-policy".to_owned(), "panic".to_owned()]).is_err());
    }

    /// Arrival re-stamping stays strictly opt-in: the default parse
    /// leaves `arrivals` unset, so a loaded or streamed trace's recorded
    /// timestamps are honored unless `--arrivals` is explicitly given.
    #[test]
    fn arrival_restamp_is_opt_in() {
        let defaults = super::parse(&[]).expect("defaults");
        assert_eq!(defaults.admission.arrivals, None);
        let explicit = super::parse(&["--arrivals".to_owned(), "back-to-back".to_owned()])
            .expect("explicit back-to-back");
        assert_eq!(
            explicit.admission.arrivals,
            Some(super::ArrivalProcess::BackToBack),
            "even the default process counts as an explicit re-stamp request"
        );
    }

    /// The tenancy flags parse and reject the degenerate values the
    /// fleet layer cannot represent (zero tenants, negative skew).
    #[test]
    fn tenancy_flags_parse() {
        let args: Vec<String> = ["--tenants", "8", "--tenant-skew", "1.2"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let options = super::parse(&args).expect("valid flags");
        assert_eq!(options.tenants, 8);
        assert!((options.tenant_skew - 1.2).abs() < 1e-12);
        let defaults = super::parse(&[]).expect("defaults");
        assert_eq!(defaults.tenants, 1);
        assert!((defaults.tenant_skew - 1.0).abs() < 1e-12);
        assert!(super::parse(&["--tenants".to_owned(), "0".to_owned()]).is_err());
        assert!(super::parse(&["--tenant-skew".to_owned(), "-1".to_owned()]).is_err());
    }

    /// The energy flags parse into the device kind and governor
    /// configuration, uniform across subcommands, and reject negative
    /// or non-finite budgets.
    #[test]
    fn energy_flags_parse() {
        let args: Vec<String> = [
            "--device",
            "orin-nano",
            "--power-cap-w",
            "18.5",
            "--carbon-trace",
            "7",
            "--carbon-budget",
            "120",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let options = super::parse(&args).expect("valid flags");
        assert_eq!(options.energy.device, super::DeviceKind::OrinNano);
        let governor = options.energy.governor();
        assert!((governor.power_cap_w - 18.5).abs() < 1e-12);
        assert_eq!(governor.carbon_seed, 7);
        assert!((governor.carbon_budget_g_per_h - 120.0).abs() < 1e-12);
        assert!(governor.active());

        let defaults = super::parse(&[]).expect("defaults");
        assert_eq!(defaults.energy.device, super::DeviceKind::AgxOrin);
        assert!(!defaults.energy.governor().active());

        assert!(super::parse(&["--device".to_owned(), "threadripper".to_owned()]).is_err());
        assert!(super::parse(&["--power-cap-w".to_owned(), "-5".to_owned()]).is_err());
        assert!(super::parse(&["--power-cap-w".to_owned(), "inf".to_owned()]).is_err());
        assert!(super::parse(&["--carbon-budget".to_owned(), "nan".to_owned()]).is_err());
    }

    /// The wire-ingestion flags parse: `--stdin` is a bare switch and
    /// `--listen` takes a socket path.
    #[test]
    fn wire_flags_parse() {
        let options = super::parse(&["--stdin".to_owned()]).expect("valid flags");
        assert!(options.stdin);
        assert_eq!(options.listen, None);
        let options = super::parse(&["--listen".to_owned(), "/tmp/lim.sock".to_owned()])
            .expect("valid flags");
        assert!(!options.stdin);
        assert_eq!(options.listen.as_deref(), Some("/tmp/lim.sock"));
        assert!(super::parse(&["--listen".to_owned()]).is_err());
    }
}
