//! `lim` — command-line front end to the Less-is-More reproduction.
//!
//! ```text
//! lim models                                     list model profiles
//! lim evaluate [options]                         run a policy over a benchmark
//! lim bench    [options] [--out FILE]            parallel policy sweep + BENCH_*.json
//! lim trace    [options] --query I               JSON execution trace of one query
//! lim levels   [options] [--save FILE|--load F]  build / persist search levels
//! lim snapshot build [options] --out FILE        write a lim/snapshot-v1 boot snapshot
//! lim snapshot inspect --snapshot FILE           print header + section table (no decode)
//! lim loadgen  [options] [--out FILE]            Zipf trace -> serving engine replay
//! lim serve    --trace FILE [options]            replay a saved session trace
//! lim compare  --baseline A --current B          CI bench-regression gate
//!
//! common options:
//!   --benchmark bfcl|geoengine   (default bfcl)
//!   --model NAME                 (default llama3.1-8b)
//!   --quant f16|q4_0|q4_1|q4_K_M|q8_0   (default q4_K_M)
//!   --policy default|gorilla:K|lim:K    (default lim:3)
//!   --queries N                  (default 230)
//!   --seed S                     (default 20250331)
//!   --index flat|ivf|hnsw        Level-1 vector-index backend (default flat)
//!   --hnsw-m N --ef-construction N --ef-search N    HNSW graph knobs
//!
//! bench options:
//!   --threads N                  worker threads; 0 = all cores (default 0)
//!   --models a,b,c               models to sweep (default: the --model value)
//!   --quants q4_K_M,q8_0         quants to sweep (default: the --quant value)
//!   --policies default,lim:3     policies to sweep (default all four paper policies)
//!   --ann                        index-backend latency curve instead of the grid
//!   --catalogs 1000,10000        catalog sizes for the --ann sweep
//!   --out FILE                   write the BENCH_*.json document
//!
//! loadgen / serve options:
//!   --workers N                  serving workers; 0 = all cores (default 0)
//!   --zipf S                     Zipf exponent (default 1.0; loadgen only)
//!   --sessions N                 sessions to generate (default 64; loadgen only)
//!   --requests N                 mean requests per session (default 8; loadgen only)
//!   --arrivals SPEC              back-to-back | poisson:RATE | burst:RATE:SIZE
//!   --queue-depth N              bounded admission queue (0 = disabled; default 0)
//!   --shed-policy reject|degrade what to do when the queue fills (default reject)
//!   --servers N                  simulated executors draining the queue (default 1)
//!   --save-trace FILE            write the generated trace JSON (loadgen only)
//!   --trace FILE                 replay this trace JSON (serve only)
//!   --out FILE                   write the BENCH_serve_*.json report
//!
//! compare options:
//!   --baseline FILE --current FILE   documents of the same schema
//!   --tolerance F                relative regression budget (default 0.10)
//! ```

use std::process::ExitCode;

use lessismore::core::{
    evaluate, load_levels, normalize_against, save_levels, IndexSpec, LevelsConfig, Pipeline,
    Policy, SearchLevels,
};
use lessismore::llm::{profiles, ModelProfile, Quant};
use lessismore::serve::{AdmissionConfig, ShedPolicy};
use lessismore::vecstore::{HnswParams, IvfParams};
use lessismore::workloads::trace::ArrivalProcess;
use lessismore::workloads::{bfcl, geoengine, Workload};

struct Options {
    benchmark: String,
    model: String,
    quant: Quant,
    policy: Policy,
    queries: usize,
    seed: u64,
    query_index: usize,
    save: Option<String>,
    load: Option<String>,
    /// Whether `--policy` was passed explicitly (so `bench` can honour it
    /// as a single-policy sweep).
    policy_set: bool,
    /// Worker threads for `bench`; 0 = available parallelism.
    threads: usize,
    /// Sweep dimensions for `bench`; empty = derive from the singular
    /// `--model` / `--quant` options.
    models: Vec<String>,
    quants: Vec<Quant>,
    policies: Vec<Policy>,
    out: Option<String>,
    /// Serving workers for `loadgen`/`serve`; 0 = available parallelism.
    workers: usize,
    /// Zipf exponent for `loadgen`.
    zipf: f64,
    /// Sessions to generate for `loadgen`.
    sessions: usize,
    /// Mean requests per session for `loadgen`.
    requests: usize,
    /// Arrival process for `loadgen` (trace generation) and `serve`
    /// (deterministic re-stamp of the loaded trace). `None` keeps the
    /// trace's own process (back-to-back for `loadgen`).
    arrivals: Option<ArrivalProcess>,
    /// Bounded admission-queue capacity (0 = admission disabled).
    queue_depth: usize,
    /// Shed policy once the queue fills.
    shed_policy: ShedPolicy,
    /// Simulated executors draining the admission queue.
    servers: usize,
    /// Trace JSON to replay (`serve`).
    trace: Option<String>,
    /// Where `loadgen` writes the generated trace JSON.
    save_trace: Option<String>,
    /// Boot snapshot: skip the level build (`serve`/`loadgen`), or the
    /// file to inspect (`snapshot inspect`).
    snapshot: Option<String>,
    /// Checkpoint to restore warm caches and session state from.
    checkpoint: Option<String>,
    /// Where to write a checkpoint after the replay.
    save_checkpoint: Option<String>,
    /// Level-1 vector-index backend (`--index flat|ivf|hnsw`).
    index: String,
    /// HNSW query-time beam width override (`--ef-search`).
    ef_search: Option<usize>,
    /// HNSW construction beam width override (`--ef-construction`).
    ef_construction: Option<usize>,
    /// HNSW per-layer degree override (`--hnsw-m`).
    hnsw_m: Option<usize>,
    /// `lim bench --ann`: run the index-backend latency curve instead of
    /// the policy grid.
    ann: bool,
    /// Catalog sizes for the ann curve (`--catalogs 1000,10000`).
    catalogs: Vec<usize>,
    /// Baseline document for `compare`.
    baseline: Option<String>,
    /// Current document for `compare`.
    current: Option<String>,
    /// Relative regression tolerance for `compare`.
    tolerance: f64,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            benchmark: "bfcl".into(),
            model: "llama3.1-8b".into(),
            quant: Quant::Q4KM,
            policy: Policy::less_is_more(3),
            queries: 230,
            seed: 20_250_331,
            query_index: 0,
            save: None,
            load: None,
            policy_set: false,
            threads: 0,
            models: Vec::new(),
            quants: Vec::new(),
            policies: Vec::new(),
            out: None,
            workers: 0,
            zipf: 1.0,
            sessions: 64,
            requests: 8,
            arrivals: None,
            queue_depth: 0,
            shed_policy: ShedPolicy::Reject,
            servers: 1,
            trace: None,
            save_trace: None,
            snapshot: None,
            checkpoint: None,
            save_checkpoint: None,
            index: "flat".into(),
            ef_search: None,
            ef_construction: None,
            hnsw_m: None,
            ann: false,
            catalogs: Vec::new(),
            baseline: None,
            current: None,
            tolerance: 0.10,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("usage: lim <models|evaluate|trace|levels> [options] (see --help)");
        return ExitCode::FAILURE;
    };
    if command == "--help" || command == "-h" || command == "help" {
        print_help();
        return ExitCode::SUCCESS;
    }
    // `snapshot` takes a verb (`build`/`inspect`) before its options, so
    // it dispatches before the flat flag parse.
    if command == "snapshot" {
        return cmd_snapshot(&args[1..]);
    }
    let options = match parse(&args[1..]) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    match command.as_str() {
        "models" => cmd_models(),
        "evaluate" => cmd_evaluate(&options),
        "bench" => cmd_bench(&options),
        "trace" => cmd_trace(&options),
        "levels" => cmd_levels(&options),
        "loadgen" => cmd_loadgen(&options),
        "serve" => cmd_serve(&options),
        "compare" => cmd_compare(&options),
        other => {
            eprintln!("unknown command {other:?}; try --help");
            ExitCode::FAILURE
        }
    }
}

/// The `--help` text. Hand-maintained, but a unit test asserts every
/// `--flag` the parser accepts appears here, so new options cannot land
/// without their documentation.
fn help_text() -> String {
    "lim — Less-is-More tool-selection reproduction\n\n\
     commands:\n  \
     models     list the six calibrated model profiles\n  \
     evaluate   run a policy over a benchmark and print the paper's four metrics\n  \
     bench      sharded parallel policy sweep; prints the grid, optionally --out FILE\n  \
     trace      print the JSON execution trace of one query\n  \
     levels     build the offline search levels; --save FILE / --load FILE\n  \
     snapshot   build: write a lim/snapshot-v1 boot snapshot (--out FILE);\n             \
     inspect: print its header and section table without decoding sections\n  \
     loadgen    generate a Zipf session trace and replay it on the serving engine\n  \
     serve      replay a saved trace JSON on the serving engine (--trace FILE)\n  \
     compare    gate a BENCH_*.json against a committed baseline (CI)\n\n\
     options:\n  \
     --benchmark bfcl|geoengine   --model NAME          --quant f16|q4_0|q4_1|q4_K_M|q8_0\n  \
     --policy default|gorilla:K|lim:K                   --queries N    --seed S\n  \
     --query I (trace only)      --save FILE / --load FILE (levels only)\n  \
     --index flat|ivf|hnsw        Level-1 vector-index backend (default flat;\n  \
     snapshots and checkpoints carry their own index kind and ignore the flag)\n  \
     --hnsw-m N  --ef-construction N  --ef-search N    HNSW graph knobs\n\n\
     bench options:\n  \
     --threads N (0 = all cores)  --models a,b,c        --quants q4_K_M,q8_0\n  \
     --policies default,gorilla:3,lim:3,lim:5           --out BENCH_2.json\n  \
     --ann  (index-backend latency-vs-catalog-size curve, lim-bench/ann-v1,\n  \
     instead of the policy grid)   --catalogs 1000,10000  (sizes for --ann)\n\n\
     loadgen / serve options:\n  \
     --workers N (0 = all cores)  --zipf S  --sessions N  --requests N (mean/session)\n  \
     --arrivals back-to-back|poisson:RATE|burst:RATE:SIZE   (loadgen stamps the trace;\n  \
     serve deterministically re-stamps a loaded trace)\n  \
     --queue-depth N (0 = no admission control)  --shed-policy reject|degrade\n  \
     --servers N (simulated executors draining the admission queue)\n  \
     --save-trace FILE (loadgen)  --trace FILE (serve)    --out BENCH_serve_1.json\n  \
     --snapshot FILE (boot from a lim/snapshot-v1 snapshot: skip the level build;\n  \
     also the file argument of `snapshot inspect`)\n  \
     --checkpoint FILE (restore warm caches + session state from a checkpoint:\n  \
     skip the level build AND the cold-cache ramp)\n  \
     --save-checkpoint FILE (write the engine's warm state after the replay)\n  \
     (serve rebuilds the exact generation-time workload from the trace document\n  \
     itself — benchmark, seed and pool size are recorded in the JSON)\n\n\
     compare options:\n  \
     --baseline FILE  --current FILE  --tolerance 0.10"
        .to_owned()
}

fn print_help() {
    println!("{}", help_text());
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--benchmark" => options.benchmark = value("--benchmark")?,
            "--model" => options.model = value("--model")?,
            "--quant" => {
                let v = value("--quant")?;
                options.quant = Quant::ALL
                    .into_iter()
                    .find(|q| q.label() == v)
                    .ok_or_else(|| format!("unknown quant {v:?}"))?;
            }
            "--policy" => {
                let v = value("--policy")?;
                options.policy = parse_policy(&v)?;
                options.policy_set = true;
            }
            "--queries" => {
                options.queries = value("--queries")?
                    .parse()
                    .map_err(|_| "--queries needs an integer".to_owned())?;
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_owned())?;
            }
            "--query" => {
                options.query_index = value("--query")?
                    .parse()
                    .map_err(|_| "--query needs an index".to_owned())?;
            }
            "--save" => options.save = Some(value("--save")?),
            "--load" => options.load = Some(value("--load")?),
            "--threads" => {
                options.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads needs an integer (0 = all cores)".to_owned())?;
            }
            "--models" => {
                options.models = value("--models")?.split(',').map(str::to_owned).collect();
            }
            "--quants" => {
                options.quants = value("--quants")?
                    .split(',')
                    .map(|v| {
                        Quant::ALL
                            .into_iter()
                            .find(|q| q.label() == v)
                            .ok_or_else(|| format!("unknown quant {v:?}"))
                    })
                    .collect::<Result<Vec<Quant>, String>>()?;
            }
            "--policies" => {
                options.policies = value("--policies")?
                    .split(',')
                    .map(parse_policy)
                    .collect::<Result<Vec<Policy>, String>>()?;
            }
            "--out" => options.out = Some(value("--out")?),
            "--workers" => {
                options.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer (0 = all cores)".to_owned())?;
            }
            "--zipf" => {
                options.zipf = value("--zipf")?
                    .parse()
                    .map_err(|_| "--zipf needs a number".to_owned())?;
            }
            "--sessions" => {
                options.sessions = value("--sessions")?
                    .parse()
                    .map_err(|_| "--sessions needs an integer".to_owned())?;
            }
            "--requests" => {
                options.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests needs an integer".to_owned())?;
            }
            "--arrivals" => options.arrivals = Some(ArrivalProcess::parse(&value("--arrivals")?)?),
            "--queue-depth" => {
                options.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth needs an integer (0 = disabled)".to_owned())?;
            }
            "--shed-policy" => {
                options.shed_policy = ShedPolicy::parse(&value("--shed-policy")?)?;
            }
            "--servers" => {
                options.servers = value("--servers")?
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| "--servers needs a positive integer".to_owned())?;
            }
            "--index" => {
                let v = value("--index")?;
                if !["flat", "ivf", "hnsw"].contains(&v.as_str()) {
                    return Err(format!("unknown index backend {v:?} (flat|ivf|hnsw)"));
                }
                options.index = v;
            }
            "--ef-search" => {
                options.ef_search = Some(
                    value("--ef-search")?
                        .parse()
                        .ok()
                        .filter(|n| *n > 0)
                        .ok_or_else(|| "--ef-search needs a positive integer".to_owned())?,
                );
            }
            "--ef-construction" => {
                options.ef_construction = Some(
                    value("--ef-construction")?
                        .parse()
                        .ok()
                        .filter(|n| *n > 0)
                        .ok_or_else(|| "--ef-construction needs a positive integer".to_owned())?,
                );
            }
            "--hnsw-m" => {
                options.hnsw_m = Some(
                    value("--hnsw-m")?
                        .parse()
                        .ok()
                        .filter(|n| *n >= 2)
                        .ok_or_else(|| "--hnsw-m needs an integer >= 2".to_owned())?,
                );
            }
            "--ann" => options.ann = true,
            "--catalogs" => {
                options.catalogs = value("--catalogs")?
                    .split(',')
                    .map(|v| {
                        v.parse()
                            .ok()
                            .filter(|n| *n > 0)
                            .ok_or_else(|| format!("bad catalog size {v:?}"))
                    })
                    .collect::<Result<Vec<usize>, String>>()?;
            }
            "--trace" => options.trace = Some(value("--trace")?),
            "--save-trace" => options.save_trace = Some(value("--save-trace")?),
            "--snapshot" => options.snapshot = Some(value("--snapshot")?),
            "--checkpoint" => options.checkpoint = Some(value("--checkpoint")?),
            "--save-checkpoint" => options.save_checkpoint = Some(value("--save-checkpoint")?),
            "--baseline" => options.baseline = Some(value("--baseline")?),
            "--current" => options.current = Some(value("--current")?),
            "--tolerance" => {
                options.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|_| "--tolerance needs a number".to_owned())?;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(options)
}

fn parse_policy(text: &str) -> Result<Policy, String> {
    if text == "default" {
        return Ok(Policy::Default);
    }
    if let Some(k) = text.strip_prefix("gorilla:") {
        let k = k.parse().map_err(|_| format!("bad k in {text:?}"))?;
        return Ok(Policy::Gorilla { k });
    }
    if let Some(k) = text.strip_prefix("lim:") {
        let k = k.parse().map_err(|_| format!("bad k in {text:?}"))?;
        return Ok(Policy::less_is_more(k));
    }
    Err(format!("unknown policy {text:?}"))
}

/// Resolves `--index` plus the HNSW knobs into the backend spec the
/// level build uses. The knobs are meaningful for `hnsw` only; on the
/// other backends they are ignored (the ann curve applies them to its
/// HNSW cell regardless of `--index`).
fn index_spec(options: &Options) -> IndexSpec {
    match options.index.as_str() {
        "ivf" => IndexSpec::Ivf(IvfParams::default()),
        "hnsw" => IndexSpec::Hnsw(hnsw_params(options)),
        _ => IndexSpec::Flat,
    }
}

/// The HNSW parameter block with any CLI overrides applied.
fn hnsw_params(options: &Options) -> HnswParams {
    let mut params = HnswParams::default();
    if let Some(m) = options.hnsw_m {
        params.m = m;
    }
    if let Some(ef) = options.ef_construction {
        params.ef_construction = ef;
    }
    if let Some(ef) = options.ef_search {
        params.ef_search = ef;
    }
    params
}

/// Builds the search levels on the backend selected by `--index`.
fn build_levels(options: &Options, workload: &Workload) -> SearchLevels {
    let config = LevelsConfig {
        index: index_spec(options),
        ..LevelsConfig::default()
    };
    SearchLevels::build_with(workload, &config)
}

fn build_workload(options: &Options) -> Result<Workload, String> {
    build_workload_with(&options.benchmark, options.seed, options.queries)
}

fn build_workload_with(benchmark: &str, seed: u64, queries: usize) -> Result<Workload, String> {
    match benchmark {
        "bfcl" => Ok(bfcl(seed, queries)),
        "geoengine" | "geo" => Ok(geoengine(seed, queries)),
        other => Err(format!("unknown benchmark {other:?} (bfcl|geoengine)")),
    }
}

fn resolve_model(options: &Options) -> Result<ModelProfile, String> {
    ModelProfile::by_name(&options.model)
        .ok_or_else(|| format!("unknown model {:?}; run `lim models`", options.model))
}

fn cmd_models() -> ExitCode {
    println!(
        "{:<16} {:>7} {:>9} {:>10} {:>12}",
        "name", "params", "tool-base", "arg-fid", "rec-quality"
    );
    for m in profiles::catalog() {
        println!(
            "{:<16} {:>6.1}B {:>9.3} {:>10.3} {:>12.2}",
            m.name, m.arch.params_b, m.base_tool_competence, m.arg_fidelity, m.recommender_quality
        );
    }
    ExitCode::SUCCESS
}

fn cmd_evaluate(options: &Options) -> ExitCode {
    let (workload, model) = match (build_workload(options), resolve_model(options)) {
        (Ok(w), Ok(m)) => (w, m),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let levels = build_levels(options, &workload);
    let pipeline = Pipeline::new(&workload, &levels, &model, options.quant).with_seed(options.seed);
    let baseline = evaluate(&pipeline, Policy::Default);
    let metrics = evaluate(&pipeline, options.policy);
    let (time, power) = normalize_against(&baseline, &metrics);
    println!(
        "benchmark={} model={} quant={} policy={} queries={}",
        workload.name,
        model.name,
        options.quant,
        options.policy.label(),
        metrics.queries
    );
    println!("success rate       {:>8.2}%", 100.0 * metrics.success_rate);
    println!("tool accuracy      {:>8.2}%", 100.0 * metrics.tool_accuracy);
    println!(
        "avg exec time      {:>8.2} s (norm {:.2}x)",
        metrics.avg_seconds, time
    );
    println!(
        "avg power          {:>8.2} W (norm {:.2}x)",
        metrics.avg_power_w, power
    );
    println!("avg offered tools  {:>8.1}", metrics.avg_offered_tools);
    println!(
        "level shares       L1 {:.0}% / L2 {:.0}% / L3 {:.0}%  fallback {:.0}%",
        100.0 * metrics.level1_share,
        100.0 * metrics.level2_share,
        100.0 * metrics.level3_share,
        100.0 * metrics.fallback_rate
    );
    ExitCode::SUCCESS
}

fn cmd_bench(options: &Options) -> ExitCode {
    use lessismore::bench::experiments::{model_set, run_grid_threads};
    use lessismore::bench::report::{grid_to_json, pct, ratio, secs, watts, Table};
    use lessismore::core::resolve_threads;

    if options.ann {
        return cmd_bench_ann(options);
    }
    let workload = match build_workload(options) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let model_names: Vec<&str> = if options.models.is_empty() {
        vec![options.model.as_str()]
    } else {
        options.models.iter().map(String::as_str).collect()
    };
    for name in &model_names {
        if ModelProfile::by_name(name).is_none() {
            eprintln!("error: unknown model {name:?}; run `lim models`");
            return ExitCode::FAILURE;
        }
    }
    let models = model_set(&model_names);
    let quants: Vec<Quant> = if options.quants.is_empty() {
        vec![options.quant]
    } else {
        options.quants.clone()
    };
    // All four paper policies unless the sweep was narrowed with
    // `--policies` or a single `--policy`.
    let policies: Vec<Policy> = if !options.policies.is_empty() {
        options.policies.clone()
    } else if options.policy_set {
        vec![options.policy]
    } else {
        vec![
            Policy::Default,
            Policy::Gorilla { k: 3 },
            Policy::less_is_more(3),
            Policy::less_is_more(5),
        ]
    };

    let threads = resolve_threads(options.threads);
    let started = std::time::Instant::now();
    let levels = build_levels(options, &workload);
    let cells = run_grid_threads(
        &workload,
        &levels,
        &models,
        &quants,
        &policies,
        options.seed,
        threads,
    );
    let elapsed = started.elapsed();

    let mut table = Table::new(
        &format!(
            "lim bench — {} ({} queries, seed {}, {} threads)",
            workload.name, options.queries, options.seed, threads
        ),
        &[
            "model", "quant", "policy", "success", "tool acc", "time", "power", "norm t", "norm p",
        ],
    );
    for c in &cells {
        table.row(&[
            c.model.clone(),
            c.quant.to_string(),
            c.policy.clone(),
            pct(c.metrics.success_rate),
            pct(c.metrics.tool_accuracy),
            secs(c.metrics.avg_seconds),
            watts(c.metrics.avg_power_w),
            ratio(c.norm_time),
            ratio(c.norm_power),
        ]);
    }
    table.print();
    println!(
        "swept {} cells x {} queries in {:.2}s wall-clock",
        cells.len(),
        options.queries,
        elapsed.as_secs_f64()
    );

    if let Some(path) = &options.out {
        let doc = grid_to_json(
            &cells,
            workload.name,
            options.queries,
            options.seed,
            threads,
        );
        if let Err(e) = std::fs::write(path, doc.to_pretty_string()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

/// `lim bench --ann`: the index-backend latency-vs-catalog-size curve
/// (`lim-bench/ann-v1`) instead of the policy grid.
fn cmd_bench_ann(options: &Options) -> ExitCode {
    use lessismore::bench::ann::{ann_to_json, run_ann, AnnConfig, ANN_K, ANN_QUERIES};
    use lessismore::bench::report::Table;

    let mut config = AnnConfig {
        seed: options.seed,
        hnsw: hnsw_params(options),
        ..AnnConfig::default()
    };
    if !options.catalogs.is_empty() {
        config.catalogs = options.catalogs.clone();
    }

    let started = std::time::Instant::now();
    let cells = run_ann(&config);
    let elapsed = started.elapsed();

    let mut table = Table::new(
        &format!(
            "lim bench --ann — {} queries/cell, recall@{}, seed {}",
            ANN_QUERIES, ANN_K, config.seed
        ),
        &[
            "backend",
            "catalog",
            "build",
            "query",
            "dist evals",
            "recall@10",
        ],
    );
    for c in &cells {
        table.row(&[
            c.backend.to_owned(),
            c.catalog.to_string(),
            format!("{:.3}s", c.build_seconds),
            format!("{:.1}us", c.query_seconds_mean * 1e6),
            format!("{:.1}", c.avg_dist_evals),
            format!("{:.3}", c.recall_at_10),
        ]);
    }
    table.print();
    println!(
        "swept {} cells in {:.2}s wall-clock (tracked metrics are seeded; \
         wall-clock columns are informational)",
        cells.len(),
        elapsed.as_secs_f64()
    );

    if let Some(path) = &options.out {
        let doc = ann_to_json(&config, &cells);
        if let Err(e) = std::fs::write(path, doc.to_pretty_string()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_trace(options: &Options) -> ExitCode {
    let (workload, model) = match (build_workload(options), resolve_model(options)) {
        (Ok(w), Ok(m)) => (w, m),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if options.query_index >= workload.queries.len() {
        eprintln!(
            "error: --query {} out of range (0..{})",
            options.query_index,
            workload.queries.len()
        );
        return ExitCode::FAILURE;
    }
    let levels = build_levels(options, &workload);
    let pipeline = Pipeline::new(&workload, &levels, &model, options.quant).with_seed(options.seed);
    let query = &workload.queries[options.query_index];
    let (result, trace) = pipeline.run_query_traced(query, options.policy);
    let mut doc = trace.to_json();
    doc.insert(
        "query_text",
        lessismore::json::Value::from(query.text.as_str()),
    );
    doc.insert("success", lessismore::json::Value::from(result.success));
    doc.insert(
        "seconds",
        lessismore::json::Value::from(result.cost.seconds),
    );
    println!("{}", doc.to_pretty_string());
    ExitCode::SUCCESS
}

fn print_serve_report(report: &lessismore::serve::ServeReport) {
    use lessismore::bench::report::{pct, secs, Table};
    let mut table = Table::new(
        &format!(
            "lim serve — {} {} {} policy {} ({} sessions, {} requests, {} workers)",
            report.benchmark,
            report.model,
            report.quant,
            report.policy,
            report.sessions,
            report.requests,
            report.workers
        ),
        &[
            "success",
            "tool acc",
            "p50",
            "p95",
            "p99",
            "embed hit",
            "memo hit",
            "rps",
        ],
    );
    table.row(&[
        pct(report.success_rate),
        pct(report.tool_accuracy),
        secs(report.latency.p50_s),
        secs(report.latency.p95_s),
        secs(report.latency.p99_s),
        pct(report.embed_cache.hit_rate()),
        pct(report.selection_memo.hit_rate()),
        format!("{:.0}", report.requests_per_second),
    ]);
    table.print();
    println!(
        "unique queries {} | session fast hits {} | embed {}h/{}m/{}e | memo {}h/{}m/{}e | wall {:.2}s",
        report.unique_queries,
        report.session_fast_hits,
        report.embed_cache.hits,
        report.embed_cache.misses,
        report.embed_cache.evictions,
        report.selection_memo.hits,
        report.selection_memo.misses,
        report.selection_memo.evictions,
        report.wall_seconds
    );
    let b = &report.boot;
    println!(
        "boot: {} | level build {} | prewarm {} | sim boot {:.4}s | warm entries embed {} / memo {}",
        b.mode,
        if b.build_skipped { "skipped" } else { "ran" },
        if b.prewarm_skipped { "skipped" } else { "ran" },
        b.sim_boot_seconds,
        b.warm_embed_entries,
        b.warm_memo_entries
    );
    let a = &report.admission;
    if a.queue_depth > 0 {
        println!(
            "admission: {} | queue {} x{} srv | wait p50 {:.2}s p95 {:.2}s p99 {:.2}s | \
             max depth {} | degraded {} | shed {} ({})",
            a.arrivals,
            a.queue_depth,
            a.servers,
            a.queue_wait.p50_s,
            a.queue_wait.p95_s,
            a.queue_wait.p99_s,
            a.max_queue_depth,
            a.degraded,
            a.shed,
            a.shed_policy
        );
    }
}

/// Reads and header-parses a `lim/snapshot-v1` file, checking the
/// recorded workload-build seed against the one the replay uses (the
/// engine itself validates benchmark, catalog and pool sizes — the seed
/// is a CLI-level concern because only the CLI knows it).
fn open_snapshot(path: &str, workload_seed: u64) -> Result<lessismore::core::Snapshot, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let snapshot = lessismore::core::Snapshot::parse(&bytes).map_err(|e| format!("{path}: {e}"))?;
    if let Some(seed) = snapshot
        .header_field("seed")
        .and_then(lessismore::json::Value::as_i64)
    {
        if seed as u64 != workload_seed {
            return Err(format!(
                "{path}: snapshot was built from workload seed {seed} but this replay \
                 uses seed {workload_seed}"
            ));
        }
    }
    Ok(snapshot)
}

fn run_serve_trace(
    options: &Options,
    workload: lessismore::workloads::Workload,
    trace: &lessismore::workloads::trace::SessionTrace,
    engine_seed: u64,
) -> ExitCode {
    use lessismore::serve::{ServeConfig, ServeEngine};

    let model = match resolve_model(options) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = ServeConfig {
        policy: options.policy,
        quant: options.quant,
        seed: engine_seed,
        admission: AdmissionConfig {
            queue_depth: options.queue_depth,
            servers: options.servers,
            shed_policy: options.shed_policy,
        },
        ..ServeConfig::default()
    };
    // Boot order: a checkpoint is a self-contained superset of a levels
    // snapshot (it carries the level sections plus the warm state), so
    // it wins when both flags are passed.
    let engine = if let Some(path) = &options.checkpoint {
        if options.snapshot.is_some() {
            eprintln!("note: --checkpoint is self-contained; ignoring --snapshot");
        }
        open_snapshot(path, engine_seed).and_then(|s| {
            ServeEngine::from_checkpoint(&s, workload, model, config)
                .map_err(|e| format!("{path}: {e}"))
        })
    } else if let Some(path) = &options.snapshot {
        open_snapshot(path, engine_seed).and_then(|s| {
            ServeEngine::from_snapshot(&s, workload, model, config)
                .map_err(|e| format!("{path}: {e}"))
        })
    } else {
        // Cold boot on the backend selected by `--index` (snapshots and
        // checkpoints carry their own index kind and ignore the flag).
        let levels = build_levels(options, &workload);
        Ok(ServeEngine::with_levels(workload, levels, model, config))
    };
    let mut engine = match engine {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match engine.process_trace(trace, options.workers) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_serve_report(&report);
    if let Some(path) = &options.out {
        if let Err(e) = std::fs::write(path, report.to_json().to_pretty_string()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(path) = &options.save_checkpoint {
        if let Err(e) = std::fs::write(path, engine.checkpoint()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote checkpoint {path}");
    }
    ExitCode::SUCCESS
}

/// `lim snapshot build --out FILE` / `lim snapshot inspect --snapshot F`.
fn cmd_snapshot(args: &[String]) -> ExitCode {
    let Some(verb) = args.first() else {
        eprintln!("error: snapshot needs a verb: build | inspect");
        return ExitCode::FAILURE;
    };
    let options = match parse(&args[1..]) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    match verb.as_str() {
        "build" => cmd_snapshot_build(&options),
        "inspect" => cmd_snapshot_inspect(&options),
        other => {
            eprintln!("error: unknown snapshot verb {other:?} (build | inspect)");
            ExitCode::FAILURE
        }
    }
}

fn cmd_snapshot_build(options: &Options) -> ExitCode {
    let Some(out) = &options.out else {
        eprintln!("error: snapshot build needs --out FILE");
        return ExitCode::FAILURE;
    };
    let workload = match build_workload(options) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let levels = build_levels(options, &workload);
    let bytes = lessismore::core::write_levels_snapshot(
        &levels,
        workload.name,
        options.seed,
        workload.queries.len(),
    );
    if let Err(e) = std::fs::write(out, &bytes) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out}: {} ({} tools, {} clusters, {} bytes)",
        lessismore::core::SNAPSHOT_FORMAT,
        levels.tool_count(),
        levels.clusters().len(),
        bytes.len()
    );
    ExitCode::SUCCESS
}

/// Prints the header and section table. Only the Level-1 index section
/// is decoded (to report its backend kind and vector count); everything
/// else stays undecoded — the cheap half of the lazy-loading contract.
fn cmd_snapshot_inspect(options: &Options) -> ExitCode {
    let Some(path) = &options.snapshot else {
        eprintln!("error: snapshot inspect needs --snapshot FILE");
        return ExitCode::FAILURE;
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let snapshot = match lessismore::core::Snapshot::parse(&bytes) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{path}: {} kind {} ({} payload bytes)",
        lessismore::core::SNAPSHOT_FORMAT,
        snapshot.kind(),
        snapshot.payload_len()
    );
    for key in [
        "benchmark",
        "seed",
        "pool_size",
        "tool_count",
        "train_size",
        "dim",
    ] {
        if let Some(v) = snapshot.header_field(key) {
            println!("  {key}: {v}");
        }
    }
    // Decode the index section (only) so the operator can see which
    // backend this snapshot boots and how many vectors it carries.
    let index_note = snapshot
        .section(lessismore::core::SECTION_TOOL_INDEX)
        .ok()
        .map(|doc| {
            let kind = doc
                .get("kind")
                .and_then(lessismore::json::Value::as_str)
                .unwrap_or("flat")
                .to_owned();
            let vectors = doc
                .get("postings")
                .and_then(lessismore::json::Value::as_array)
                .map_or(0, <[lessismore::json::Value]>::len);
            (kind, vectors)
        });
    if let Some((kind, vectors)) = &index_note {
        println!("  index: {kind} ({vectors} vectors)");
    }
    println!(
        "  sections ({} of {} decoded):",
        snapshot.decoded_sections().len(),
        snapshot.section_names().len()
    );
    for name in snapshot.section_names() {
        let annotation = match &index_note {
            Some((kind, _)) if name == lessismore::core::SECTION_TOOL_INDEX => {
                format!("  ({kind})")
            }
            _ => String::new(),
        };
        println!(
            "    {name:<12} {:>9} bytes{annotation}",
            snapshot.section_len(name).unwrap_or(0)
        );
    }
    ExitCode::SUCCESS
}

fn cmd_loadgen(options: &Options) -> ExitCode {
    use lessismore::workloads::trace::{zipf_trace, TraceConfig};

    let workload = match build_workload(options) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = zipf_trace(
        &workload,
        &TraceConfig {
            seed: options.seed,
            sessions: options.sessions,
            requests_per_session: options.requests,
            zipf_s: options.zipf,
            arrivals: options.arrivals.unwrap_or(ArrivalProcess::BackToBack),
        },
    );
    println!(
        "generated trace: {} sessions, {} requests, {} unique queries (zipf {:.2}, pool {}, arrivals {})",
        trace.sessions.len(),
        trace.requests(),
        trace.unique_queries(),
        trace.zipf_s,
        trace.pool_size,
        trace.arrivals.label()
    );
    if let Some(path) = &options.save_trace {
        let mut doc = trace.to_json();
        // Advisory generation-time engine config: `lim serve` warns when
        // its flags diverge, so replayed reports are never silently
        // non-comparable with the generation run.
        doc.insert(
            "generator",
            lessismore::json::Value::object([
                (
                    "policy",
                    lessismore::json::Value::from(options.policy.label()),
                ),
                (
                    "model",
                    lessismore::json::Value::from(options.model.as_str()),
                ),
                (
                    "quant",
                    lessismore::json::Value::from(options.quant.label()),
                ),
            ]),
        );
        if let Err(e) = std::fs::write(path, doc.to_pretty_string()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    run_serve_trace(options, workload, &trace, options.seed)
}

fn cmd_serve(options: &Options) -> ExitCode {
    use lessismore::workloads::trace::SessionTrace;

    let Some(path) = &options.trace else {
        eprintln!("error: serve needs --trace FILE (generate one with lim loadgen --save-trace)");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match lessismore::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match SessionTrace::from_json(&doc) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // `--arrivals` re-stamps the loaded trace deterministically (from
    // the trace's own seed), so a v1 document without timestamps can
    // still drive the admission layer.
    let trace = match options.arrivals {
        Some(process) => trace.with_arrivals(process),
        None => trace,
    };
    // The engine config (policy/model/quant) still comes from flags; if
    // the document carries the generation-time config, flag divergence is
    // called out so reports are never silently non-comparable.
    if let Some(generator) = doc.get("generator") {
        let get = |field: &str| {
            generator
                .get(field)
                .and_then(lessismore::json::Value::as_str)
        };
        let current = [
            ("policy", options.policy.label()),
            ("model", options.model.clone()),
            ("quant", options.quant.label().to_owned()),
        ];
        for (field, now) in &current {
            if let Some(generated) = get(field) {
                if generated != now {
                    eprintln!(
                        "warning: trace was generated with {field} {generated} but replaying \
                         with {now}; pass --{field} {generated} to reproduce the original run"
                    );
                }
            }
        }
    }

    // The trace document records the benchmark, seed and pool size it was
    // generated over (loadgen uses one seed for both the workload and the
    // draws), so the replay rebuilds exactly that workload — no way to
    // silently pair the trace with a different query pool via flags.
    let workload = match build_workload_with(&trace.benchmark, trace.seed, trace.pool_size) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    run_serve_trace(options, workload, &trace, trace.seed)
}

fn cmd_compare(options: &Options) -> ExitCode {
    use lessismore::bench::compare::compare_documents;

    let (Some(baseline_path), Some(current_path)) = (&options.baseline, &options.current) else {
        eprintln!("error: compare needs --baseline FILE and --current FILE");
        return ExitCode::FAILURE;
    };
    let read = |path: &str| -> Result<lessismore::json::Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        lessismore::json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, current) = match (read(baseline_path), read(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match compare_documents(&baseline, &current, options.tolerance) {
        Ok(regressions) if regressions.is_empty() => {
            println!(
                "ok: {current_path} within {:.0}% of {baseline_path}",
                100.0 * options.tolerance
            );
            ExitCode::SUCCESS
        }
        Ok(regressions) => {
            eprintln!(
                "FAIL: {} tracked metric(s) regressed more than {:.0}%:",
                regressions.len(),
                100.0 * options.tolerance
            );
            for r in &regressions {
                eprintln!("  {r}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_levels(options: &Options) -> ExitCode {
    let workload = match build_workload(options) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &options.load {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match lessismore::json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        match load_levels(&doc) {
            Ok(levels) => {
                println!(
                    "loaded {}: {} tools, {} clusters",
                    path,
                    levels.tool_count(),
                    levels.clusters().len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let levels = build_levels(options, &workload);
        println!(
            "built levels for {} ({} index): {} tools, {} clusters",
            workload.name,
            levels.tool_index().kind(),
            levels.tool_count(),
            levels.clusters().len()
        );
        if let Some(path) = &options.save {
            let doc = save_levels(&levels);
            if let Err(e) = std::fs::write(path, doc.to_string()) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("saved to {path}");
        }
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    /// The usage block is hand-maintained and has drifted before: this
    /// scans the parser's own source for `"--flag" =>` match arms and
    /// asserts each flag appears in the `--help` output, so a new option
    /// cannot land undocumented.
    #[test]
    fn every_parsed_flag_appears_in_help() {
        let source = include_str!("lim.rs");
        let help = super::help_text();
        let mut flags = Vec::new();
        for line in source.lines() {
            let trimmed = line.trim();
            let Some(rest) = trimmed.strip_prefix("\"--") else {
                continue;
            };
            let Some((flag, after)) = rest.split_once('"') else {
                continue;
            };
            if !after.trim_start().starts_with("=>") {
                continue;
            }
            flags.push(format!("--{flag}"));
        }
        assert!(
            flags.len() >= 30,
            "flag scan looks broken: only found {flags:?}"
        );
        for required in ["--index", "--ef-search", "--ef-construction", "--hnsw-m"] {
            assert!(
                flags.iter().any(|f| f == required),
                "{required} is not parsed anywhere"
            );
        }
        for flag in &flags {
            assert!(
                help.contains(flag.as_str()),
                "{flag} is parsed but missing from the --help text"
            );
        }
    }

    /// The snapshot/checkpoint flags parse into the options they set.
    #[test]
    fn snapshot_flags_parse() {
        let args: Vec<String> = [
            "--snapshot",
            "levels.limsnap",
            "--checkpoint",
            "warm.limsnap",
            "--save-checkpoint",
            "next.limsnap",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let options = super::parse(&args).expect("valid flags");
        assert_eq!(options.snapshot.as_deref(), Some("levels.limsnap"));
        assert_eq!(options.checkpoint.as_deref(), Some("warm.limsnap"));
        assert_eq!(options.save_checkpoint.as_deref(), Some("next.limsnap"));
        assert!(super::parse(&["--snapshot".to_owned()]).is_err());
    }

    /// The index-backend flags parse into the spec the level build uses,
    /// regardless of flag order.
    #[test]
    fn index_flags_parse() {
        let args: Vec<String> = [
            "--ef-search",
            "96",
            "--index",
            "hnsw",
            "--hnsw-m",
            "24",
            "--ef-construction",
            "200",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let options = super::parse(&args).expect("valid flags");
        let super::IndexSpec::Hnsw(params) = super::index_spec(&options) else {
            panic!("--index hnsw must resolve to an HNSW spec");
        };
        assert_eq!(params.m, 24);
        assert_eq!(params.ef_construction, 200);
        assert_eq!(params.ef_search, 96);

        let flat = super::parse(&[]).expect("defaults");
        assert!(matches!(super::index_spec(&flat), super::IndexSpec::Flat));
        let ivf = super::parse(&["--index".to_owned(), "ivf".to_owned()]).expect("ivf");
        assert!(matches!(super::index_spec(&ivf), super::IndexSpec::Ivf(_)));

        assert!(super::parse(&["--index".to_owned(), "pq".to_owned()]).is_err());
        assert!(super::parse(&["--hnsw-m".to_owned(), "1".to_owned()]).is_err());
        assert!(super::parse(&["--ef-search".to_owned(), "0".to_owned()]).is_err());
    }

    /// The ann-curve flags parse: `--ann` is a bare switch and
    /// `--catalogs` is a positive-integer list.
    #[test]
    fn ann_flags_parse() {
        let args: Vec<String> = ["--ann", "--catalogs", "500,2000"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let options = super::parse(&args).expect("valid flags");
        assert!(options.ann);
        assert_eq!(options.catalogs, vec![500, 2000]);
        assert!(super::parse(&["--catalogs".to_owned(), "10,x".to_owned()]).is_err());
        assert!(super::parse(&["--catalogs".to_owned(), "0".to_owned()]).is_err());
    }

    /// The admission flags parse into the options they claim to set.
    #[test]
    fn admission_flags_parse() {
        let args: Vec<String> = [
            "--arrivals",
            "poisson:2.5",
            "--queue-depth",
            "16",
            "--shed-policy",
            "degrade",
            "--servers",
            "2",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let options = super::parse(&args).expect("valid flags");
        assert_eq!(
            options.arrivals,
            Some(super::ArrivalProcess::Poisson { rate_rps: 2.5 })
        );
        assert_eq!(options.queue_depth, 16);
        assert_eq!(options.shed_policy, super::ShedPolicy::Degrade);
        assert_eq!(options.servers, 2);
        assert!(super::parse(&["--arrivals".to_owned(), "warp:9".to_owned()]).is_err());
        assert!(super::parse(&["--shed-policy".to_owned(), "panic".to_owned()]).is_err());
    }
}
