//! `lim` — command-line front end to the Less-is-More reproduction.
//!
//! ```text
//! lim models                                     list model profiles
//! lim evaluate [options]                         run a policy over a benchmark
//! lim bench    [options] [--out FILE]            parallel policy sweep + BENCH_*.json
//! lim trace    [options] --query I               JSON execution trace of one query
//! lim levels   [options] [--save FILE|--load F]  build / persist search levels
//! lim snapshot build [options] --out FILE        write a lim/snapshot-v1 boot snapshot
//! lim snapshot inspect --snapshot FILE           print header + section table (no decode)
//! lim loadgen  [options] [--out FILE]            Zipf trace -> serving engine replay
//! lim serve    --trace FILE [options]            replay a saved session trace
//! lim serve    --stdin | --listen SOCKET         ingest a live lim/wire-v1 stream
//! lim wire     --trace FILE [--out FILE]         encode a trace as a wire stream
//! lim compare  --baseline A --current B          CI bench-regression gate
//!
//! common options:
//!   --benchmark bfcl|geoengine   (default bfcl)
//!   --model NAME                 (default llama3.1-8b)
//!   --quant f16|q4_0|q4_1|q4_K_M|q8_0   (default q4_K_M)
//!   --policy default|gorilla:K|lim:K    (default lim:3)
//!   --queries N                  (default 230)
//!   --seed S                     (default 20250331)
//!   --index flat|ivf|hnsw        Level-1 vector-index backend (default flat)
//!   --hnsw-m N --ef-construction N --ef-search N    HNSW graph knobs
//!
//! bench options:
//!   --threads N                  worker threads; 0 = all cores (default 0)
//!   --models a,b,c               models to sweep (default: the --model value)
//!   --quants q4_K_M,q8_0         quants to sweep (default: the --quant value)
//!   --policies default,lim:3     policies to sweep (default all four paper policies)
//!   --ann                        index-backend latency curve instead of the grid
//!   --catalogs 1000,10000        catalog sizes for the --ann sweep
//!   --out FILE                   write the BENCH_*.json document
//!
//! loadgen / serve options:
//!   --workers N                  serving workers; 0 = all cores (default 0)
//!   --zipf S                     Zipf exponent (default 1.0; loadgen only)
//!   --sessions N                 sessions to generate (default 64; loadgen only)
//!   --requests N                 mean requests per session (default 8; loadgen only)
//!   --arrivals SPEC              back-to-back | poisson:RATE | burst:RATE:SIZE
//!   --queue-depth N              bounded admission queue (0 = disabled; default 0)
//!   --shed-policy reject|degrade what to do when the queue fills (default reject)
//!   --servers N                  simulated executors draining the queue (default 1)
//!   --save-trace FILE            write the generated trace JSON (loadgen only)
//!   --trace FILE                 replay this trace JSON (serve/wire)
//!   --stdin                      serve: lim/wire-v1 frames on stdin/stdout
//!   --listen SOCKET              serve: lim/wire-v1 over a unix socket
//!   --out FILE                   write the BENCH_serve_*.json report
//!
//! compare options:
//!   --baseline FILE --current FILE   documents of the same schema
//!   --tolerance F                relative regression budget (default 0.10)
//! ```

use std::process::ExitCode;

use lessismore::cli::{self, Options};
use lessismore::core::{
    evaluate, load_levels, normalize_against, save_levels, LevelsConfig, Pipeline, Policy,
    SearchLevels,
};
use lessismore::llm::{profiles, ModelProfile, Quant};
use lessismore::workloads::trace::ArrivalProcess;
use lessismore::workloads::{bfcl, geoengine, Workload};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("usage: lim <models|evaluate|trace|levels> [options] (see --help)");
        return ExitCode::FAILURE;
    };
    if command == "--help" || command == "-h" || command == "help" {
        print_help();
        return ExitCode::SUCCESS;
    }
    // `snapshot` takes a verb (`build`/`inspect`) before its options, so
    // it dispatches before the flat flag parse.
    if command == "snapshot" {
        return cmd_snapshot(&args[1..]);
    }
    let options = match cli::parse(&args[1..]) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    match command.as_str() {
        "models" => cmd_models(),
        "evaluate" => cmd_evaluate(&options),
        "bench" => cmd_bench(&options),
        "trace" => cmd_trace(&options),
        "levels" => cmd_levels(&options),
        "loadgen" => cmd_loadgen(&options),
        "serve" => cmd_serve(&options),
        "wire" => cmd_wire(&options),
        "compare" => cmd_compare(&options),
        other => {
            eprintln!("unknown command {other:?}; try --help");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!("{}", cli::help_text());
}

/// Builds the search levels on the backend selected by `--index`.
fn build_levels(options: &Options, workload: &Workload) -> SearchLevels {
    let config = LevelsConfig {
        index: options.index.spec(),
        ..LevelsConfig::default()
    };
    SearchLevels::build_with(workload, &config)
}

fn build_workload(options: &Options) -> Result<Workload, String> {
    build_workload_with(&options.benchmark, options.seed, options.queries)
}

fn build_workload_with(benchmark: &str, seed: u64, queries: usize) -> Result<Workload, String> {
    match benchmark {
        "bfcl" => Ok(bfcl(seed, queries)),
        "geoengine" | "geo" => Ok(geoengine(seed, queries)),
        other => Err(format!("unknown benchmark {other:?} (bfcl|geoengine)")),
    }
}

fn resolve_model(options: &Options) -> Result<ModelProfile, String> {
    ModelProfile::by_name(&options.model)
        .ok_or_else(|| format!("unknown model {:?}; run `lim models`", options.model))
}

fn cmd_models() -> ExitCode {
    println!(
        "{:<16} {:>7} {:>9} {:>10} {:>12}",
        "name", "params", "tool-base", "arg-fid", "rec-quality"
    );
    for m in profiles::catalog() {
        println!(
            "{:<16} {:>6.1}B {:>9.3} {:>10.3} {:>12.2}",
            m.name, m.arch.params_b, m.base_tool_competence, m.arg_fidelity, m.recommender_quality
        );
    }
    ExitCode::SUCCESS
}

fn cmd_evaluate(options: &Options) -> ExitCode {
    let (workload, model) = match (build_workload(options), resolve_model(options)) {
        (Ok(w), Ok(m)) => (w, m),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let levels = build_levels(options, &workload);
    let pipeline = Pipeline::new(&workload, &levels, &model, options.quant)
        .with_seed(options.seed)
        .with_device(options.energy.device.profile());
    let baseline = evaluate(&pipeline, Policy::Default);
    let metrics = evaluate(&pipeline, options.policy);
    let (time, power) = normalize_against(&baseline, &metrics);
    println!(
        "benchmark={} model={} quant={} policy={} queries={}",
        workload.name,
        model.name,
        options.quant,
        options.policy.label(),
        metrics.queries
    );
    println!("success rate       {:>8.2}%", 100.0 * metrics.success_rate);
    println!("tool accuracy      {:>8.2}%", 100.0 * metrics.tool_accuracy);
    println!(
        "avg exec time      {:>8.2} s (norm {:.2}x)",
        metrics.avg_seconds, time
    );
    println!(
        "avg power          {:>8.2} W (norm {:.2}x)",
        metrics.avg_power_w, power
    );
    println!("avg offered tools  {:>8.1}", metrics.avg_offered_tools);
    println!(
        "level shares       L1 {:.0}% / L2 {:.0}% / L3 {:.0}%  fallback {:.0}%",
        100.0 * metrics.level1_share,
        100.0 * metrics.level2_share,
        100.0 * metrics.level3_share,
        100.0 * metrics.fallback_rate
    );
    ExitCode::SUCCESS
}

fn cmd_bench(options: &Options) -> ExitCode {
    use lessismore::bench::experiments::{model_set, run_grid_device};
    use lessismore::bench::report::{grid_to_json, pct, ratio, secs, watts, Table};
    use lessismore::core::resolve_threads;

    if options.ann {
        return cmd_bench_ann(options);
    }
    let workload = match build_workload(options) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let model_names: Vec<&str> = if options.models.is_empty() {
        vec![options.model.as_str()]
    } else {
        options.models.iter().map(String::as_str).collect()
    };
    for name in &model_names {
        if ModelProfile::by_name(name).is_none() {
            eprintln!("error: unknown model {name:?}; run `lim models`");
            return ExitCode::FAILURE;
        }
    }
    let models = model_set(&model_names);
    let quants: Vec<Quant> = if options.quants.is_empty() {
        vec![options.quant]
    } else {
        options.quants.clone()
    };
    // All four paper policies unless the sweep was narrowed with
    // `--policies` or a single `--policy`.
    let policies: Vec<Policy> = if !options.policies.is_empty() {
        options.policies.clone()
    } else if options.policy_set {
        vec![options.policy]
    } else {
        vec![
            Policy::Default,
            Policy::Gorilla { k: 3 },
            Policy::less_is_more(3),
            Policy::less_is_more(5),
        ]
    };

    let threads = resolve_threads(options.threads);
    let started = std::time::Instant::now();
    let levels = build_levels(options, &workload);
    let cells = run_grid_device(
        &workload,
        &levels,
        &models,
        &quants,
        &policies,
        options.seed,
        threads,
        options.energy.device.profile(),
    );
    let elapsed = started.elapsed();

    let mut table = Table::new(
        &format!(
            "lim bench — {} ({} queries, seed {}, {} threads)",
            workload.name, options.queries, options.seed, threads
        ),
        &[
            "model", "quant", "policy", "success", "tool acc", "time", "power", "norm t", "norm p",
        ],
    );
    for c in &cells {
        table.row(&[
            c.model.clone(),
            c.quant.to_string(),
            c.policy.clone(),
            pct(c.metrics.success_rate),
            pct(c.metrics.tool_accuracy),
            secs(c.metrics.avg_seconds),
            watts(c.metrics.avg_power_w),
            ratio(c.norm_time),
            ratio(c.norm_power),
        ]);
    }
    table.print();
    println!(
        "swept {} cells x {} queries in {:.2}s wall-clock",
        cells.len(),
        options.queries,
        elapsed.as_secs_f64()
    );

    if let Some(path) = &options.out {
        let doc = grid_to_json(
            &cells,
            workload.name,
            options.queries,
            options.seed,
            threads,
        );
        if let Err(e) = std::fs::write(path, doc.to_pretty_string()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

/// `lim bench --ann`: the index-backend latency-vs-catalog-size curve
/// (`lim-bench/ann-v1`) instead of the policy grid.
fn cmd_bench_ann(options: &Options) -> ExitCode {
    use lessismore::bench::ann::{ann_to_json, run_ann, AnnConfig, ANN_K, ANN_QUERIES};
    use lessismore::bench::report::Table;

    let mut config = AnnConfig {
        seed: options.seed,
        hnsw: options.index.hnsw(),
        ..AnnConfig::default()
    };
    if !options.catalogs.is_empty() {
        config.catalogs = options.catalogs.clone();
    }

    let started = std::time::Instant::now();
    let cells = run_ann(&config);
    let elapsed = started.elapsed();

    let mut table = Table::new(
        &format!(
            "lim bench --ann — {} queries/cell, recall@{}, seed {}",
            ANN_QUERIES, ANN_K, config.seed
        ),
        &[
            "backend",
            "catalog",
            "build",
            "query",
            "dist evals",
            "recall@10",
        ],
    );
    for c in &cells {
        table.row(&[
            c.backend.to_owned(),
            c.catalog.to_string(),
            format!("{:.3}s", c.build_seconds),
            format!("{:.1}us", c.query_seconds_mean * 1e6),
            format!("{:.1}", c.avg_dist_evals),
            format!("{:.3}", c.recall_at_10),
        ]);
    }
    table.print();
    println!(
        "swept {} cells in {:.2}s wall-clock (tracked metrics are seeded; \
         wall-clock columns are informational)",
        cells.len(),
        elapsed.as_secs_f64()
    );

    if let Some(path) = &options.out {
        let doc = ann_to_json(&config, &cells);
        if let Err(e) = std::fs::write(path, doc.to_pretty_string()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_trace(options: &Options) -> ExitCode {
    let (workload, model) = match (build_workload(options), resolve_model(options)) {
        (Ok(w), Ok(m)) => (w, m),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if options.query_index >= workload.queries.len() {
        eprintln!(
            "error: --query {} out of range (0..{})",
            options.query_index,
            workload.queries.len()
        );
        return ExitCode::FAILURE;
    }
    let levels = build_levels(options, &workload);
    let pipeline = Pipeline::new(&workload, &levels, &model, options.quant)
        .with_seed(options.seed)
        .with_device(options.energy.device.profile());
    let query = &workload.queries[options.query_index];
    let (result, trace) = pipeline.run_query_traced(query, options.policy);
    let mut doc = trace.to_json();
    doc.insert(
        "query_text",
        lessismore::json::Value::from(query.text.as_str()),
    );
    doc.insert("success", lessismore::json::Value::from(result.success));
    doc.insert(
        "seconds",
        lessismore::json::Value::from(result.cost.seconds),
    );
    println!("{}", doc.to_pretty_string());
    ExitCode::SUCCESS
}

fn print_serve_report(report: &lessismore::serve::ServeReport) {
    use lessismore::bench::report::{pct, secs, Table};
    let mut table = Table::new(
        &format!(
            "lim serve — {} {} {} policy {} ({} sessions, {} requests, {} workers)",
            report.benchmark,
            report.model,
            report.quant,
            report.policy,
            report.sessions,
            report.requests,
            report.workers
        ),
        &[
            "success",
            "tool acc",
            "p50",
            "p95",
            "p99",
            "embed hit",
            "memo hit",
            "rps",
        ],
    );
    table.row(&[
        pct(report.success_rate),
        pct(report.tool_accuracy),
        secs(report.latency.p50_s),
        secs(report.latency.p95_s),
        secs(report.latency.p99_s),
        pct(report.embed_cache.hit_rate()),
        pct(report.selection_memo.hit_rate()),
        format!("{:.0}", report.requests_per_second),
    ]);
    table.print();
    println!(
        "unique queries {} | session fast hits {} | embed {}h/{}m/{}e | memo {}h/{}m/{}e | wall {:.2}s",
        report.unique_queries,
        report.session_fast_hits,
        report.embed_cache.hits,
        report.embed_cache.misses,
        report.embed_cache.evictions,
        report.selection_memo.hits,
        report.selection_memo.misses,
        report.selection_memo.evictions,
        report.wall_seconds
    );
    let b = &report.boot;
    println!(
        "boot: {} | level build {} | prewarm {} | sim boot {:.4}s | warm entries embed {} / memo {}",
        b.mode,
        if b.build_skipped { "skipped" } else { "ran" },
        if b.prewarm_skipped { "skipped" } else { "ran" },
        b.sim_boot_seconds,
        b.warm_embed_entries,
        b.warm_memo_entries
    );
    let c = &report.catalog;
    if c.epoch > 0 {
        println!(
            "catalog: epoch {} | +{} tools / -{} tools | tombstones {} | compactions {} | \
             cluster refreshes {} | memo strandings {}",
            c.epoch,
            c.registered,
            c.retired,
            c.tombstones,
            c.compactions,
            c.cluster_refreshes,
            c.memo_invalidations
        );
    }
    let e = &report.energy;
    println!(
        "energy: {} | J/req p50 {:.2} p95 {:.2} | sustained {:.2} W max{} | \
         {:.1} gCO2/1k req | governor transitions {}",
        e.device,
        e.joules_per_request.p50_s,
        e.joules_per_request.p95_s,
        e.sustained_watts_max,
        if e.power_cap_w > 0.0 {
            format!(" (cap {:.1} W)", e.power_cap_w)
        } else {
            String::new()
        },
        e.gco2_per_1k_requests,
        e.governor_transitions
    );
    let a = &report.admission;
    if a.queue_depth > 0 {
        println!(
            "admission: {} | queue {} x{} srv | wait p50 {:.2}s p95 {:.2}s p99 {:.2}s | \
             max depth {} | degraded {} | shed {} ({})",
            a.arrivals,
            a.queue_depth,
            a.servers,
            a.queue_wait.p50_s,
            a.queue_wait.p95_s,
            a.queue_wait.p99_s,
            a.max_queue_depth,
            a.degraded,
            a.shed,
            a.shed_policy
        );
    }
}

/// Reads and header-parses a `lim/snapshot-v1` file, checking the
/// recorded workload-build seed against the one the replay uses (the
/// engine itself validates benchmark, catalog and pool sizes — the seed
/// is a CLI-level concern because only the CLI knows it).
fn open_snapshot(path: &str, workload_seed: u64) -> Result<lessismore::core::Snapshot, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let snapshot = lessismore::core::Snapshot::parse(&bytes).map_err(|e| format!("{path}: {e}"))?;
    if let Some(seed) = snapshot
        .header_field("seed")
        .and_then(lessismore::json::Value::as_i64)
    {
        if seed as u64 != workload_seed {
            return Err(format!(
                "{path}: snapshot was built from workload seed {seed} but this replay \
                 uses seed {workload_seed}"
            ));
        }
    }
    Ok(snapshot)
}

/// Builds the serving engine the flags describe: checkpoint boot wins
/// over snapshot boot wins over a cold level build.
fn build_engine(
    options: &Options,
    workload: lessismore::workloads::Workload,
    engine_seed: u64,
) -> Result<lessismore::serve::ServeEngine, String> {
    use lessismore::serve::{ServeConfig, ServeEngine};

    let model = resolve_model(options)?;
    let config = ServeConfig::builder()
        .policy(options.policy)
        .quant(options.quant)
        .seed(engine_seed)
        .admission(options.admission.config())
        .device(options.energy.device)
        .governor(options.energy.governor())
        .build();
    // Boot order: a checkpoint is a self-contained superset of a levels
    // snapshot (it carries the level sections plus the warm state), so
    // it wins when both flags are passed.
    if let Some(path) = &options.snapshots.checkpoint {
        if options.snapshots.snapshot.is_some() {
            eprintln!("note: --checkpoint is self-contained; ignoring --snapshot");
        }
        return open_snapshot(path, engine_seed).and_then(|s| {
            ServeEngine::from_checkpoint(&s, workload, model, config)
                .map_err(|e| format!("{path}: {e}"))
        });
    }
    if let Some(path) = &options.snapshots.snapshot {
        return open_snapshot(path, engine_seed).and_then(|s| {
            ServeEngine::from_snapshot(&s, workload, model, config)
                .map_err(|e| format!("{path}: {e}"))
        });
    }
    // Cold boot on the backend selected by `--index` (snapshots and
    // checkpoints carry their own index kind and ignore the flag).
    let levels = build_levels(options, &workload);
    Ok(ServeEngine::with_levels(workload, levels, model, config))
}

fn run_serve_trace(
    options: &Options,
    workload: lessismore::workloads::Workload,
    trace: &lessismore::workloads::trace::SessionTrace,
    engine_seed: u64,
) -> ExitCode {
    let mut engine = match build_engine(options, workload, engine_seed) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match engine.process_trace(trace, options.workers) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_serve_report(&report);
    if let Some(path) = &options.out {
        if let Err(e) = std::fs::write(path, report.to_json().to_pretty_string()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(path) = &options.snapshots.save_checkpoint {
        if let Err(e) = std::fs::write(path, engine.checkpoint()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote checkpoint {path}");
    }
    ExitCode::SUCCESS
}

/// Builds the fleet the flags describe: a fleet checkpoint boot wins
/// over a levels-snapshot boot wins over a cold level build. The tenant
/// count comes from the trace (or hello frame), never a flag — a saved
/// trace records how many catalogs it was generated over, so a replay
/// cannot silently pair it with a differently-sized fleet.
fn build_fleet_engine(
    options: &Options,
    workload: lessismore::workloads::Workload,
    tenants: usize,
    engine_seed: u64,
) -> Result<lessismore::serve::FleetEngine, String> {
    use lessismore::serve::{FleetConfig, FleetEngine, ServeConfig};
    use std::sync::Arc;

    let model = resolve_model(options)?;
    let base = ServeConfig::builder()
        .policy(options.policy)
        .quant(options.quant)
        .seed(engine_seed)
        .admission(options.admission.config())
        .device(options.energy.device)
        .governor(options.energy.governor())
        .build();
    let config = FleetConfig::new(tenants, base);
    if let Some(path) = &options.snapshots.checkpoint {
        if options.snapshots.snapshot.is_some() {
            eprintln!("note: --checkpoint is self-contained; ignoring --snapshot");
        }
        return open_snapshot(path, engine_seed).and_then(|s| {
            FleetEngine::from_checkpoint(&s, workload, model, config)
                .map_err(|e| format!("{path}: {e}"))
        });
    }
    if let Some(path) = &options.snapshots.snapshot {
        // A levels snapshot holds no per-tenant state, so one decoded
        // copy seeds the whole fleet copy-on-write.
        let snapshot = open_snapshot(path, engine_seed)?;
        if let Some(benchmark) = snapshot
            .header_field("benchmark")
            .and_then(lessismore::json::Value::as_str)
        {
            if benchmark != workload.name {
                return Err(format!(
                    "{path}: snapshot was built for {benchmark:?} but the fleet serves {:?}",
                    workload.name
                ));
            }
        }
        let levels = lessismore::core::levels_from_snapshot(&snapshot)
            .map_err(|e| format!("{path}: {e}"))?;
        return FleetEngine::with_shared(Arc::new(workload), Arc::new(levels), model, config);
    }
    let levels = build_levels(options, &workload);
    FleetEngine::with_shared(Arc::new(workload), Arc::new(levels), model, config)
}

/// Replays a multi-tenant trace on a [`lessismore::serve::FleetEngine`]:
/// the fleet cousin of [`run_serve_trace`], printing the overall table
/// plus a per-tenant breakdown, writing the `lim-serve/report-v6`
/// document and the fleet checkpoint.
fn run_serve_fleet(
    options: &Options,
    workload: lessismore::workloads::Workload,
    trace: &lessismore::workloads::trace::SessionTrace,
    engine_seed: u64,
) -> ExitCode {
    let mut fleet = match build_fleet_engine(options, workload, trace.tenants, engine_seed) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match fleet.process_trace(trace, options.workers) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_serve_report(&report.overall);
    print_fleet_tenants(&report);
    if let Some(path) = &options.out {
        if let Err(e) = std::fs::write(path, report.to_json().to_pretty_string()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(path) = &options.snapshots.save_checkpoint {
        if let Err(e) = std::fs::write(path, fleet.checkpoint()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote checkpoint {path}");
    }
    ExitCode::SUCCESS
}

/// One line per tenant under the overall table: traffic, success, shed
/// and the current cache grants against their QoS floors — the numbers
/// the isolation guarantee is stated in.
fn print_fleet_tenants(report: &lessismore::serve::FleetReport) {
    println!("tenants ({}):", report.tenants.len());
    for t in &report.tenants {
        let r = &t.report;
        println!(
            "  t{}: {} req / {} sessions | success {:.1}% | shed {} | embed {}h/{}m/{}e \
             cap {} (floor {}) | memo cap {} (floor {})",
            t.tenant,
            r.requests,
            r.sessions,
            100.0 * r.success_rate,
            r.admission.shed,
            r.embed_cache.hits,
            r.embed_cache.misses,
            r.embed_cache.evictions,
            t.embed_capacity,
            t.embed_floor,
            t.memo_capacity,
            t.memo_floor
        );
    }
}

/// `lim snapshot build --out FILE` / `lim snapshot inspect --snapshot F`.
fn cmd_snapshot(args: &[String]) -> ExitCode {
    let Some(verb) = args.first() else {
        eprintln!("error: snapshot needs a verb: build | inspect");
        return ExitCode::FAILURE;
    };
    let options = match cli::parse(&args[1..]) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    match verb.as_str() {
        "build" => cmd_snapshot_build(&options),
        "inspect" => cmd_snapshot_inspect(&options),
        other => {
            eprintln!("error: unknown snapshot verb {other:?} (build | inspect)");
            ExitCode::FAILURE
        }
    }
}

fn cmd_snapshot_build(options: &Options) -> ExitCode {
    let Some(out) = &options.out else {
        eprintln!("error: snapshot build needs --out FILE");
        return ExitCode::FAILURE;
    };
    let workload = match build_workload(options) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let levels = build_levels(options, &workload);
    let bytes = lessismore::core::write_levels_snapshot(
        &levels,
        workload.name,
        options.seed,
        workload.queries.len(),
    );
    if let Err(e) = std::fs::write(out, &bytes) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out}: {} ({} tools, {} clusters, {} bytes)",
        lessismore::core::SNAPSHOT_FORMAT,
        levels.tool_count(),
        levels.clusters().len(),
        bytes.len()
    );
    ExitCode::SUCCESS
}

/// Prints the header and section table. Only the Level-1 index section
/// is decoded (to report its backend kind and vector count); everything
/// else stays undecoded — the cheap half of the lazy-loading contract.
fn cmd_snapshot_inspect(options: &Options) -> ExitCode {
    let Some(path) = &options.snapshots.snapshot else {
        eprintln!("error: snapshot inspect needs --snapshot FILE");
        return ExitCode::FAILURE;
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let snapshot = match lessismore::core::Snapshot::parse(&bytes) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{path}: {} kind {} ({} payload bytes)",
        lessismore::core::SNAPSHOT_FORMAT,
        snapshot.kind(),
        snapshot.payload_len()
    );
    for key in [
        "benchmark",
        "seed",
        "pool_size",
        "tool_count",
        "train_size",
        "dim",
    ] {
        if let Some(v) = snapshot.header_field(key) {
            println!("  {key}: {v}");
        }
    }
    // Decode the index section (only) so the operator can see which
    // backend this snapshot boots and how many vectors it carries.
    let index_note = snapshot
        .section(lessismore::core::SECTION_TOOL_INDEX)
        .ok()
        .map(|doc| {
            let kind = doc
                .get("kind")
                .and_then(lessismore::json::Value::as_str)
                .unwrap_or("flat")
                .to_owned();
            let vectors = doc
                .get("postings")
                .and_then(lessismore::json::Value::as_array)
                .map_or(0, <[lessismore::json::Value]>::len);
            (kind, vectors)
        });
    if let Some((kind, vectors)) = &index_note {
        println!("  index: {kind} ({vectors} vectors)");
    }
    println!(
        "  sections ({} of {} decoded):",
        snapshot.decoded_sections().len(),
        snapshot.section_names().len()
    );
    for name in snapshot.section_names() {
        let annotation = match &index_note {
            Some((kind, _)) if name == lessismore::core::SECTION_TOOL_INDEX => {
                format!("  ({kind})")
            }
            _ => String::new(),
        };
        println!(
            "    {name:<12} {:>9} bytes{annotation}",
            snapshot.section_len(name).unwrap_or(0)
        );
    }
    ExitCode::SUCCESS
}

fn cmd_loadgen(options: &Options) -> ExitCode {
    use lessismore::workloads::trace::{zipf_trace, TraceConfig};

    let workload = match build_workload(options) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = zipf_trace(
        &workload,
        &TraceConfig {
            seed: options.seed,
            sessions: options.sessions,
            requests_per_session: options.requests,
            zipf_s: options.zipf,
            arrivals: options
                .admission
                .arrivals
                .unwrap_or(ArrivalProcess::BackToBack),
            tenants: options.tenants,
            tenant_skew: options.tenant_skew,
        },
    );
    let trace = if options.churn > 0 {
        let churn_config = lessismore::workloads::churn::ChurnConfig {
            seed: options.churn_seed,
            registers: options.churn,
            retires: options.churn,
        };
        // A fleet trace churns every tenant's catalog independently (the
        // per-tenant schedule derives its own seed), a single-tenant one
        // keeps the classic schedule bit-for-bit.
        if trace.tenants > 1 {
            lessismore::workloads::churn::with_tenant_churn(&workload, trace, &churn_config)
        } else {
            lessismore::workloads::churn::with_churn(&workload, trace, &churn_config)
        }
    } else {
        trace
    };
    println!(
        "generated trace: {} sessions, {} requests, {} unique queries (zipf {:.2}, pool {}, arrivals {})",
        trace.sessions.len(),
        trace.requests(),
        trace.unique_queries(),
        trace.zipf_s,
        trace.pool_size,
        trace.arrivals.label()
    );
    if trace.tenants > 1 {
        println!(
            "fleet: {} tenants, traffic skew {:.2} (tenant 0 hottest)",
            trace.tenants, options.tenant_skew
        );
    }
    if !trace.churn.is_empty() {
        println!(
            "stamped {} catalog mutations (churn seed {})",
            trace.churn.len(),
            options.churn_seed
        );
    }
    if let Some(path) = &options.save_trace {
        let mut doc = trace.to_json();
        // Advisory generation-time engine config: `lim serve` warns when
        // its flags diverge, so replayed reports are never silently
        // non-comparable with the generation run.
        doc.insert(
            "generator",
            lessismore::json::Value::object([
                (
                    "policy",
                    lessismore::json::Value::from(options.policy.label()),
                ),
                (
                    "model",
                    lessismore::json::Value::from(options.model.as_str()),
                ),
                (
                    "quant",
                    lessismore::json::Value::from(options.quant.label()),
                ),
            ]),
        );
        if let Err(e) = std::fs::write(path, doc.to_pretty_string()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if trace.tenants > 1 {
        run_serve_fleet(options, workload, &trace, options.seed)
    } else {
        run_serve_trace(options, workload, &trace, options.seed)
    }
}

fn cmd_serve(options: &Options) -> ExitCode {
    use lessismore::workloads::trace::SessionTrace;

    if options.stdin || options.listen.is_some() {
        return cmd_serve_wire(options);
    }
    let Some(path) = &options.trace else {
        eprintln!(
            "error: serve needs --trace FILE (generate one with lim loadgen --save-trace) \
             or a wire stream (--stdin | --listen SOCKET)"
        );
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match lessismore::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match SessionTrace::from_json(&doc) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // `--arrivals` re-stamps the loaded trace deterministically (from
    // the trace's own seed), so a v1 document without timestamps can
    // still drive the admission layer.
    let trace = match options.admission.arrivals {
        Some(process) => trace.with_arrivals(process),
        None => trace,
    };
    // The engine config (policy/model/quant) still comes from flags; if
    // the document carries the generation-time config, flag divergence is
    // called out so reports are never silently non-comparable.
    if let Some(generator) = doc.get("generator") {
        let get = |field: &str| {
            generator
                .get(field)
                .and_then(lessismore::json::Value::as_str)
        };
        let current = [
            ("policy", options.policy.label()),
            ("model", options.model.clone()),
            ("quant", options.quant.label().to_owned()),
        ];
        for (field, now) in &current {
            if let Some(generated) = get(field) {
                if generated != now {
                    eprintln!(
                        "warning: trace was generated with {field} {generated} but replaying \
                         with {now}; pass --{field} {generated} to reproduce the original run"
                    );
                }
            }
        }
    }

    // The trace document records the benchmark, seed and pool size it was
    // generated over (loadgen uses one seed for both the workload and the
    // draws), so the replay rebuilds exactly that workload — no way to
    // silently pair the trace with a different query pool via flags.
    let workload = match build_workload_with(&trace.benchmark, trace.seed, trace.pool_size) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if trace.tenants > 1 {
        run_serve_fleet(options, workload, &trace, trace.seed)
    } else {
        run_serve_trace(options, workload, &trace, trace.seed)
    }
}

// ---------------------------------------------------------------------
// lim/wire-v1 ingestion front-end. The protocol codec is pure and lives
// in `lessismore::serve::wire`; only the I/O shell — stdin/stdout, unix
// sockets, signals, batching — is here, and batching is the one thing
// this loop decides: by the engine's batching-invariance guarantee it
// cannot change a single reported number.
// ---------------------------------------------------------------------

/// Set by the SIGTERM handler; the wire loops poll it and drain
/// gracefully — finish the session, emit the final report frame, write
/// the `--save-checkpoint` — instead of dying mid-stream.
static TERMINATED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_sigterm(_signum: i32) {
    TERMINATED.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Installs the SIGTERM handler. No external crates: the C `signal`
/// entry point is declared directly.
fn install_sigterm_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
    }
}

fn terminated() -> bool {
    TERMINATED.load(std::sync::atomic::Ordering::SeqCst)
}

/// Forwards lines from `reader` into a channel on a thread, so the main
/// loop can batch whatever has already arrived without blocking on I/O
/// (and keeps noticing SIGTERM between polls).
fn spawn_line_reader<R: std::io::Read + Send + 'static>(
    reader: R,
) -> std::sync::mpsc::Receiver<String> {
    use std::io::BufRead;
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in std::io::BufReader::new(reader).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    rx
}

/// A warm wire engine: the classic single-tenant path (byte-identical
/// to the pre-tenancy protocol) or a tenant fleet, selected by the
/// hello frame's `tenants` field.
enum WireEngine {
    /// One `ServeEngine`, as before tenancy existed. Boxed so the enum
    /// stays small next to the multi-engine fleet variant.
    Single(Box<lessismore::serve::ServeEngine>),
    /// A [`lessismore::serve::FleetEngine`] routing frames by tenant id.
    /// Boxed for the same reason.
    Fleet(Box<lessismore::serve::FleetEngine>),
}

impl WireEngine {
    fn checkpoint(&self) -> Vec<u8> {
        match self {
            Self::Single(engine) => engine.checkpoint(),
            Self::Fleet(fleet) => fleet.checkpoint(),
        }
    }
}

/// The final document of a wire stream: `lim-serve/report-v5` for a
/// single-tenant stream, `report-v6` (with per-tenant breakdowns) for a
/// fleet.
enum WireReport {
    Single(lessismore::serve::ServeReport),
    Fleet(lessismore::serve::FleetReport),
}

impl WireReport {
    fn overall(&self) -> &lessismore::serve::ServeReport {
        match self {
            Self::Single(report) => report,
            Self::Fleet(report) => &report.overall,
        }
    }

    fn to_json(&self) -> lessismore::json::Value {
        match self {
            Self::Single(report) => report.to_json(),
            Self::Fleet(report) => report.to_json(),
        }
    }
}

/// Speaks one `lim/wire-v1` stream end to end: waits for the `hello`,
/// builds the engine from its recorded workload (or checks a warm one
/// still matches), then repeatedly submits whatever `request` frames
/// have arrived and answers with `disposition`/`latency` frames, ending
/// with the final `report` frame on EOF or SIGTERM.
///
/// A request naming a tenant the engine does not serve is the one
/// protocol error that does NOT abandon the stream: it is answered with
/// a typed `error` frame and every other tenant keeps serving.
fn serve_wire_stream<W: std::io::Write>(
    options: &Options,
    lines: &std::sync::mpsc::Receiver<String>,
    writer: &mut W,
    engine_slot: &mut Option<(lessismore::serve::wire::Hello, WireEngine)>,
) -> Result<WireReport, String> {
    use lessismore::serve::wire;
    use lessismore::serve::{FleetSubmitError, StreamMeta, StreamRequest};
    use lessismore::workloads::trace::arrival_us_to_seconds;
    use std::sync::mpsc::RecvTimeoutError;

    let poll = std::time::Duration::from_millis(25);
    fn emit<W: std::io::Write>(
        writer: &mut W,
        frame: &lessismore::json::Value,
    ) -> Result<(), String> {
        writeln!(writer, "{frame}").map_err(|e| format!("cannot write frame: {e}"))?;
        writer
            .flush()
            .map_err(|e| format!("cannot flush frame: {e}"))
    }
    // A protocol violation is answered with an error frame before the
    // stream is abandoned, so the peer learns why.
    macro_rules! bail {
        ($msg:expr) => {{
            let message: String = $msg;
            let _ = emit(writer, &wire::error_frame(&message));
            return Err(message);
        }};
    }

    // The stream must open with a hello frame.
    let hello = loop {
        if terminated() {
            return Err("terminated before the hello frame".to_owned());
        }
        match lines.recv_timeout(poll) {
            Ok(line) if line.trim().is_empty() => continue,
            Ok(line) => match wire::parse_client_frame(&line) {
                Ok(wire::ClientFrame::Hello(h)) => break h,
                Ok(_) => bail!("first frame must be hello".to_owned()),
                Err(e) => bail!(e),
            },
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                return Err("stream closed before the hello frame".to_owned());
            }
        }
    };

    // The hello's recorded workload drives the engine build — exactly
    // like `lim serve --trace` rebuilds the generation-time workload
    // from the trace document. A warm engine (socket mode serves many
    // streams on one engine) must have been built for the same workload.
    match engine_slot {
        Some((first, _)) => {
            if first.benchmark != hello.benchmark
                || first.pool_size != hello.pool_size
                || first.trace_seed != hello.trace_seed
                || first.tenants != hello.tenants
            {
                bail!(format!(
                    "hello declares workload {}/{} seed {} tenants {} but this engine serves \
                     {}/{} seed {} tenants {}",
                    hello.benchmark,
                    hello.pool_size,
                    hello.trace_seed,
                    hello.tenants,
                    first.benchmark,
                    first.pool_size,
                    first.trace_seed,
                    first.tenants
                ));
            }
        }
        None => {
            let workload =
                match build_workload_with(&hello.benchmark, hello.trace_seed, hello.pool_size) {
                    Ok(w) => w,
                    Err(e) => bail!(e),
                };
            let engine = if hello.tenants > 1 {
                match build_fleet_engine(options, workload, hello.tenants, hello.trace_seed) {
                    Ok(f) => WireEngine::Fleet(Box::new(f)),
                    Err(e) => bail!(e),
                }
            } else {
                match build_engine(options, workload, hello.trace_seed) {
                    Ok(e) => WireEngine::Single(Box::new(e)),
                    Err(e) => bail!(e),
                }
            };
            *engine_slot = Some((hello.clone(), engine));
        }
    }
    let (_, engine) = engine_slot.as_mut().expect("engine built above");

    let meta = StreamMeta {
        trace_seed: hello.trace_seed,
        zipf_s: hello.zipf_s,
        arrivals: hello.arrivals,
        sessions: hello.sessions,
    };

    let tenants = hello.tenants;
    let unknown_tenant = move |tenant: u64| {
        wire::error_frame(&FleetSubmitError::UnknownTenant { tenant, tenants }.to_string())
    };

    // One macro instead of one loop per engine kind: the ingest loop is
    // identical for the single and fleet paths except for how a frame's
    // tenant id is routed, so the four routing callbacks are the only
    // per-kind code. `$valid(t)` gates every tenant-carrying frame: an
    // out-of-range id answers with a typed `error` frame and the stream
    // keeps serving.
    macro_rules! ingest {
        ($session:ident, $valid:expr, $submit:expr, $register:expr, $retire:expr, $epoch:expr) => {
            loop {
                let mut batch = Vec::new();
                match lines.recv_timeout(poll) {
                    Ok(line) => {
                        batch.push(line);
                        while let Ok(line) = lines.try_recv() {
                            batch.push(line);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        if terminated() {
                            break;
                        }
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
                for line in batch {
                    if line.trim().is_empty() {
                        continue;
                    }
                    match wire::parse_client_frame(&line) {
                        Ok(wire::ClientFrame::Request {
                            tenant,
                            session: id,
                            query,
                            arrival_us,
                        }) => {
                            if !$valid(tenant) {
                                emit(writer, &unknown_tenant(tenant))?;
                                continue;
                            }
                            let request = StreamRequest {
                                session: id,
                                query_index: query,
                                arrival_s: arrival_us.map(arrival_us_to_seconds),
                            };
                            if let Err(e) = $submit(&mut $session, tenant, request) {
                                bail!(e);
                            }
                        }
                        // Catalog mutations drain the pending batch first
                        // (the engine's drain-boundary rule), so the
                        // events they force out are owed to the client
                        // before the acknowledgement.
                        Ok(wire::ClientFrame::Register { tenant, tool }) => {
                            if !$valid(tenant) {
                                emit(writer, &unknown_tenant(tenant))?;
                                continue;
                            }
                            match $register(&mut $session, tenant, &tool) {
                                Ok((index, events)) => {
                                    for event in events {
                                        for frame in wire::event_frames(&event) {
                                            emit(writer, &frame)?;
                                        }
                                    }
                                    let epoch = $epoch(&$session, tenant);
                                    emit(writer, &wire::catalog_frame("register", index, epoch))?;
                                }
                                Err(e) => bail!(e),
                            }
                        }
                        Ok(wire::ClientFrame::Retire { tenant, id }) => {
                            if !$valid(tenant) {
                                emit(writer, &unknown_tenant(tenant))?;
                                continue;
                            }
                            match $retire(&mut $session, tenant, id) {
                                Ok(events) => {
                                    for event in events {
                                        for frame in wire::event_frames(&event) {
                                            emit(writer, &frame)?;
                                        }
                                    }
                                    let epoch = $epoch(&$session, tenant);
                                    emit(writer, &wire::catalog_frame("retire", id, epoch))?;
                                }
                                Err(e) => bail!(e),
                            }
                        }
                        Ok(wire::ClientFrame::Hello(_)) => {
                            bail!("duplicate hello frame".to_owned())
                        }
                        Err(e) => bail!(e),
                    }
                }
                for event in $session.drain() {
                    for frame in wire::event_frames(&event) {
                        emit(writer, &frame)?;
                    }
                }
            }
        };
    }

    match engine {
        WireEngine::Single(engine) => {
            let mut session = engine.begin_stream(meta, options.workers);
            emit(writer, &wire::ready_frame())?;
            ingest!(
                session,
                |tenant: u64| tenant == 0,
                |s: &mut lessismore::serve::ServeSession<'_>, _t, request| {
                    s.submit(request).map(|_| ())
                },
                |s: &mut lessismore::serve::ServeSession<'_>, _t, doc: &_| s.register_tool(doc),
                |s: &mut lessismore::serve::ServeSession<'_>, _t, id| s.retire_tool(id),
                |s: &lessismore::serve::ServeSession<'_>, _t| s.epoch()
            );
            // Graceful drain: resolve everything still queued, then report.
            let (report, tail) = session.finish_with_events();
            for event in tail {
                for frame in wire::event_frames(&event) {
                    emit(writer, &frame)?;
                }
            }
            emit(writer, &wire::report_frame(&report))?;
            Ok(WireReport::Single(report))
        }
        WireEngine::Fleet(fleet) => {
            let count = fleet.tenants() as u64;
            let mut session = fleet.begin_stream(meta, options.workers);
            emit(writer, &wire::ready_frame())?;
            ingest!(
                session,
                |tenant: u64| tenant < count,
                |s: &mut lessismore::serve::FleetSession<'_>, tenant, request| {
                    // The tenant id was range-checked above; any residual
                    // fleet error is a real protocol violation.
                    s.submit(tenant, request)
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                },
                |s: &mut lessismore::serve::FleetSession<'_>, tenant, doc: &_| {
                    s.register_tool(tenant, doc)
                },
                |s: &mut lessismore::serve::FleetSession<'_>, tenant, id| s.retire_tool(tenant, id),
                |s: &lessismore::serve::FleetSession<'_>, tenant| s.epoch(tenant).unwrap_or(0)
            );
            let (report, tail) = session.finish_with_events();
            for event in tail {
                for frame in wire::event_frames(&event) {
                    emit(writer, &frame)?;
                }
            }
            // The fleet's final frame carries the report-v6 document —
            // per-tenant breakdowns included — under the same additive
            // `"frame": "report"` tag.
            let mut frame = report.to_json();
            frame.insert("frame", lessismore::json::Value::from("report"));
            emit(writer, &frame)?;
            Ok(WireReport::Fleet(report))
        }
    }
}

/// Post-stream bookkeeping shared by the stdin and socket front-ends:
/// a one-line summary on stderr (stdout carries protocol frames), the
/// `--out` report document and the `--save-checkpoint` warm state.
fn finish_wire_stream(
    options: &Options,
    report: &WireReport,
    engine: Option<&WireEngine>,
) -> Result<(), String> {
    let overall = report.overall();
    eprintln!(
        "served {} requests ({} sessions): success {:.2}%, shed {}, degraded {}",
        overall.requests,
        overall.sessions,
        100.0 * overall.success_rate,
        overall.admission.shed,
        overall.admission.degraded
    );
    if let WireReport::Fleet(fleet) = report {
        for t in &fleet.tenants {
            eprintln!(
                "  t{}: {} req | shed {} | embed cap {} (floor {})",
                t.tenant,
                t.report.requests,
                t.report.admission.shed,
                t.embed_capacity,
                t.embed_floor
            );
        }
    }
    if let Some(path) = &options.out {
        std::fs::write(path, report.to_json().to_pretty_string())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let (Some(path), Some(engine)) = (&options.snapshots.save_checkpoint, engine) {
        std::fs::write(path, engine.checkpoint())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote checkpoint {path}");
    }
    Ok(())
}

/// `lim serve --stdin` / `lim serve --listen SOCKET`.
fn cmd_serve_wire(options: &Options) -> ExitCode {
    if options.stdin && options.listen.is_some() {
        eprintln!("error: --stdin and --listen are mutually exclusive");
        return ExitCode::FAILURE;
    }
    if options.trace.is_some() {
        eprintln!("error: --trace replays offline; drop it to ingest a wire stream");
        return ExitCode::FAILURE;
    }
    // Arrival re-stamping is an offline-replay affordance; a live stream's
    // recorded timestamps are always honored.
    if options.admission.arrivals.is_some() {
        eprintln!(
            "error: --arrivals re-stamps a loaded trace; a wire stream carries its own \
             timestamps (re-stamp at encode time: lim wire --trace FILE --arrivals SPEC)"
        );
        return ExitCode::FAILURE;
    }
    install_sigterm_handler();
    let result = match &options.listen {
        None => {
            let lines = spawn_line_reader(std::io::stdin());
            let mut stdout = std::io::stdout();
            let mut engine_slot = None;
            serve_wire_stream(options, &lines, &mut stdout, &mut engine_slot).and_then(|report| {
                finish_wire_stream(options, &report, engine_slot.as_ref().map(|(_, e)| e))
            })
        }
        Some(path) => serve_wire_listen(options, path),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Accepts `lim/wire-v1` connections on a unix socket, one stream at a
/// time, all on the same warm engine — successive streams see warm
/// caches exactly like successive traces through one `ServeEngine`.
/// SIGTERM stops accepting, removes the socket file and writes the
/// final `--save-checkpoint`.
fn serve_wire_listen(options: &Options, path: &str) -> Result<(), String> {
    use std::os::unix::net::UnixListener;

    // A stale socket file from a previous run would fail the bind.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).map_err(|e| format!("cannot bind {path}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot poll {path}: {e}"))?;
    eprintln!(
        "listening on {path} ({})",
        lessismore::serve::wire::WIRE_PROTO
    );
    let mut engine_slot = None;
    while !terminated() {
        match listener.accept() {
            Ok((stream, _)) => {
                let reader = match stream.try_clone() {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("warning: cannot clone connection: {e}");
                        continue;
                    }
                };
                let lines = spawn_line_reader(reader);
                let mut writer = stream;
                match serve_wire_stream(options, &lines, &mut writer, &mut engine_slot) {
                    // The checkpoint is written once at shutdown, not per
                    // stream: pass no engine here.
                    Ok(report) => {
                        if let Err(e) = finish_wire_stream(options, &report, None) {
                            eprintln!("warning: {e}");
                        }
                    }
                    Err(e) => eprintln!("warning: stream failed: {e}"),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            Err(e) => {
                let _ = std::fs::remove_file(path);
                return Err(format!("accept on {path}: {e}"));
            }
        }
    }
    let _ = std::fs::remove_file(path);
    if let (Some(ck), Some((_, engine))) = (&options.snapshots.save_checkpoint, &engine_slot) {
        std::fs::write(ck, engine.checkpoint()).map_err(|e| format!("cannot write {ck}: {e}"))?;
        eprintln!("wrote checkpoint {ck}");
    }
    Ok(())
}

/// `lim wire --trace FILE [--out FILE]`: encode a `trace-v1` document as
/// a `lim/wire-v1` client stream — the hello frame plus one request
/// frame per request in canonical order. `--arrivals` re-stamps before
/// encoding under the same opt-in rule as `lim serve --trace`, so
/// `lim wire --trace F | lim serve --stdin` reproduces
/// `lim serve --trace F` frame-for-frame.
fn cmd_wire(options: &Options) -> ExitCode {
    use lessismore::serve::wire::trace_to_wire;
    use lessismore::workloads::trace::SessionTrace;

    let Some(path) = &options.trace else {
        eprintln!("error: wire needs --trace FILE (generate one with lim loadgen --save-trace)");
        return ExitCode::FAILURE;
    };
    let trace = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {path}: {e}"))
        .and_then(|text| lessismore::json::parse(&text).map_err(|e| format!("{path}: {e}")))
        .and_then(|doc| SessionTrace::from_json(&doc).map_err(|e| format!("{path}: {e}")));
    let trace = match trace {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match options.admission.arrivals {
        Some(process) => trace.with_arrivals(process),
        None => trace,
    };
    let stream = trace_to_wire(&trace);
    match &options.out {
        Some(out) => {
            if let Err(e) = std::fs::write(out, &stream) {
                eprintln!("error: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {out}: {} frames ({} requests, {} catalog mutations)",
                1 + trace.requests() + trace.churn.len(),
                trace.requests(),
                trace.churn.len()
            );
        }
        None => print!("{stream}"),
    }
    ExitCode::SUCCESS
}

fn cmd_compare(options: &Options) -> ExitCode {
    use lessismore::bench::compare::compare_documents;

    let (Some(baseline_path), Some(current_path)) = (&options.baseline, &options.current) else {
        eprintln!("error: compare needs --baseline FILE and --current FILE");
        return ExitCode::FAILURE;
    };
    let read = |path: &str| -> Result<lessismore::json::Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        lessismore::json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, current) = match (read(baseline_path), read(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match compare_documents(&baseline, &current, options.tolerance) {
        Ok(regressions) if regressions.is_empty() => {
            println!(
                "ok: {current_path} within {:.0}% of {baseline_path}",
                100.0 * options.tolerance
            );
            ExitCode::SUCCESS
        }
        Ok(regressions) => {
            eprintln!(
                "FAIL: {} tracked metric(s) regressed more than {:.0}%:",
                regressions.len(),
                100.0 * options.tolerance
            );
            for r in &regressions {
                eprintln!("  {r}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_levels(options: &Options) -> ExitCode {
    let workload = match build_workload(options) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &options.load {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match lessismore::json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        match load_levels(&doc) {
            Ok(levels) => {
                println!(
                    "loaded {}: {} tools, {} clusters",
                    path,
                    levels.tool_count(),
                    levels.clusters().len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let levels = build_levels(options, &workload);
        println!(
            "built levels for {} ({} index): {} tools, {} clusters",
            workload.name,
            levels.tool_index().kind(),
            levels.tool_count(),
            levels.clusters().len()
        );
        if let Some(path) = &options.save {
            let doc = save_levels(&levels);
            if let Err(e) = std::fs::write(path, doc.to_string()) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("saved to {path}");
        }
        ExitCode::SUCCESS
    }
}
