//! Board descriptions and the roofline + energy estimator.

use crate::phase::{Phase, PhaseCost};

/// Hardware description of an edge inference board.
///
/// Latency follows a classic roofline: a phase that must execute `F` flops
/// and move `B` bytes takes `max(F / flops, B / bandwidth)` seconds.
///
/// Power is *energy-based* rather than utilisation-based: each resource has
/// a per-unit energy cost, and average power is total energy over time.
/// Crucially the model distinguishes **sequential** DRAM traffic (weight
/// streaming; prefetch-friendly, cheap per byte) from **random** traffic
/// (KV-cache and attention-buffer scans; activate/precharge-heavy,
/// several× more energy per byte). This distinction is what lets the model
/// reproduce the paper's Table II observation that shrinking the context
/// window from 16k to 8k cuts measured power ~15%: the wasted scan traffic
/// over the larger allocated KV buffer costs energy without buying speed.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    name: String,
    /// Total DRAM available to the inference process, bytes.
    memory_bytes: u64,
    /// Sustained DRAM bandwidth, bytes/second.
    bandwidth_bps: f64,
    /// Sustained dense compute for transformer kernels, flop/s.
    flops: f64,
    /// Power drawn with the SoC on but idle, watts.
    idle_power_w: f64,
    /// Energy per floating-point operation, joules.
    joules_per_flop: f64,
    /// Energy per sequentially-streamed DRAM byte, joules.
    joules_per_seq_byte: f64,
    /// Energy per randomly-accessed DRAM byte, joules.
    joules_per_rand_byte: f64,
}

impl DeviceProfile {
    /// Builds a custom profile.
    ///
    /// # Panics
    ///
    /// Panics if memory, bandwidth or compute rate is non-positive, or any
    /// energy coefficient is negative.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        memory_bytes: u64,
        bandwidth_bps: f64,
        flops: f64,
        idle_power_w: f64,
        joules_per_flop: f64,
        joules_per_seq_byte: f64,
        joules_per_rand_byte: f64,
    ) -> Self {
        assert!(memory_bytes > 0, "memory must be positive");
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        assert!(flops > 0.0, "compute rate must be positive");
        assert!(
            idle_power_w >= 0.0
                && joules_per_flop >= 0.0
                && joules_per_seq_byte >= 0.0
                && joules_per_rand_byte >= 0.0,
            "power coefficients must be non-negative"
        );
        Self {
            name: name.into(),
            memory_bytes,
            bandwidth_bps,
            flops,
            idle_power_w,
            joules_per_flop,
            joules_per_seq_byte,
            joules_per_rand_byte,
        }
    }

    /// NVIDIA Jetson AGX Orin 64 GB developer kit, MAXN power mode.
    ///
    /// Sustained figures for llama.cpp-style inference: 204.8 GB/s DRAM of
    /// which ~65% is achievable (≈133 GB/s), ≈20 TFLOP/s effective dense
    /// fp16 compute, ~9 W idle. Energy coefficients are calibrated so that
    /// function-calling workloads land in the 20–30 W band the paper
    /// reports (Table II): 1.23 pJ/flop (Ampere-class fp16), 60 pJ per
    /// sequential byte, 267 pJ per random byte (LPDDR5 system-level costs).
    pub fn jetson_agx_orin() -> Self {
        Self::new(
            "jetson-agx-orin-64gb",
            64 * 1024 * 1024 * 1024,
            133.0e9,
            20.0e12,
            9.0,
            1.23e-12,
            60.0e-12,
            267.0e-12,
        )
    }

    /// The same AGX Orin board in its capped **30 W power mode** (edge
    /// deployments frequently run capped for thermal or battery reasons).
    /// Clocks drop — ~77% of the DRAM bandwidth, half the sustained
    /// compute — but the lower voltage also buys slightly better energy
    /// per operation.
    pub fn jetson_agx_orin_30w() -> Self {
        Self::new(
            "jetson-agx-orin-30w",
            64 * 1024 * 1024 * 1024,
            102.0e9,
            10.0e12,
            7.0,
            1.05e-12,
            54.0e-12,
            240.0e-12,
        )
    }

    /// A smaller companion board (Orin Nano class) used by tests to check
    /// that memory gating depends on the profile.
    pub fn jetson_orin_nano() -> Self {
        Self::new(
            "jetson-orin-nano-8gb",
            8 * 1024 * 1024 * 1024,
            54.0e9,
            6.5e12,
            5.0,
            1.4e-12,
            65.0e-12,
            280.0e-12,
        )
    }

    /// Board name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// DRAM capacity in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.memory_bytes
    }

    /// Sustained DRAM bandwidth, bytes/second.
    pub fn bandwidth_bps(&self) -> f64 {
        self.bandwidth_bps
    }

    /// Sustained compute, flop/s.
    pub fn flops(&self) -> f64 {
        self.flops
    }

    /// Idle power, watts.
    pub fn idle_power_w(&self) -> f64 {
        self.idle_power_w
    }

    /// Estimates latency, energy and average power of one execution phase.
    ///
    /// Latency is the roofline bound; energy is
    /// `idle·t + flops·e_flop + seq_bytes·e_seq + rand_bytes·e_rand`;
    /// power is their quotient.
    pub fn run_phase(&self, phase: &Phase) -> PhaseCost {
        let compute_s = phase.flops() / self.flops;
        let memory_s = (phase.seq_bytes() + phase.rand_bytes()) / self.bandwidth_bps;
        let seconds = compute_s.max(memory_s).max(1e-9);
        let joules = self.idle_power_w * seconds
            + phase.flops() * self.joules_per_flop
            + phase.seq_bytes() * self.joules_per_seq_byte
            + phase.rand_bytes() * self.joules_per_rand_byte;
        PhaseCost {
            label: phase.label().to_owned(),
            seconds,
            watts: joules / seconds,
            joules,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orin_profile_is_sane() {
        let orin = DeviceProfile::jetson_agx_orin();
        assert_eq!(orin.memory_bytes(), 64 * 1024 * 1024 * 1024);
        assert!(orin.bandwidth_bps() > 1e11);
        assert!(orin.idle_power_w() > 0.0);
    }

    #[test]
    fn memory_bound_phase_runs_at_bandwidth() {
        let orin = DeviceProfile::jetson_agx_orin();
        // 13.3 GB of traffic, negligible compute → 0.1 s at 133 GB/s.
        let cost = orin.run_phase(&Phase::new("decode", 1.0, 13.3e9, 0.0));
        assert!((cost.seconds - 0.1).abs() < 1e-3);
    }

    #[test]
    fn compute_bound_phase_runs_at_flops() {
        let orin = DeviceProfile::jetson_agx_orin();
        // 2 Tflop, negligible traffic → 0.1 s at 20 Tflop/s.
        let cost = orin.run_phase(&Phase::new("prefill", 2.0e12, 1.0, 0.0));
        assert!((cost.seconds - 0.1).abs() < 1e-3);
    }

    #[test]
    fn power_is_at_least_idle() {
        let orin = DeviceProfile::jetson_agx_orin();
        let cost = orin.run_phase(&Phase::new("x", 1.0e12, 5.0e9, 0.0));
        assert!(cost.watts >= orin.idle_power_w());
    }

    #[test]
    fn random_bytes_cost_more_energy_than_sequential() {
        let orin = DeviceProfile::jetson_agx_orin();
        let seq = orin.run_phase(&Phase::new("s", 0.0, 5.0e9, 0.0));
        let rand = orin.run_phase(&Phase::new("r", 0.0, 0.0, 5.0e9));
        assert!((seq.seconds - rand.seconds).abs() < 1e-9, "same latency");
        assert!(rand.joules > 2.0 * seq.joules, "much more energy");
    }

    #[test]
    fn decode_power_lands_in_paper_band() {
        // One decode token of an 8B q4 model at 16k context: ~4.85 GB of
        // sequential weight traffic + ~2.4 GB of random KV traffic. The
        // paper reports 22–27 W for such workloads on the Orin (Table II).
        let orin = DeviceProfile::jetson_agx_orin();
        let cost = orin.run_phase(&Phase::new("decode", 16.0e9, 4.85e9, 2.4e9));
        assert!(
            cost.watts > 22.0 && cost.watts < 30.0,
            "watts = {}",
            cost.watts
        );
    }

    #[test]
    fn prefill_power_exceeds_decode_power() {
        // Full-tilt compute (prefill) burns more than bandwidth-bound decode.
        let orin = DeviceProfile::jetson_agx_orin();
        let prefill = orin.run_phase(&Phase::new("prefill", 8.0e13, 9.7e9, 1.0e9));
        let decode = orin.run_phase(&Phase::new("decode", 16.0e9, 4.85e9, 1.4e9));
        assert!(
            prefill.watts > decode.watts,
            "{} vs {}",
            prefill.watts,
            decode.watts
        );
    }

    #[test]
    fn smaller_context_cuts_decode_power() {
        // The Table II mechanism: halving the allocated KV buffer halves
        // the random scan traffic; power drops noticeably.
        let orin = DeviceProfile::jetson_agx_orin();
        let ctx16k = orin.run_phase(&Phase::new("decode", 16.0e9, 4.85e9, 2.43e9));
        let ctx8k = orin.run_phase(&Phase::new("decode", 16.0e9, 4.85e9, 1.38e9));
        assert!(ctx8k.seconds < ctx16k.seconds);
        let drop = 1.0 - ctx8k.watts / ctx16k.watts;
        assert!(drop > 0.05, "power drop = {drop}");
    }

    #[test]
    fn nano_is_slower_than_agx() {
        let agx = DeviceProfile::jetson_agx_orin();
        let nano = DeviceProfile::jetson_orin_nano();
        let phase = Phase::new("decode", 16.0e9, 5.0e9, 0.5e9);
        assert!(nano.run_phase(&phase).seconds > agx.run_phase(&phase).seconds);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = DeviceProfile::new("bad", 1, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0);
    }
}
