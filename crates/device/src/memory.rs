//! DRAM allocation gate.

use std::error::Error;
use std::fmt;

/// Error returned when an allocation exceeds device memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationError {
    /// What was being allocated.
    pub what: String,
    /// Requested bytes.
    pub requested: u64,
    /// Bytes still available.
    pub available: u64,
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot allocate {} bytes for {} ({} bytes free)",
            self.requested, self.what, self.available
        )
    }
}

impl Error for AllocationError {}

/// Tracks named allocations against a fixed DRAM budget.
///
/// Mirrors the reason the paper "attempted to compare against ToolLLM, but
/// its tree-based exploration could not fit on the board" (§IV): model
/// weights + KV cache + search frontier must all fit simultaneously.
///
/// # Examples
///
/// ```
/// use lim_device::MemoryLedger;
///
/// # fn main() -> Result<(), lim_device::AllocationError> {
/// let mut mem = MemoryLedger::new(8_000_000_000);
/// mem.allocate("weights", 4_900_000_000)?;
/// mem.allocate("kv-cache", 2_000_000_000)?;
/// assert!(mem.allocate("tree-frontier", 4_000_000_000).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemoryLedger {
    capacity: u64,
    entries: Vec<(String, u64)>,
}

impl MemoryLedger {
    /// Creates a ledger with `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            entries: Vec::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.entries.iter().map(|(_, b)| b).sum()
    }

    /// Bytes still free.
    pub fn available(&self) -> u64 {
        self.capacity - self.used()
    }

    /// Records an allocation.
    ///
    /// # Errors
    ///
    /// Returns [`AllocationError`] (and records nothing) if `bytes` exceeds
    /// the remaining capacity.
    pub fn allocate(&mut self, what: impl Into<String>, bytes: u64) -> Result<(), AllocationError> {
        let what = what.into();
        if bytes > self.available() {
            return Err(AllocationError {
                what,
                requested: bytes,
                available: self.available(),
            });
        }
        self.entries.push((what, bytes));
        Ok(())
    }

    /// Releases the most recent allocation with the given name, returning
    /// whether one was found.
    pub fn free(&mut self, what: &str) -> bool {
        if let Some(pos) = self.entries.iter().rposition(|(n, _)| n == what) {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    /// Returns `true` if a hypothetical extra allocation would fit.
    pub fn would_fit(&self, bytes: u64) -> bool {
        bytes <= self.available()
    }

    /// Named allocations in insertion order.
    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_free_roundtrip() {
        let mut m = MemoryLedger::new(100);
        m.allocate("a", 60).unwrap();
        assert_eq!(m.available(), 40);
        assert!(m.free("a"));
        assert_eq!(m.available(), 100);
        assert!(!m.free("a"));
    }

    #[test]
    fn over_allocation_is_rejected_without_side_effects() {
        let mut m = MemoryLedger::new(100);
        m.allocate("a", 90).unwrap();
        let err = m.allocate("b", 20).unwrap_err();
        assert_eq!(err.requested, 20);
        assert_eq!(err.available, 10);
        assert_eq!(m.used(), 90);
    }

    #[test]
    fn would_fit_is_side_effect_free() {
        let m = MemoryLedger::new(100);
        assert!(m.would_fit(100));
        assert!(!m.would_fit(101));
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn exact_fit_is_allowed() {
        let mut m = MemoryLedger::new(100);
        assert!(m.allocate("all", 100).is_ok());
        assert_eq!(m.available(), 0);
    }

    #[test]
    fn free_removes_most_recent_duplicate() {
        let mut m = MemoryLedger::new(100);
        m.allocate("kv", 10).unwrap();
        m.allocate("kv", 20).unwrap();
        assert!(m.free("kv"));
        assert_eq!(m.used(), 10);
    }
}
