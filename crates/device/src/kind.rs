//! Typed selection of the built-in board profiles.

use std::str::FromStr;

use crate::profile::DeviceProfile;

/// A named built-in board, selectable uniformly across every CLI surface
/// (`--device agx-orin|agx-orin-30w|orin-nano`).
///
/// [`DeviceProfile`] stays the open-ended description type — custom boards
/// are still constructed with [`DeviceProfile::new`] — but everything that
/// takes a *choice* of board (CLI flags, serve configs, checkpoints) goes
/// through this enum so the choice has one spelling, one parser and one
/// label per board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeviceKind {
    /// Jetson AGX Orin 64 GB, MAXN power mode (the calibrated default).
    #[default]
    AgxOrin,
    /// Jetson AGX Orin in its capped 30 W power mode.
    AgxOrin30w,
    /// Jetson Orin Nano 8 GB.
    OrinNano,
}

impl DeviceKind {
    /// Every selectable board, in flag-help order.
    pub const ALL: [DeviceKind; 3] = [
        DeviceKind::AgxOrin,
        DeviceKind::AgxOrin30w,
        DeviceKind::OrinNano,
    ];

    /// The CLI spelling (`"agx-orin"`, `"agx-orin-30w"`, `"orin-nano"`).
    pub fn label(self) -> &'static str {
        match self {
            DeviceKind::AgxOrin => "agx-orin",
            DeviceKind::AgxOrin30w => "agx-orin-30w",
            DeviceKind::OrinNano => "orin-nano",
        }
    }

    /// Instantiates the calibrated profile for this board.
    pub fn profile(self) -> DeviceProfile {
        match self {
            DeviceKind::AgxOrin => DeviceProfile::jetson_agx_orin(),
            DeviceKind::AgxOrin30w => DeviceProfile::jetson_agx_orin_30w(),
            DeviceKind::OrinNano => DeviceProfile::jetson_orin_nano(),
        }
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when a device name does not match any built-in board.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDeviceError(String);

impl std::fmt::Display for ParseDeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown device '{}' (expected agx-orin, agx-orin-30w or orin-nano)",
            self.0
        )
    }
}

impl std::error::Error for ParseDeviceError {}

impl FromStr for DeviceKind {
    type Err = ParseDeviceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "agx-orin" => Ok(DeviceKind::AgxOrin),
            "agx-orin-30w" => Ok(DeviceKind::AgxOrin30w),
            "orin-nano" => Ok(DeviceKind::OrinNano),
            other => Err(ParseDeviceError(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_from_str() {
        for kind in DeviceKind::ALL {
            assert_eq!(kind.label().parse::<DeviceKind>().unwrap(), kind);
        }
    }

    #[test]
    fn unknown_device_is_rejected_with_the_choices() {
        let err = "agx".parse::<DeviceKind>().unwrap_err();
        assert!(err.to_string().contains("agx-orin-30w"));
    }

    #[test]
    fn profiles_match_the_constructors() {
        assert_eq!(
            DeviceKind::AgxOrin.profile(),
            DeviceProfile::jetson_agx_orin()
        );
        assert_eq!(
            DeviceKind::AgxOrin30w.profile(),
            DeviceProfile::jetson_agx_orin_30w()
        );
        assert_eq!(
            DeviceKind::OrinNano.profile(),
            DeviceProfile::jetson_orin_nano()
        );
    }

    #[test]
    fn default_is_the_calibrated_board() {
        assert_eq!(DeviceKind::default(), DeviceKind::AgxOrin);
        assert_eq!(DeviceKind::default().label(), "agx-orin");
    }
}
