//! Edge-device execution model — the NVIDIA Jetson AGX Orin substitute.
//!
//! The paper measures wall-clock time and power on a physical Orin board.
//! Both quantities move for mechanical reasons the paper itself identifies:
//! prompt length (tool schemas), context-window size, and model bytes. This
//! crate models exactly those mechanisms:
//!
//! * [`DeviceProfile`] — bandwidth / compute / power-rail description of a
//!   board, with [`DeviceProfile::jetson_agx_orin`] as the calibrated
//!   default;
//! * [`Phase`] + [`DeviceProfile::run_phase`] — a roofline estimate: each
//!   inference phase is compute-bound or bandwidth-bound, whichever is
//!   slower, and its power is an affine function of how hard each resource
//!   is driven;
//! * [`EnergyMeter`] — accumulates phases into total latency, energy and
//!   average power per query;
//! * [`MemoryLedger`] — allocation gate that refuses workloads exceeding
//!   device DRAM (this is what excludes ToolLLM's tree search on-board,
//!   §IV).
//!
//! # Examples
//!
//! ```
//! use lim_device::{DeviceProfile, Phase};
//!
//! let orin = DeviceProfile::jetson_agx_orin();
//! // One decode step of an 8-bit 8B model: ~8.5 GB of sequential weight
//! // traffic plus ~1.4 GB of random KV traffic.
//! let phase = Phase::new("decode", 16.0e9, 8.5e9, 1.4e9);
//! let cost = orin.run_phase(&phase);
//! assert!(cost.seconds > 0.0 && cost.watts > orin.idle_power_w());
//! ```

mod energy;
mod kind;
mod memory;
mod phase;
mod profile;

pub use energy::{EnergyMeter, QueryCost};
pub use kind::{DeviceKind, ParseDeviceError};
pub use memory::{AllocationError, MemoryLedger};
pub use phase::{Phase, PhaseCost};
pub use profile::DeviceProfile;

#[cfg(test)]
mod tests;
