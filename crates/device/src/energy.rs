//! Accumulation of phase costs into per-query totals.

use crate::phase::PhaseCost;

/// Aggregated cost of a whole query (or batch).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryCost {
    /// Total wall-clock seconds.
    pub seconds: f64,
    /// Total energy in joules.
    pub joules: f64,
}

impl QueryCost {
    /// Time-averaged power in watts (0 for an empty cost).
    pub fn avg_watts(&self) -> f64 {
        if self.seconds > 0.0 {
            self.joules / self.seconds
        } else {
            0.0
        }
    }
}

impl std::ops::Add for QueryCost {
    type Output = QueryCost;

    fn add(self, rhs: QueryCost) -> QueryCost {
        QueryCost {
            seconds: self.seconds + rhs.seconds,
            joules: self.joules + rhs.joules,
        }
    }
}

impl std::ops::AddAssign for QueryCost {
    fn add_assign(&mut self, rhs: QueryCost) {
        *self = *self + rhs;
    }
}

/// Accumulates [`PhaseCost`]s, keeping the per-phase breakdown.
///
/// # Examples
///
/// ```
/// use lim_device::{DeviceProfile, EnergyMeter, Phase};
///
/// let orin = DeviceProfile::jetson_agx_orin();
/// let mut meter = EnergyMeter::new();
/// meter.record(orin.run_phase(&Phase::new("prefill", 4.0e12, 1.0e9, 0.1e9)));
/// meter.record(orin.run_phase(&Phase::new("decode", 1.0e12, 40.0e9, 4.0e9)));
/// let total = meter.total();
/// assert!(total.seconds > 0.0);
/// assert!(meter.phases().len() == 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    phases: Vec<PhaseCost>,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one phase cost.
    pub fn record(&mut self, cost: PhaseCost) {
        self.phases.push(cost);
    }

    /// Records time spent *waiting* — e.g. queued behind other requests —
    /// during which the board still draws its idle power.
    ///
    /// [`EnergyMeter::total`] only sums recorded phases, so without this
    /// call queue-wait seconds would be billed at zero watts and reported
    /// joules/request would understate admission backpressure. The phase
    /// is labelled `"idle"` and contributes `idle_power_w × seconds`
    /// joules; zero or negative waits record nothing.
    pub fn record_idle(&mut self, seconds: f64, idle_power_w: f64) {
        if seconds <= 0.0 {
            return;
        }
        self.phases.push(PhaseCost {
            label: "idle".into(),
            seconds,
            watts: idle_power_w,
            joules: idle_power_w * seconds,
        });
    }

    /// The recorded phases in execution order.
    pub fn phases(&self) -> &[PhaseCost] {
        &self.phases
    }

    /// Sums seconds and joules across all phases.
    pub fn total(&self) -> QueryCost {
        QueryCost {
            seconds: self.phases.iter().map(|p| p.seconds).sum(),
            joules: self.phases.iter().map(|p| p.joules).sum(),
        }
    }

    /// Total seconds attributed to phases whose label matches `label`.
    pub fn seconds_for(&self, label: &str) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.label == label)
            .map(|p| p.seconds)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(label: &str, seconds: f64, watts: f64) -> PhaseCost {
        PhaseCost {
            label: label.into(),
            seconds,
            watts,
            joules: watts * seconds,
        }
    }

    #[test]
    fn totals_add_up() {
        let mut m = EnergyMeter::new();
        m.record(cost("a", 1.0, 20.0));
        m.record(cost("b", 3.0, 30.0));
        let t = m.total();
        assert!((t.seconds - 4.0).abs() < 1e-9);
        assert!((t.joules - 110.0).abs() < 1e-9);
        assert!((t.avg_watts() - 27.5).abs() < 1e-9);
    }

    #[test]
    fn empty_meter_is_zero() {
        let t = EnergyMeter::new().total();
        assert_eq!(t.seconds, 0.0);
        assert_eq!(t.avg_watts(), 0.0);
    }

    #[test]
    fn seconds_for_filters_by_label() {
        let mut m = EnergyMeter::new();
        m.record(cost("prefill", 1.0, 30.0));
        m.record(cost("decode", 2.0, 25.0));
        m.record(cost("prefill", 0.5, 30.0));
        assert!((m.seconds_for("prefill") - 1.5).abs() < 1e-9);
        assert_eq!(m.seconds_for("missing"), 0.0);
    }

    #[test]
    fn idle_wait_bills_idle_power_into_the_total() {
        // A 1 s execution phase at 20 W plus a 3.5 s queue wait on a 9 W
        // board must total 1 × 20 + 3.5 × 9 = 51.5 J over 4.5 s.
        let mut m = EnergyMeter::new();
        m.record(cost("decode", 1.0, 20.0));
        m.record_idle(3.5, 9.0);
        let t = m.total();
        assert!((t.seconds - 4.5).abs() < 1e-12);
        assert!((t.joules - 51.5).abs() < 1e-12);
        assert!((m.seconds_for("idle") - 3.5).abs() < 1e-12);
    }

    #[test]
    fn zero_or_negative_idle_records_nothing() {
        let mut m = EnergyMeter::new();
        m.record_idle(0.0, 9.0);
        m.record_idle(-1.0, 9.0);
        assert!(m.phases().is_empty());
        assert_eq!(m.total().joules, 0.0);
    }

    #[test]
    fn query_costs_add() {
        let a = QueryCost {
            seconds: 1.0,
            joules: 10.0,
        };
        let b = QueryCost {
            seconds: 2.0,
            joules: 30.0,
        };
        let mut c = a + b;
        assert!((c.seconds - 3.0).abs() < 1e-9);
        c += a;
        assert!((c.joules - 50.0).abs() < 1e-9);
    }
}
