//! Crate-level behaviour and property tests.

use crate::{DeviceProfile, EnergyMeter, MemoryLedger, Phase};
use proptest::prelude::*;

#[test]
fn fewer_prompt_bytes_means_less_time_and_energy() {
    // The core hardware claim of the paper: shrinking the tool payload
    // shrinks both latency and energy. Model two prefills that differ only
    // in prompt size.
    let orin = DeviceProfile::jetson_agx_orin();
    let flops_per_token = 16.0e9; // 2 * 8B params
    let big = orin.run_phase(&Phase::new("prefill", 4200.0 * flops_per_token, 5.0e9, 0.0));
    let small = orin.run_phase(&Phase::new("prefill", 900.0 * flops_per_token, 5.0e9, 0.0));
    assert!(small.seconds < big.seconds);
    assert!(small.joules < big.joules);
}

#[test]
fn quantization_speeds_up_decode() {
    // q4 weights move ~half the bytes of q8: decode (bandwidth-bound) must
    // speed up accordingly.
    let orin = DeviceProfile::jetson_agx_orin();
    let q8 = orin.run_phase(&Phase::new("decode", 16.0e9, 8.5e9, 0.5e9));
    let q4 = orin.run_phase(&Phase::new("decode", 16.0e9, 4.8e9, 0.5e9));
    assert!(q4.seconds < q8.seconds * 0.7);
}

#[test]
fn an_8b_model_tree_search_overflows_nano() {
    // ToolLLM-style DFSDT holds many branches of KV cache alive; on the
    // 8 GB board this cannot fit next to the weights.
    let mut mem = MemoryLedger::new(DeviceProfile::jetson_orin_nano().memory_bytes());
    mem.allocate("weights-8b-q4", 4_900_000_000).unwrap();
    mem.allocate("kv-16k", 2_100_000_000).unwrap();
    // Each live DFSDT branch keeps its own 16k KV cache alive.
    assert!(mem.allocate("dfsdt-frontier", 2 * 2_100_000_000).is_err());
}

#[test]
fn table2_shape_time_and_power_drop_with_tools_and_context() {
    // Miniature of Table II: a decode-heavy workload at (16k, big prompt),
    // (16k, small prompt), (8k, small prompt). Time and power must fall
    // monotonically across the three configurations.
    let orin = DeviceProfile::jetson_agx_orin();
    let weights = 4.85e9;
    let decode_tokens = 300.0;
    let run = |prompt_tokens: f64, kv_alloc: f64| {
        let mut meter = EnergyMeter::new();
        meter.record(orin.run_phase(&Phase::new(
            "prefill",
            2.0 * 8.0e9 * prompt_tokens,
            weights * (prompt_tokens / 512.0).ceil(),
            0.0,
        )));
        for _ in 0..decode_tokens as usize {
            meter.record(orin.run_phase(&Phase::new("decode", 16.0e9, weights, 0.33e9 + kv_alloc)));
        }
        meter.total()
    };
    let big_16k = run(4600.0, 2.1e9);
    let small_16k = run(1900.0, 2.1e9);
    let small_8k = run(1900.0, 1.05e9);
    assert!(small_16k.seconds < big_16k.seconds);
    assert!(small_8k.seconds < small_16k.seconds);
    assert!(small_8k.avg_watts() < small_16k.avg_watts());
    // Paper's max drops: time −43%, power −19% — ours should be the same
    // order of magnitude in the same direction.
    let time_drop = 1.0 - small_8k.seconds / big_16k.seconds;
    let power_drop = 1.0 - small_8k.avg_watts() / big_16k.avg_watts();
    assert!(time_drop > 0.10, "time drop {time_drop}");
    assert!(power_drop > 0.03, "power drop {power_drop}");
}

proptest! {
    /// Roofline latency is monotone in all inputs.
    #[test]
    fn latency_monotone(
        flops in 1.0e6f64..1.0e13,
        bytes in 1.0e3f64..1.0e11,
        scale in 1.1f64..4.0,
    ) {
        let orin = DeviceProfile::jetson_agx_orin();
        let base = orin.run_phase(&Phase::new("p", flops, bytes, bytes * 0.1));
        let more_flops = orin.run_phase(&Phase::new("p", flops * scale, bytes, bytes * 0.1));
        let more_bytes = orin.run_phase(&Phase::new("p", flops, bytes * scale, bytes * 0.1));
        prop_assert!(more_flops.seconds >= base.seconds);
        prop_assert!(more_bytes.seconds >= base.seconds);
    }

    /// Energy equals watts × seconds for every phase, and meter totals
    /// equal the sum of parts; average power never drops below idle.
    #[test]
    fn energy_accounting_consistent(
        phases in prop::collection::vec((1.0e6f64..1.0e12, 1.0e3f64..1.0e10), 1..8),
    ) {
        let orin = DeviceProfile::jetson_agx_orin();
        let mut meter = EnergyMeter::new();
        let mut expect_s = 0.0;
        let mut expect_j = 0.0;
        for (f, b) in &phases {
            let c = orin.run_phase(&Phase::new("p", *f, *b, b * 0.2));
            prop_assert!((c.joules - c.watts * c.seconds).abs() <= 1e-9 * c.joules.max(1.0));
            expect_s += c.seconds;
            expect_j += c.joules;
            meter.record(c);
        }
        let total = meter.total();
        prop_assert!((total.seconds - expect_s).abs() < 1e-9 * expect_s.max(1.0));
        prop_assert!((total.joules - expect_j).abs() < 1e-9 * expect_j.max(1.0));
        prop_assert!(total.avg_watts() >= orin.idle_power_w() - 1e-6);
    }

    /// The ledger never reports negative availability and used+available
    /// equals capacity.
    #[test]
    fn ledger_invariant(allocs in prop::collection::vec(0u64..50_000, 0..20)) {
        let mut m = MemoryLedger::new(100_000);
        for (i, a) in allocs.iter().enumerate() {
            let _ = m.allocate(format!("a{i}"), *a);
            prop_assert_eq!(m.used() + m.available(), m.capacity());
            prop_assert!(m.used() <= m.capacity());
        }
    }
}
