//! Execution phases and their estimated costs.

/// One unit of device work: a labelled (flops, sequential bytes, random
/// bytes) triple.
///
/// The LLM simulator decomposes a query into phases — recommender prefill,
/// recommender decode, agent prefill, agent decode, retries — and the
/// device turns each into seconds, watts and joules. Sequential bytes are
/// prefetch-friendly weight streams; random bytes are KV-cache and
/// attention-buffer scans, which cost several× more energy per byte (see
/// [`crate::DeviceProfile`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    label: String,
    flops: f64,
    seq_bytes: f64,
    rand_bytes: f64,
}

impl Phase {
    /// Creates a phase.
    ///
    /// # Panics
    ///
    /// Panics if any input is negative or non-finite.
    pub fn new(label: impl Into<String>, flops: f64, seq_bytes: f64, rand_bytes: f64) -> Self {
        assert!(
            flops.is_finite() && flops >= 0.0,
            "flops must be finite and non-negative"
        );
        assert!(
            seq_bytes.is_finite() && seq_bytes >= 0.0,
            "seq_bytes must be finite and non-negative"
        );
        assert!(
            rand_bytes.is_finite() && rand_bytes >= 0.0,
            "rand_bytes must be finite and non-negative"
        );
        Self {
            label: label.into(),
            flops,
            seq_bytes,
            rand_bytes,
        }
    }

    /// Phase label (e.g. `"prefill"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Floating-point operations the phase must execute.
    pub fn flops(&self) -> f64 {
        self.flops
    }

    /// Bytes of sequential DRAM traffic (weight streaming).
    pub fn seq_bytes(&self) -> f64 {
        self.seq_bytes
    }

    /// Bytes of random DRAM traffic (KV/attention scans).
    pub fn rand_bytes(&self) -> f64 {
        self.rand_bytes
    }

    /// Total DRAM traffic.
    pub fn bytes(&self) -> f64 {
        self.seq_bytes + self.rand_bytes
    }
}

/// Latency/power/energy estimate for one [`Phase`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseCost {
    /// Label copied from the phase.
    pub label: String,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Average power over the phase, watts.
    pub watts: f64,
    /// Energy, joules (`watts × seconds`).
    pub joules: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_stores_inputs() {
        let p = Phase::new("prefill", 1.0e9, 2.0e9, 0.5e9);
        assert_eq!(p.label(), "prefill");
        assert_eq!(p.flops(), 1.0e9);
        assert_eq!(p.seq_bytes(), 2.0e9);
        assert_eq!(p.rand_bytes(), 0.5e9);
        assert_eq!(p.bytes(), 2.5e9);
    }

    #[test]
    #[should_panic(expected = "flops must be finite")]
    fn negative_flops_rejected() {
        let _ = Phase::new("bad", -1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "rand_bytes must be finite")]
    fn nan_bytes_rejected() {
        let _ = Phase::new("bad", 0.0, 0.0, f64::NAN);
    }
}
