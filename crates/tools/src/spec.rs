//! Tool schemas.

use lim_json::Value;

use crate::call::{CallValidationError, ToolCall};
use crate::param::ParamSpec;

/// Schema of one callable tool (API function).
///
/// Rendered into the OpenAI function-calling JSON shape by
/// [`ToolSpec::schema_json`]; that rendering is the exact text appended to
/// the agent prompt, so its size drives the simulator's prefill cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolSpec {
    name: String,
    description: String,
    category: String,
    params: Vec<ParamSpec>,
    returns: String,
}

impl ToolSpec {
    /// Starts building a tool with the given name.
    pub fn builder(name: impl Into<String>) -> ToolSpecBuilder {
        ToolSpecBuilder {
            spec: ToolSpec {
                name: name.into(),
                description: String::new(),
                category: String::from("general"),
                params: Vec::new(),
                returns: String::from("result of the operation"),
            },
        }
    }

    /// Tool name (unique within a registry).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Natural-language description shown to the agent and embedded into
    /// the Level-1 latent space.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Benchmark category (e.g. "math", "vqa"); used for augmentation
    /// sampling, mirroring the paper's use of benchmark question types.
    pub fn category(&self) -> &str {
        &self.category
    }

    /// Parameter schemas in declaration order.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// Description of the return value.
    pub fn returns(&self) -> &str {
        &self.returns
    }

    /// Text fed to the embedder for Search Level 1: name (decomposed by the
    /// tokenizer), description and parameter names all carry signal.
    pub fn embedding_text(&self) -> String {
        let params: Vec<&str> = self.params.iter().map(|p| p.name()).collect();
        format!("{} {} {}", self.name, self.description, params.join(" "))
    }

    /// Renders the OpenAI-style function schema.
    pub fn schema_json(&self) -> Value {
        let properties = Value::Object(
            self.params
                .iter()
                .map(|p| (p.name().to_owned(), p.schema_json()))
                .collect(),
        );
        let required: Value = self
            .params
            .iter()
            .filter(|p| p.is_required())
            .map(|p| p.name())
            .collect();
        Value::object([
            ("type", Value::from("function")),
            (
                "function",
                Value::object([
                    ("name", Value::from(self.name.as_str())),
                    ("description", Value::from(self.description.as_str())),
                    (
                        "parameters",
                        Value::object([
                            ("type", Value::from("object")),
                            ("properties", properties),
                            ("required", required),
                        ]),
                    ),
                ]),
            ),
        ])
    }

    /// Validates a call against this schema.
    ///
    /// # Errors
    ///
    /// * [`CallValidationError::WrongTool`] if the call names another tool.
    /// * [`CallValidationError::MissingParam`] for absent required params.
    /// * [`CallValidationError::UnknownParam`] for params not in the schema.
    /// * [`CallValidationError::TypeMismatch`] when a value has the wrong type.
    pub fn validate_call(&self, call: &ToolCall) -> Result<(), CallValidationError> {
        if call.tool() != self.name {
            return Err(CallValidationError::WrongTool {
                expected: self.name.clone(),
                got: call.tool().to_owned(),
            });
        }
        let args = call.args();
        for p in &self.params {
            match args.get(p.name()) {
                None if p.is_required() => {
                    return Err(CallValidationError::MissingParam(p.name().to_owned()));
                }
                None => {}
                Some(v) if !p.ty().accepts(v) => {
                    return Err(CallValidationError::TypeMismatch {
                        param: p.name().to_owned(),
                        expected: p.ty().to_string(),
                        got: v.to_string(),
                    });
                }
                Some(_) => {}
            }
        }
        if let Some(obj) = args.as_object() {
            for key in obj.keys() {
                if !self.params.iter().any(|p| p.name() == key) {
                    return Err(CallValidationError::UnknownParam(key.clone()));
                }
            }
        }
        Ok(())
    }
}

/// Builder returned by [`ToolSpec::builder`].
#[derive(Debug, Clone)]
pub struct ToolSpecBuilder {
    spec: ToolSpec,
}

impl ToolSpecBuilder {
    /// Sets the natural-language description.
    pub fn description(mut self, text: impl Into<String>) -> Self {
        self.spec.description = text.into();
        self
    }

    /// Sets the benchmark category.
    pub fn category(mut self, category: impl Into<String>) -> Self {
        self.spec.category = category.into();
        self
    }

    /// Appends a parameter.
    pub fn param(mut self, param: ParamSpec) -> Self {
        self.spec.params.push(param);
        self
    }

    /// Sets the return-value description.
    pub fn returns(mut self, text: impl Into<String>) -> Self {
        self.spec.returns = text.into();
        self
    }

    /// Finalises the spec.
    ///
    /// # Panics
    ///
    /// Panics if the tool name is empty or two parameters share a name.
    pub fn build(self) -> ToolSpec {
        assert!(!self.spec.name.is_empty(), "tool name must not be empty");
        let mut names: Vec<&str> = self.spec.params.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        assert!(
            names.windows(2).all(|w| w[0] != w[1]),
            "duplicate parameter name in tool {}",
            self.spec.name
        );
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamType;
    use lim_json::parse;

    fn weather() -> ToolSpec {
        ToolSpec::builder("weather_information")
            .description("Fetches current weather data for a given city")
            .category("weather")
            .param(ParamSpec::required("city", ParamType::String, "City name"))
            .param(ParamSpec::optional(
                "days",
                ParamType::Integer,
                "Forecast days",
            ))
            .build()
    }

    #[test]
    fn schema_json_shape() {
        let v = weather().schema_json();
        assert_eq!(
            v.pointer("function.name").and_then(Value::as_str),
            Some("weather_information")
        );
        assert_eq!(
            v.pointer("function.parameters.required")
                .and_then(Value::as_array)
                .map(|a| a.len()),
            Some(1)
        );
        assert!(v.pointer("function.parameters.properties.city").is_some());
    }

    #[test]
    fn embedding_text_contains_signal() {
        let t = weather().embedding_text();
        assert!(t.contains("weather_information"));
        assert!(t.contains("city"));
    }

    #[test]
    fn validate_accepts_good_call() {
        let call = ToolCall::new("weather_information", parse(r#"{"city":"Paris"}"#).unwrap());
        assert!(weather().validate_call(&call).is_ok());
    }

    #[test]
    fn validate_accepts_optional_present() {
        let call = ToolCall::new(
            "weather_information",
            parse(r#"{"city":"Paris","days":3}"#).unwrap(),
        );
        assert!(weather().validate_call(&call).is_ok());
    }

    #[test]
    fn validate_rejects_missing_required() {
        let call = ToolCall::new("weather_information", parse(r#"{"days":3}"#).unwrap());
        assert!(matches!(
            weather().validate_call(&call),
            Err(CallValidationError::MissingParam(p)) if p == "city"
        ));
    }

    #[test]
    fn validate_rejects_wrong_type() {
        let call = ToolCall::new("weather_information", parse(r#"{"city":42}"#).unwrap());
        assert!(matches!(
            weather().validate_call(&call),
            Err(CallValidationError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_unknown_param() {
        let call = ToolCall::new(
            "weather_information",
            parse(r#"{"city":"Paris","zip":"75001"}"#).unwrap(),
        );
        assert!(matches!(
            weather().validate_call(&call),
            Err(CallValidationError::UnknownParam(p)) if p == "zip"
        ));
    }

    #[test]
    fn validate_rejects_wrong_tool() {
        let call = ToolCall::new("other_tool", parse(r#"{"city":"Paris"}"#).unwrap());
        assert!(matches!(
            weather().validate_call(&call),
            Err(CallValidationError::WrongTool { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn builder_rejects_duplicate_params() {
        let _ = ToolSpec::builder("t")
            .param(ParamSpec::required("x", ParamType::String, ""))
            .param(ParamSpec::required("x", ParamType::Integer, ""))
            .build();
    }
}
