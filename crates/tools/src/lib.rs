//! Tool (API function) schemas, registry and call validation.
//!
//! Everything the paper calls a "tool" lives here: the schema the agent is
//! shown ([`ToolSpec`], rendered to OpenAI-style JSON), the catalog that a
//! benchmark ships ([`ToolRegistry`]), and the call/validation machinery
//! ([`ToolCall`], [`ToolSpec::validate_call`]) that decides whether an
//! agent used a tool *properly* — the paper's Success-Rate metric requires
//! "providing the correct input types according to the function's
//! requirements" (§IV).
//!
//! # Examples
//!
//! ```
//! use lim_tools::{ParamSpec, ParamType, ToolSpec};
//!
//! let tool = ToolSpec::builder("weather_information")
//!     .description("Fetches current weather data for a given city")
//!     .category("weather")
//!     .param(ParamSpec::required("city", ParamType::String, "City name"))
//!     .param(ParamSpec::optional("units", ParamType::Enum(vec![
//!         "metric".into(), "imperial".into(),
//!     ]), "Unit system"))
//!     .build();
//! assert_eq!(tool.name(), "weather_information");
//! assert!(tool.schema_json().to_string().contains("\"city\""));
//! ```

mod call;
mod doc;
mod param;
mod registry;
mod spec;

pub use call::{CallValidationError, ToolCall, ToolOutput};
pub use doc::{param_type_from_json, param_type_to_json, DocError, ParamDoc, ToolDoc};
pub use param::{ParamSpec, ParamType};
pub use registry::{RegistryError, ToolRegistry};
pub use spec::{ToolSpec, ToolSpecBuilder};

#[cfg(test)]
mod tests;
