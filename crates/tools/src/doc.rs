//! Wire-transportable tool documents.
//!
//! A [`ToolDoc`] is the JSON shape a *live catalog mutation* carries: what
//! a `register` frame on the wire protocol, a catalog-mutation log record
//! in a snapshot, or a churn trace event all embed. It mirrors
//! [`ToolSpec`] field-for-field but is plain data — public fields, JSON
//! round-trip — where `ToolSpec` is a validated, built artifact. The two
//! convert losslessly in both directions, so a registered tool renders,
//! validates and embeds exactly like one the benchmark shipped.

use std::error::Error;
use std::fmt;

use lim_json::Value;

use crate::param::{ParamSpec, ParamType};
use crate::spec::ToolSpec;

/// Error raised when a tool document cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocError {
    /// What was wrong with the document.
    pub message: String,
}

impl fmt::Display for DocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode tool doc: {}", self.message)
    }
}

impl Error for DocError {}

fn err(message: impl Into<String>) -> DocError {
    DocError {
        message: message.into(),
    }
}

/// One parameter of a [`ToolDoc`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDoc {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: ParamType,
    /// Whether a call must provide this parameter.
    pub required: bool,
    /// Human-readable description.
    pub description: String,
}

/// A complete tool description as plain data — the registration payload
/// of a live catalog mutation.
///
/// # Examples
///
/// ```
/// use lim_tools::{ParamType, ToolDoc};
///
/// let doc = ToolDoc::new("units_convert", "conversion", "Converts units")
///     .with_param("value", ParamType::Number, true, "quantity to convert");
/// let spec = doc.to_spec();
/// assert_eq!(spec.name(), "units_convert");
/// let back = ToolDoc::from_json(&doc.to_json()).unwrap();
/// assert_eq!(back, doc);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ToolDoc {
    /// Tool name (the registry key; must be unique in a catalog).
    pub name: String,
    /// Category label.
    pub category: String,
    /// Human-readable description (what the selector embeds).
    pub description: String,
    /// Parameter schemas, in declaration order.
    pub params: Vec<ParamDoc>,
}

impl ToolDoc {
    /// Creates a document with no parameters.
    pub fn new(
        name: impl Into<String>,
        category: impl Into<String>,
        description: impl Into<String>,
    ) -> Self {
        Self {
            name: name.into(),
            category: category.into(),
            description: description.into(),
            params: Vec::new(),
        }
    }

    /// Appends one parameter (builder-style convenience).
    pub fn with_param(
        mut self,
        name: impl Into<String>,
        ty: ParamType,
        required: bool,
        description: impl Into<String>,
    ) -> Self {
        self.params.push(ParamDoc {
            name: name.into(),
            ty,
            required,
            description: description.into(),
        });
        self
    }

    /// Captures an existing spec as a document (the inverse of
    /// [`ToolDoc::to_spec`]), e.g. to re-announce a catalog tool on the
    /// wire.
    pub fn from_spec(spec: &ToolSpec) -> Self {
        Self {
            name: spec.name().to_owned(),
            category: spec.category().to_owned(),
            description: spec.description().to_owned(),
            params: spec
                .params()
                .iter()
                .map(|p| ParamDoc {
                    name: p.name().to_owned(),
                    ty: p.ty().clone(),
                    required: p.is_required(),
                    description: p.description().to_owned(),
                })
                .collect(),
        }
    }

    /// Builds the validated [`ToolSpec`] this document describes.
    ///
    /// # Panics
    ///
    /// Panics if the name is empty or two parameters share a name (the
    /// [`ToolSpec::builder`] invariants). Decode paths should check with
    /// [`ToolDoc::validate`] first.
    pub fn to_spec(&self) -> ToolSpec {
        let mut builder = ToolSpec::builder(&self.name)
            .description(&self.description)
            .category(&self.category);
        for p in &self.params {
            let spec = if p.required {
                ParamSpec::required(&p.name, p.ty.clone(), &p.description)
            } else {
                ParamSpec::optional(&p.name, p.ty.clone(), &p.description)
            };
            builder = builder.param(spec);
        }
        builder.build()
    }

    /// Checks the [`ToolSpec::builder`] invariants without panicking —
    /// what a decode path (wire frame, snapshot log) calls before
    /// [`ToolDoc::to_spec`].
    ///
    /// # Errors
    ///
    /// Returns a [`DocError`] on an empty name or duplicate param names.
    pub fn validate(&self) -> Result<(), DocError> {
        if self.name.is_empty() {
            return Err(err("tool name must not be empty"));
        }
        for (i, p) in self.params.iter().enumerate() {
            if p.name.is_empty() {
                return Err(err(format!("param {i} of {:?} has no name", self.name)));
            }
            if self.params[..i].iter().any(|q| q.name == p.name) {
                return Err(err(format!(
                    "duplicate param {:?} in tool {:?}",
                    p.name, self.name
                )));
            }
        }
        Ok(())
    }

    /// Serializes the document. Encoding is deterministic: the same doc
    /// always yields byte-identical JSON.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("name", Value::from(self.name.as_str())),
            ("category", Value::from(self.category.as_str())),
            ("description", Value::from(self.description.as_str())),
            (
                "params",
                self.params
                    .iter()
                    .map(|p| {
                        Value::object([
                            ("name", Value::from(p.name.as_str())),
                            ("type", param_type_to_json(&p.ty)),
                            ("required", Value::from(p.required)),
                            ("description", Value::from(p.description.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ])
    }

    /// Decodes a [`ToolDoc::to_json`] document and validates it.
    ///
    /// # Errors
    ///
    /// Returns a [`DocError`] on missing/mistyped members, an unknown
    /// param-type kind, or a document violating [`ToolDoc::validate`].
    pub fn from_json(doc: &Value) -> Result<Self, DocError> {
        let text = |key: &str| {
            doc.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| err(format!("missing {key}")))
        };
        let mut params = Vec::new();
        for (i, p) in doc
            .get("params")
            .and_then(Value::as_array)
            .ok_or_else(|| err("missing params"))?
            .iter()
            .enumerate()
        {
            let field = |key: &str| {
                p.get(key)
                    .and_then(Value::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| err(format!("param {i} missing {key}")))
            };
            params.push(ParamDoc {
                name: field("name")?,
                ty: param_type_from_json(
                    p.get("type")
                        .ok_or_else(|| err(format!("param {i} missing type")))?,
                )?,
                required: p
                    .get("required")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| err(format!("param {i} missing required")))?,
                description: field("description")?,
            });
        }
        let parsed = Self {
            name: text("name")?,
            category: text("category")?,
            description: text("description")?,
            params,
        };
        parsed.validate()?;
        Ok(parsed)
    }
}

/// Serializes a [`ParamType`] as a self-describing `{"kind": ...}` object
/// (structured, not the `Display` label, so enum options containing `|`
/// or `)` survive the round-trip).
pub fn param_type_to_json(ty: &ParamType) -> Value {
    match ty {
        ParamType::String => Value::object([("kind", Value::from("string"))]),
        ParamType::Integer => Value::object([("kind", Value::from("integer"))]),
        ParamType::Number => Value::object([("kind", Value::from("number"))]),
        ParamType::Boolean => Value::object([("kind", Value::from("boolean"))]),
        ParamType::Array(item) => Value::object([
            ("kind", Value::from("array")),
            ("item", param_type_to_json(item)),
        ]),
        ParamType::Enum(options) => Value::object([
            ("kind", Value::from("enum")),
            (
                "options",
                options.iter().map(|o| Value::from(o.as_str())).collect(),
            ),
        ]),
    }
}

/// Inverse of [`param_type_to_json`].
///
/// # Errors
///
/// Returns a [`DocError`] on an unknown `kind` or malformed members.
pub fn param_type_from_json(doc: &Value) -> Result<ParamType, DocError> {
    let kind = doc
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| err("param type missing kind"))?;
    match kind {
        "string" => Ok(ParamType::String),
        "integer" => Ok(ParamType::Integer),
        "number" => Ok(ParamType::Number),
        "boolean" => Ok(ParamType::Boolean),
        "array" => Ok(ParamType::Array(Box::new(param_type_from_json(
            doc.get("item")
                .ok_or_else(|| err("array param type missing item"))?,
        )?))),
        "enum" => Ok(ParamType::Enum(
            doc.get("options")
                .and_then(Value::as_array)
                .ok_or_else(|| err("enum param type missing options"))?
                .iter()
                .map(|o| o.as_str().map(str::to_owned))
                .collect::<Option<Vec<String>>>()
                .ok_or_else(|| err("enum options must be strings"))?,
        )),
        other => Err(err(format!("unknown param type kind {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ToolDoc {
        ToolDoc::new("units_convert", "conversion", "Converts quantities")
            .with_param("value", ParamType::Number, true, "quantity")
            .with_param(
                "unit",
                ParamType::Enum(vec!["si|metric".into(), "imperial)".into()]),
                false,
                "target unit",
            )
            .with_param(
                "tags",
                ParamType::Array(Box::new(ParamType::String)),
                false,
                "labels",
            )
    }

    #[test]
    fn json_roundtrip_is_lossless_even_for_hostile_enum_options() {
        let doc = sample();
        let text = doc.to_json().to_string();
        let back = ToolDoc::from_json(&lim_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn encoding_is_byte_deterministic() {
        assert_eq!(
            sample().to_json().to_string(),
            sample().to_json().to_string()
        );
    }

    #[test]
    fn spec_conversion_roundtrips() {
        let doc = sample();
        let spec = doc.to_spec();
        assert_eq!(spec.name(), "units_convert");
        assert_eq!(spec.params().len(), 3);
        assert_eq!(ToolDoc::from_spec(&spec), doc);
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        let doc = sample();
        for field in ["name", "category", "description", "params"] {
            let mut broken = doc.to_json();
            broken.insert(field, Value::Null);
            assert!(ToolDoc::from_json(&broken).is_err(), "nulled {field}");
        }
        let mut bad_kind = doc.to_json();
        bad_kind.insert(
            "params",
            [Value::object([
                ("name", Value::from("x")),
                ("type", Value::object([("kind", Value::from("tuple"))])),
                ("required", Value::from(true)),
                ("description", Value::from("")),
            ])]
            .into_iter()
            .collect(),
        );
        assert!(ToolDoc::from_json(&bad_kind).is_err(), "unknown type kind");
    }

    #[test]
    fn validate_catches_builder_panics() {
        assert!(ToolDoc::new("", "c", "d").validate().is_err());
        let dup = ToolDoc::new("t", "c", "d")
            .with_param("x", ParamType::String, true, "")
            .with_param("x", ParamType::Number, false, "");
        assert!(dup.validate().is_err());
        assert!(sample().validate().is_ok());
    }
}
