//! Tool calls and their validation errors.

use std::error::Error;
use std::fmt;

use lim_json::Value;

/// A function call emitted by an agent: tool name plus JSON arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolCall {
    tool: String,
    args: Value,
}

impl ToolCall {
    /// Creates a call. `args` is typically a JSON object.
    pub fn new(tool: impl Into<String>, args: Value) -> Self {
        Self {
            tool: tool.into(),
            args,
        }
    }

    /// Name of the tool being invoked.
    pub fn tool(&self) -> &str {
        &self.tool
    }

    /// The JSON arguments.
    pub fn args(&self) -> &Value {
        &self.args
    }

    /// Renders the wire format `{"name": ..., "arguments": ...}`.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("name", Value::from(self.tool.as_str())),
            ("arguments", self.args.clone()),
        ])
    }

    /// Parses the wire format produced by [`ToolCall::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`CallValidationError::Malformed`] when the document lacks
    /// the `name` string or `arguments` member.
    pub fn from_json(value: &Value) -> Result<Self, CallValidationError> {
        let name = value
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| CallValidationError::Malformed("missing \"name\"".into()))?;
        let args = value
            .get("arguments")
            .cloned()
            .ok_or_else(|| CallValidationError::Malformed("missing \"arguments\"".into()))?;
        Ok(Self::new(name, args))
    }
}

impl fmt::Display for ToolCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.tool, self.args)
    }
}

/// Result payload returned by executing a tool (simulated or real).
#[derive(Debug, Clone, PartialEq)]
pub struct ToolOutput {
    /// Tool that produced the output.
    pub tool: String,
    /// JSON payload of the result.
    pub payload: Value,
}

impl ToolOutput {
    /// Creates an output record.
    pub fn new(tool: impl Into<String>, payload: Value) -> Self {
        Self {
            tool: tool.into(),
            payload,
        }
    }
}

/// Why a [`ToolCall`] failed validation against a [`crate::ToolSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallValidationError {
    /// The call named a different tool than the schema.
    WrongTool {
        /// Tool the schema describes.
        expected: String,
        /// Tool the call named.
        got: String,
    },
    /// A required parameter was absent.
    MissingParam(String),
    /// A parameter not present in the schema was supplied.
    UnknownParam(String),
    /// A parameter value had the wrong JSON type.
    TypeMismatch {
        /// Offending parameter name.
        param: String,
        /// Expected type, as rendered by [`crate::ParamType`]'s `Display`.
        expected: String,
        /// The actual JSON value, serialized.
        got: String,
    },
    /// The call document itself was not well-formed.
    Malformed(String),
}

impl fmt::Display for CallValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallValidationError::WrongTool { expected, got } => {
                write!(f, "call names tool {got:?}, schema is for {expected:?}")
            }
            CallValidationError::MissingParam(p) => write!(f, "missing required parameter {p:?}"),
            CallValidationError::UnknownParam(p) => write!(f, "unknown parameter {p:?}"),
            CallValidationError::TypeMismatch {
                param,
                expected,
                got,
            } => {
                write!(f, "parameter {param:?} expects {expected}, got {got}")
            }
            CallValidationError::Malformed(why) => write!(f, "malformed tool call: {why}"),
        }
    }
}

impl Error for CallValidationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use lim_json::parse;

    #[test]
    fn wire_format_roundtrip() {
        let call = ToolCall::new("translate", parse(r#"{"text":"hi","lang":"fr"}"#).unwrap());
        let back = ToolCall::from_json(&call.to_json()).unwrap();
        assert_eq!(back, call);
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        assert!(ToolCall::from_json(&parse(r#"{"arguments":{}}"#).unwrap()).is_err());
        assert!(ToolCall::from_json(&parse(r#"{"name":"x"}"#).unwrap()).is_err());
        assert!(ToolCall::from_json(&parse(r#"{"name":3,"arguments":{}}"#).unwrap()).is_err());
    }

    #[test]
    fn display_is_compact() {
        let call = ToolCall::new("f", parse(r#"{"a":1}"#).unwrap());
        assert_eq!(call.to_string(), r#"f({"a":1})"#);
    }

    #[test]
    fn errors_render_helpfully() {
        let e = CallValidationError::TypeMismatch {
            param: "city".into(),
            expected: "string".into(),
            got: "42".into(),
        };
        assert!(e.to_string().contains("city"));
        assert!(e.to_string().contains("string"));
    }
}
