//! Parameter schemas.

use lim_json::Value;

/// The JSON type a tool parameter accepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamType {
    /// Any JSON string.
    String,
    /// An integral JSON number.
    Integer,
    /// Any JSON number.
    Number,
    /// A JSON boolean.
    Boolean,
    /// A JSON array whose items all have the given type.
    Array(Box<ParamType>),
    /// A string restricted to a fixed set of values.
    Enum(Vec<String>),
}

impl ParamType {
    /// JSON-schema type name used when rendering the schema.
    pub fn type_name(&self) -> &'static str {
        match self {
            ParamType::String | ParamType::Enum(_) => "string",
            ParamType::Integer => "integer",
            ParamType::Number => "number",
            ParamType::Boolean => "boolean",
            ParamType::Array(_) => "array",
        }
    }

    /// Checks whether `value` inhabits this type.
    pub fn accepts(&self, value: &Value) -> bool {
        match self {
            ParamType::String => value.as_str().is_some(),
            ParamType::Integer => value.as_i64().is_some(),
            ParamType::Number => value.as_f64().is_some(),
            ParamType::Boolean => value.as_bool().is_some(),
            ParamType::Array(item) => value
                .as_array()
                .is_some_and(|items| items.iter().all(|v| item.accepts(v))),
            ParamType::Enum(options) => value
                .as_str()
                .is_some_and(|s| options.iter().any(|o| o == s)),
        }
    }
}

impl std::fmt::Display for ParamType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamType::Array(item) => write!(f, "array<{item}>"),
            ParamType::Enum(options) => write!(f, "enum({})", options.join("|")),
            other => f.write_str(other.type_name()),
        }
    }
}

/// Schema of a single tool parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    name: String,
    ty: ParamType,
    description: String,
    required: bool,
}

impl ParamSpec {
    /// Creates a required parameter.
    pub fn required(
        name: impl Into<String>,
        ty: ParamType,
        description: impl Into<String>,
    ) -> Self {
        Self {
            name: name.into(),
            ty,
            description: description.into(),
            required: true,
        }
    }

    /// Creates an optional parameter.
    pub fn optional(
        name: impl Into<String>,
        ty: ParamType,
        description: impl Into<String>,
    ) -> Self {
        Self {
            required: false,
            ..Self::required(name, ty, description)
        }
    }

    /// Parameter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parameter type.
    pub fn ty(&self) -> &ParamType {
        &self.ty
    }

    /// Human-readable description (part of the prompt the agent sees).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Whether a call must provide this parameter.
    pub fn is_required(&self) -> bool {
        self.required
    }

    /// Renders this parameter's JSON-schema fragment.
    pub fn schema_json(&self) -> Value {
        let mut obj = Value::object([
            ("type", Value::from(self.ty.type_name())),
            ("description", Value::from(self.description.as_str())),
        ]);
        if let ParamType::Enum(options) = &self.ty {
            obj.insert(
                "enum",
                options.iter().map(|o| Value::from(o.as_str())).collect(),
            );
        }
        if let ParamType::Array(item) = &self.ty {
            obj.insert(
                "items",
                Value::object([("type", Value::from(item.type_name()))]),
            );
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lim_json::parse;

    #[test]
    fn accepts_matching_values() {
        assert!(ParamType::String.accepts(&Value::from("x")));
        assert!(ParamType::Integer.accepts(&Value::from(3)));
        assert!(!ParamType::Integer.accepts(&Value::from(3.5)));
        assert!(ParamType::Number.accepts(&Value::from(3.5)));
        assert!(ParamType::Boolean.accepts(&Value::from(true)));
        assert!(!ParamType::Boolean.accepts(&Value::from("true")));
    }

    #[test]
    fn array_type_checks_items() {
        let ty = ParamType::Array(Box::new(ParamType::Integer));
        assert!(ty.accepts(&parse("[1,2,3]").unwrap()));
        assert!(!ty.accepts(&parse("[1,\"a\"]").unwrap()));
        assert!(ty.accepts(&parse("[]").unwrap()));
    }

    #[test]
    fn enum_type_restricts_values() {
        let ty = ParamType::Enum(vec!["metric".into(), "imperial".into()]);
        assert!(ty.accepts(&Value::from("metric")));
        assert!(!ty.accepts(&Value::from("kelvin")));
        assert!(!ty.accepts(&Value::from(1)));
    }

    #[test]
    fn schema_includes_enum_options() {
        let p = ParamSpec::required(
            "units",
            ParamType::Enum(vec!["a".into(), "b".into()]),
            "unit system",
        );
        let text = p.schema_json().to_string();
        assert!(text.contains("\"enum\""));
        assert!(text.contains("\"a\""));
    }

    #[test]
    fn display_formats_compound_types() {
        let ty = ParamType::Array(Box::new(ParamType::String));
        assert_eq!(ty.to_string(), "array<string>");
        assert_eq!(
            ParamType::Enum(vec!["x".into(), "y".into()]).to_string(),
            "enum(x|y)"
        );
    }

    #[test]
    fn required_vs_optional() {
        assert!(ParamSpec::required("a", ParamType::String, "").is_required());
        assert!(!ParamSpec::optional("a", ParamType::String, "").is_required());
    }
}
