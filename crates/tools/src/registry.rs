//! Tool catalogs.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use lim_json::Value;

use crate::spec::ToolSpec;

/// Error returned by registry mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A tool with the same name is already registered.
    DuplicateTool(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateTool(name) => write!(f, "tool {name:?} already registered"),
        }
    }
}

impl Error for RegistryError {}

/// An ordered catalog of tools, addressable by index or name.
///
/// Indexes are stable (insertion order) and are the ids stored in the
/// vector indexes of the search levels, so `ToolRegistry` is the common
/// coordinate system of the whole pipeline.
///
/// # Examples
///
/// ```
/// use lim_tools::{ToolRegistry, ToolSpec};
///
/// # fn main() -> Result<(), lim_tools::RegistryError> {
/// let mut reg = ToolRegistry::new();
/// reg.register(ToolSpec::builder("a").description("first tool").build())?;
/// reg.register(ToolSpec::builder("b").description("second tool").build())?;
/// assert_eq!(reg.len(), 2);
/// assert_eq!(reg.index_of("b"), Some(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ToolRegistry {
    tools: Vec<ToolSpec>,
    by_name: HashMap<String, usize>,
}

impl ToolRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a registry from an iterator of specs.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::DuplicateTool`] on name collisions.
    pub fn from_specs<I: IntoIterator<Item = ToolSpec>>(specs: I) -> Result<Self, RegistryError> {
        let mut reg = Self::new();
        for spec in specs {
            reg.register(spec)?;
        }
        Ok(reg)
    }

    /// Registers a tool, returning its index.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::DuplicateTool`] if the name is taken.
    pub fn register(&mut self, spec: ToolSpec) -> Result<usize, RegistryError> {
        if self.by_name.contains_key(spec.name()) {
            return Err(RegistryError::DuplicateTool(spec.name().to_owned()));
        }
        let index = self.tools.len();
        self.by_name.insert(spec.name().to_owned(), index);
        self.tools.push(spec);
        Ok(index)
    }

    /// Number of registered tools.
    pub fn len(&self) -> usize {
        self.tools.len()
    }

    /// Returns `true` if no tools are registered.
    pub fn is_empty(&self) -> bool {
        self.tools.is_empty()
    }

    /// Looks a tool up by index.
    pub fn get(&self, index: usize) -> Option<&ToolSpec> {
        self.tools.get(index)
    }

    /// Looks a tool up by name.
    pub fn get_by_name(&self, name: &str) -> Option<&ToolSpec> {
        self.by_name.get(name).map(|i| &self.tools[*i])
    }

    /// Returns the index of `name`, if registered.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Iterates over tools in registration order.
    pub fn iter(&self) -> std::slice::Iter<'_, ToolSpec> {
        self.tools.iter()
    }

    /// All tool names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.tools.iter().map(ToolSpec::name).collect()
    }

    /// Distinct categories, in first-appearance order.
    pub fn categories(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for t in &self.tools {
            if !seen.contains(&t.category()) {
                seen.push(t.category());
            }
        }
        seen
    }

    /// Indices of all tools in `category`.
    pub fn indices_in_category(&self, category: &str) -> Vec<usize> {
        self.tools
            .iter()
            .enumerate()
            .filter(|(_, t)| t.category() == category)
            .map(|(i, _)| i)
            .collect()
    }

    /// Renders the JSON schema array for a subset of tools — exactly the
    /// payload appended to the agent prompt. Unknown indices are skipped.
    pub fn render_subset(&self, indices: &[usize]) -> Value {
        indices
            .iter()
            .filter_map(|i| self.get(*i))
            .map(|t| t.schema_json())
            .collect()
    }

    /// Renders the full catalog (Search Level 3 / default policy payload).
    pub fn render_all(&self) -> Value {
        self.render_subset(&(0..self.len()).collect::<Vec<_>>())
    }

    /// Size in characters of the rendered subset — the quantity that
    /// drives prompt length, and therefore latency and energy, in the
    /// device model.
    pub fn prompt_chars(&self, indices: &[usize]) -> usize {
        self.render_subset(indices).to_string().len()
    }
}

impl<'a> IntoIterator for &'a ToolRegistry {
    type Item = &'a ToolSpec;
    type IntoIter = std::slice::Iter<'a, ToolSpec>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{ParamSpec, ParamType};

    fn sample() -> ToolRegistry {
        ToolRegistry::from_specs([
            ToolSpec::builder("alpha")
                .description("first")
                .category("math")
                .param(ParamSpec::required("x", ParamType::Number, "operand"))
                .build(),
            ToolSpec::builder("beta")
                .description("second")
                .category("text")
                .build(),
            ToolSpec::builder("gamma")
                .description("third")
                .category("math")
                .build(),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name_and_index_agree() {
        let reg = sample();
        assert_eq!(reg.index_of("gamma"), Some(2));
        assert_eq!(reg.get(2).map(ToolSpec::name), Some("gamma"));
        assert_eq!(reg.get_by_name("beta").map(ToolSpec::name), Some("beta"));
        assert_eq!(reg.index_of("missing"), None);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut reg = sample();
        let dup = ToolSpec::builder("alpha").description("again").build();
        assert_eq!(
            reg.register(dup).unwrap_err(),
            RegistryError::DuplicateTool("alpha".into())
        );
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn categories_in_first_appearance_order() {
        let reg = sample();
        assert_eq!(reg.categories(), vec!["math", "text"]);
        assert_eq!(reg.indices_in_category("math"), vec![0, 2]);
    }

    #[test]
    fn render_subset_skips_unknown_indices() {
        let reg = sample();
        let rendered = reg.render_subset(&[0, 99]);
        assert_eq!(rendered.as_array().map(|a| a.len()), Some(1));
    }

    #[test]
    fn prompt_chars_grows_with_subset() {
        let reg = sample();
        let one = reg.prompt_chars(&[0]);
        let all = reg.prompt_chars(&[0, 1, 2]);
        assert!(all > one, "all={all} one={one}");
        assert_eq!(reg.render_all().as_array().map(|a| a.len()), Some(3));
    }

    #[test]
    fn iteration_is_in_registration_order() {
        let reg = sample();
        let names: Vec<&str> = (&reg).into_iter().map(ToolSpec::name).collect();
        assert_eq!(names, vec!["alpha", "beta", "gamma"]);
    }
}
