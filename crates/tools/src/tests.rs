//! Crate-level behaviour and property tests.

use crate::{ParamSpec, ParamType, RegistryError, ToolCall, ToolRegistry, ToolSpec};
use lim_json::Value;
use proptest::prelude::*;

#[test]
fn full_catalog_rendering_is_valid_json() {
    let reg = ToolRegistry::from_specs([
        ToolSpec::builder("get_weather")
            .description("Weather lookup")
            .param(ParamSpec::required("city", ParamType::String, "City"))
            .build(),
        ToolSpec::builder("translate_text")
            .description("Translation")
            .param(ParamSpec::required("text", ParamType::String, "Input"))
            .param(ParamSpec::required(
                "target",
                ParamType::Enum(vec!["fr".into(), "de".into()]),
                "Language",
            ))
            .build(),
    ])
    .unwrap();
    let rendered = reg.render_all().to_string();
    let parsed = lim_json::parse(&rendered).unwrap();
    assert_eq!(parsed.as_array().map(|a| a.len()), Some(2));
}

#[test]
fn registry_error_is_std_error() {
    fn assert_err<E: std::error::Error>(_: &E) {}
    assert_err(&RegistryError::DuplicateTool("x".into()));
}

proptest! {
    /// Registering n uniquely-named tools always succeeds and preserves
    /// order; indices round-trip through names.
    #[test]
    fn registry_index_name_bijection(names in prop::collection::btree_set("[a-z]{1,10}", 1..20)) {
        let reg = ToolRegistry::from_specs(
            names.iter().map(|n| ToolSpec::builder(n.clone()).description("d").build()),
        ).unwrap();
        for (i, name) in names.iter().enumerate() {
            prop_assert_eq!(reg.index_of(name), Some(i));
            prop_assert_eq!(reg.get(i).map(|t| t.name().to_owned()), Some(name.clone()));
        }
    }

    /// prompt_chars is monotone in the subset: adding a tool never shrinks
    /// the rendered payload.
    #[test]
    fn prompt_chars_monotone(extra in 0usize..3) {
        let reg = ToolRegistry::from_specs((0..4).map(|i| {
            ToolSpec::builder(format!("tool_{i}"))
                .description("does something useful with input data")
                .param(ParamSpec::required("input", ParamType::String, "the input"))
                .build()
        })).unwrap();
        let base: Vec<usize> = vec![0];
        let mut bigger = base.clone();
        bigger.push(1 + extra);
        prop_assert!(reg.prompt_chars(&bigger) > reg.prompt_chars(&base));
    }

    /// validate_call accepts exactly the calls constructed from the schema
    /// itself (with required params filled by type-correct values).
    #[test]
    fn self_constructed_calls_validate(param_count in 0usize..5) {
        let mut builder = ToolSpec::builder("t").description("test tool");
        for i in 0..param_count {
            builder = builder.param(ParamSpec::required(
                format!("p{i}"),
                ParamType::Integer,
                "a number",
            ));
        }
        let spec = builder.build();
        let args = Value::Object(
            (0..param_count)
                .map(|i| (format!("p{i}"), Value::from(i as i64)))
                .collect(),
        );
        let call = ToolCall::new("t", args);
        prop_assert!(spec.validate_call(&call).is_ok());
    }
}
