//! Crate-level behaviour and property tests.

use crate::{Embedder, Embedding, IdfModel, EMBED_DIM};
use proptest::prelude::*;

#[test]
fn default_dim_is_768() {
    assert_eq!(EMBED_DIM, 768);
    assert_eq!(Embedder::new().dim(), 768);
}

#[test]
fn tool_description_matching_scenario() {
    // End-to-end sanity check of the scenario the controller relies on:
    // an LLM-recommended "ideal tool" description should rank the right
    // real tool first among a realistic catalog.
    let catalog = [
        (
            "weather_information",
            "Fetches current weather data and forecast for a given city",
        ),
        (
            "text_translation",
            "Translates text between natural languages such as French",
        ),
        (
            "currency_converter",
            "Converts an amount between two currencies using live rates",
        ),
        (
            "calendar_event",
            "Creates a calendar event with title, date and attendees",
        ),
        (
            "web_search",
            "Searches the web and returns the most relevant page snippets",
        ),
    ];
    let idf = IdfModel::fit(catalog.iter().map(|(_, d)| *d));
    let embedder = Embedder::builder().idf(idf).build();
    let tool_vecs: Vec<Embedding> = catalog
        .iter()
        .map(|(name, desc)| embedder.embed(&format!("{name} {desc}")))
        .collect();

    let recommendation = "a tool that retrieves weather conditions and forecast for a city";
    let rec_vec = embedder.embed(recommendation);
    let best = tool_vecs
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| rec_vec.cosine(a).partial_cmp(&rec_vec.cosine(b)).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    assert_eq!(catalog[best].0, "weather_information");
}

proptest! {
    /// Every non-degenerate embedding is unit-norm.
    #[test]
    fn embeddings_are_unit_norm(text in "[a-z]{3,10}( [a-z]{3,10}){0,8}") {
        let e = Embedder::new();
        let v = e.embed(&text);
        if !v.is_zero() {
            let norm: f32 = v.as_slice().iter().map(|x| x * x).sum::<f32>().sqrt();
            prop_assert!((norm - 1.0).abs() < 1e-4);
        }
    }

    /// Cosine similarity is symmetric.
    #[test]
    fn cosine_symmetric(a in "[a-z]{3,8}( [a-z]{3,8}){0,5}", b in "[a-z]{3,8}( [a-z]{3,8}){0,5}") {
        let e = Embedder::new();
        let va = e.embed(&a);
        let vb = e.embed(&b);
        prop_assert!((va.cosine(&vb) - vb.cosine(&va)).abs() < 1e-6);
    }

    /// Adding shared suffix text never produces wildly different vectors for
    /// the same base text (stability under concatenation determinism).
    #[test]
    fn deterministic_across_calls(text in "[a-z ]{0,64}") {
        let e = Embedder::new();
        prop_assert_eq!(e.embed(&text), e.embed(&text));
    }

    /// Cosine stays within [-1, 1] for arbitrary token soups.
    #[test]
    fn cosine_bounded(a in "[a-z0-9 _,.]{0,64}", b in "[a-z0-9 _,.]{0,64}") {
        let e = Embedder::builder().dim(32).build();
        let c = e.embed(&a).cosine(&e.embed(&b));
        prop_assert!((-1.0..=1.0).contains(&c));
    }

    /// IDF fitting never makes self-similarity degenerate.
    #[test]
    fn idf_preserves_self_similarity(docs in prop::collection::vec("[a-z]{3,8}( [a-z]{3,8}){1,5}", 1..8)) {
        let idf = IdfModel::fit(docs.iter().map(String::as_str));
        let e = Embedder::builder().idf(idf).build();
        let v = e.embed(&docs[0]);
        if !v.is_zero() {
            prop_assert!((v.cosine(&v) - 1.0).abs() < 1e-5);
        }
    }
}
