//! Lexical front-end: lowercasing, splitting, stopwords and light stemming.

/// English stopwords stripped before embedding.
///
/// The list is intentionally small: tool descriptions are short, and removing
/// too much hurts bigram coverage.
pub const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "in", "into", "is", "it",
    "its", "of", "on", "or", "that", "the", "this", "to", "with", "will", "you", "your", "can",
    "given", "using", "use", "any", "all",
];

/// Returns `true` if `word` is in [`STOPWORDS`].
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.contains(&word)
}

/// Applies a light suffix stemmer so morphological variants collide.
///
/// This is deliberately much cruder than Porter stemming — tool descriptions
/// only need "translate"/"translates"/"translated"/"translating" and simple
/// plurals to map together.
///
/// # Examples
///
/// ```
/// use lim_embed::tokenizer::stem;
/// assert_eq!(stem("translates"), "translate");
/// assert_eq!(stem("translating"), "translat");
/// assert_eq!(stem("translated"), "translat");
/// assert_eq!(stem("queries"), "query");
/// assert_eq!(stem("maps"), "map");
/// ```
pub fn stem(word: &str) -> String {
    let w = word;
    if w.len() > 4 && w.ends_with("ies") {
        return format!("{}y", &w[..w.len() - 3]);
    }
    if w.len() > 5 && w.ends_with("ing") {
        return w[..w.len() - 3].to_string();
    }
    if w.len() > 4 && w.ends_with("ed") {
        return w[..w.len() - 2].to_string();
    }
    if w.len() > 4
        && (w.ends_with("ches") || w.ends_with("shes") || w.ends_with("xes") || w.ends_with("zes"))
    {
        return w[..w.len() - 2].to_string();
    }
    if w.len() > 3 && w.ends_with("es") && !w.ends_with("ses") {
        return w[..w.len() - 1].to_string();
    }
    if w.len() > 3 && w.ends_with('s') && !w.ends_with("ss") {
        return w[..w.len() - 1].to_string();
    }
    w.to_string()
}

/// Tokenizes `text` into lowercase, stopword-free, stemmed terms.
///
/// Splits on any non-alphanumeric character, so snake_case tool names like
/// `plot_vqa_captions` decompose into their content words — crucial for
/// matching LLM-recommended descriptions against real tool names.
///
/// # Examples
///
/// ```
/// use lim_embed::tokenizer::tokenize;
/// let toks = tokenize("Plot the fmow VQA captions in UK from Fall 2009");
/// assert!(toks.contains(&"plot".to_string()));
/// assert!(toks.contains(&"caption".to_string()));
/// assert!(!toks.contains(&"the".to_string()));
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .filter(|w| !is_stopword(w))
        .map(|w| stem(&w))
        .filter(|w| !w.is_empty())
        .collect()
}

/// Produces the token stream plus adjacent-pair bigrams (`"a b"`).
///
/// Bigrams let the embedder distinguish "convert currency" from
/// "convert units" even when unigram overlap is identical.
pub fn tokens_with_bigrams(text: &str) -> Vec<String> {
    let tokens = tokenize(text);
    let mut all = tokens.clone();
    for pair in tokens.windows(2) {
        all.push(format!("{} {}", pair[0], pair[1]));
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits_punct() {
        assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
    }

    #[test]
    fn tokenize_splits_snake_case() {
        let toks = tokenize("text_translation_tool");
        assert_eq!(toks, vec!["text", "translation", "tool"]);
    }

    #[test]
    fn tokenize_drops_stopwords() {
        assert_eq!(tokenize("the cat is on a mat"), vec!["cat", "mat"]);
    }

    #[test]
    fn tokenize_keeps_numbers() {
        assert_eq!(tokenize("fall 2009"), vec!["fall", "2009"]);
    }

    #[test]
    fn stem_handles_short_words() {
        // Words at or below the length guards are untouched.
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("gas"), "gas");
        assert_eq!(stem("pass"), "pass");
    }

    #[test]
    fn stem_merges_inflections() {
        assert_eq!(stem("fetches"), stem("fetch"));
        assert_eq!(stem("regions"), stem("region"));
    }

    #[test]
    fn bigrams_are_appended() {
        let all = tokens_with_bigrams("convert currency now");
        assert!(all.contains(&"convert currency".to_string()));
        assert!(all.contains(&"currency now".to_string()));
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn empty_input_gives_empty_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokens_with_bigrams("  ,,, ").is_empty());
    }
}
