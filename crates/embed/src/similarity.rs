//! Free-function similarity helpers over raw slices.
//!
//! [`crate::Embedding`] provides the method API; these operate on plain
//! `&[f32]` so that `lim-vecstore` can share the same kernels without
//! constructing `Embedding` values.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// L2 norm of a slice.
pub fn norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Cosine similarity; 0 when either vector has zero norm.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Squared Euclidean distance (cheaper than [`euclidean`] for ranking).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn euclidean_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    euclidean_sq(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_norm_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert!((euclidean_sq(&[0.0, 0.0], &[3.0, 4.0]) - 25.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_lengths_panic() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
