//! Deterministic sentence embeddings — the MPNet substitute.
//!
//! The paper encodes tool descriptions and LLM-recommended "ideal tool"
//! descriptions with a pretrained MPNet model into a 768-dimensional latent
//! space, then relies on **one property**: *semantically close descriptions
//! have high cosine similarity*. This crate reproduces that property without
//! model weights, using classic sparse-text machinery:
//!
//! 1. [`tokenizer`] — lowercasing, punctuation splitting, stopword removal
//!    and a light suffix stemmer, so that "translates documents" and
//!    "document translation" share tokens;
//! 2. [`idf`] — inverse-document-frequency weighting fit on the tool corpus,
//!    so that discriminative words dominate boilerplate;
//! 3. [`Embedder`] — hashed unigram+bigram features scattered into
//!    [`EMBED_DIM`] dimensions by a seeded signed hash (a random-projection
//!    equivalent), then L2-normalised.
//!
//! The result is a drop-in [`Embedding`] with the same shape (768-d, unit
//! norm, cosine interface) the paper's controller consumes.
//!
//! # Examples
//!
//! ```
//! use lim_embed::Embedder;
//!
//! let embedder = Embedder::new();
//! let a = embedder.embed("fetch current weather conditions for a city");
//! let b = embedder.embed("get the weather forecast of a given city");
//! let c = embedder.embed("integrate a polynomial over an interval");
//! assert!(a.cosine(&b) > a.cosine(&c));
//! ```

pub mod idf;
pub mod similarity;
pub mod tokenizer;

mod embedder;
mod vector;

pub use embedder::{Embedder, EmbedderBuilder};
pub use idf::IdfModel;
pub use vector::Embedding;

/// Dimensionality of the latent space, matching the paper's MPNet encoder.
pub const EMBED_DIM: usize = 768;

#[cfg(test)]
mod tests;
