//! Inverse-document-frequency weighting for the embedder.

use std::collections::HashMap;

use crate::tokenizer::tokens_with_bigrams;

/// Smoothed IDF statistics fit over a corpus of documents.
///
/// Fitting over the tool catalog makes boilerplate shared by every tool
/// description ("returns", "data", "tool") nearly weightless, so similarity
/// is driven by the discriminative terms — the same effect sentence encoders
/// learn implicitly.
///
/// # Examples
///
/// ```
/// use lim_embed::IdfModel;
///
/// let idf = IdfModel::fit(["translate text", "translate documents", "plot charts"]);
/// // "translate" appears in 2/3 docs, "plot" in 1/3 — plot is rarer, so heavier.
/// assert!(idf.weight("plot") > idf.weight("translate"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct IdfModel {
    doc_count: usize,
    doc_freq: HashMap<String, usize>,
}

impl IdfModel {
    /// Creates an empty model where every term has weight 1.0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fits the model on an iterator of documents.
    pub fn fit<I, S>(corpus: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut model = Self::new();
        for doc in corpus {
            model.add_document(doc.as_ref());
        }
        model
    }

    /// Incorporates one more document into the statistics.
    pub fn add_document(&mut self, doc: &str) {
        self.doc_count += 1;
        let mut terms = tokens_with_bigrams(doc);
        terms.sort();
        terms.dedup();
        for term in terms {
            *self.doc_freq.entry(term).or_insert(0) += 1;
        }
    }

    /// Number of documents the model has seen.
    pub fn len(&self) -> usize {
        self.doc_count
    }

    /// Iterates over `(term, document frequency)` pairs in unspecified
    /// order. Together with [`IdfModel::from_parts`] this allows offline
    /// artifacts to be persisted.
    pub fn entries(&self) -> impl Iterator<Item = (&str, usize)> + '_ {
        self.doc_freq.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Reconstructs a model from a document count and `(term, df)` pairs
    /// previously obtained via [`IdfModel::entries`].
    pub fn from_parts<I, S>(doc_count: usize, entries: I) -> Self
    where
        I: IntoIterator<Item = (S, usize)>,
        S: Into<String>,
    {
        Self {
            doc_count,
            doc_freq: entries.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        }
    }

    /// Returns `true` if no documents have been added.
    pub fn is_empty(&self) -> bool {
        self.doc_count == 0
    }

    /// Smoothed IDF weight for `term`.
    ///
    /// Uses `ln(1 + (N + 1) / (df + 1))`, which stays positive and gives
    /// unseen terms the maximum weight — an LLM-recommended description may
    /// legitimately contain words absent from the catalog.
    pub fn weight(&self, term: &str) -> f32 {
        if self.doc_count == 0 {
            return 1.0;
        }
        let df = self.doc_freq.get(term).copied().unwrap_or(0);
        (1.0 + (self.doc_count as f32 + 1.0) / (df as f32 + 1.0)).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_model_weights_everything_one() {
        let idf = IdfModel::new();
        assert_eq!(idf.weight("anything"), 1.0);
        assert!(idf.is_empty());
    }

    #[test]
    fn rarer_terms_weigh_more() {
        let idf = IdfModel::fit(["alpha beta", "alpha gamma", "alpha delta"]);
        assert!(idf.weight("beta") > idf.weight("alpha"));
        assert_eq!(idf.len(), 3);
    }

    #[test]
    fn unseen_terms_get_max_weight() {
        let idf = IdfModel::fit(["alpha beta", "alpha gamma"]);
        assert!(idf.weight("zeta") >= idf.weight("beta"));
    }

    #[test]
    fn duplicate_terms_in_one_doc_count_once() {
        let idf = IdfModel::fit(["echo echo echo", "other words"]);
        let other = IdfModel::fit(["echo", "other words"]);
        assert_eq!(idf.weight("echo"), other.weight("echo"));
    }

    #[test]
    fn weights_are_positive() {
        // Even a term present in every document keeps a positive weight.
        let idf = IdfModel::fit(["same", "same", "same", "same"]);
        assert!(idf.weight("same") > 0.0);
    }
}
