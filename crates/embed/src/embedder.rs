//! The hashed random-projection sentence encoder.

use crate::idf::IdfModel;
use crate::tokenizer::tokens_with_bigrams;
use crate::vector::Embedding;
use crate::EMBED_DIM;

/// Number of latent dimensions each hashed term contributes to.
///
/// Scattering every term into several signed dimensions (a "Bloom
/// embedding") makes accidental full collisions between unrelated terms
/// vanishingly unlikely while keeping the encoder dependency-free and
/// deterministic.
const SCATTER: usize = 4;

/// Deterministic 768-d sentence encoder (MPNet substitute).
///
/// Construction is cheap; the encoder carries only the optional
/// [`IdfModel`]. Encoding is pure and deterministic: the same text always
/// yields the same vector, across runs and platforms.
///
/// # Examples
///
/// ```
/// use lim_embed::{Embedder, IdfModel};
///
/// let idf = IdfModel::fit(["translate text", "plot captions on a map"]);
/// let embedder = Embedder::builder().idf(idf).build();
/// let v = embedder.embed("translate this document");
/// assert_eq!(v.dim(), lim_embed::EMBED_DIM);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Embedder {
    dim: usize,
    idf: IdfModel,
}

/// Builder for [`Embedder`], allowing a custom dimension or IDF model.
#[derive(Debug, Clone)]
pub struct EmbedderBuilder {
    dim: usize,
    idf: IdfModel,
}

impl Default for EmbedderBuilder {
    fn default() -> Self {
        Self {
            dim: EMBED_DIM,
            idf: IdfModel::new(),
        }
    }
}

impl EmbedderBuilder {
    /// Sets the latent dimension (default [`EMBED_DIM`]).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn dim(mut self, dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        self.dim = dim;
        self
    }

    /// Installs an IDF model fit on the tool corpus.
    pub fn idf(mut self, idf: IdfModel) -> Self {
        self.idf = idf;
        self
    }

    /// Finalises the encoder.
    pub fn build(self) -> Embedder {
        Embedder {
            dim: self.dim,
            idf: self.idf,
        }
    }
}

impl Embedder {
    /// Creates an encoder with the default dimension and no IDF weighting.
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Returns a [`EmbedderBuilder`] for customisation.
    pub fn builder() -> EmbedderBuilder {
        EmbedderBuilder::default()
    }

    /// Latent dimensionality of produced vectors.
    pub fn dim(&self) -> usize {
        if self.dim == 0 {
            EMBED_DIM
        } else {
            self.dim
        }
    }

    /// The IDF model in use (for persistence of offline artifacts).
    pub fn idf(&self) -> &IdfModel {
        &self.idf
    }

    /// Encodes `text` into a unit-norm [`Embedding`].
    ///
    /// Empty or all-stopword text produces the zero vector, whose cosine
    /// with anything is 0 — callers treat that as "no signal".
    pub fn embed(&self, text: &str) -> Embedding {
        let dim = self.dim();
        let mut values = vec![0.0f32; dim];
        for term in tokens_with_bigrams(text) {
            let weight = self.idf.weight(&term);
            let base = fnv1a(term.as_bytes());
            for slot in 0..SCATTER {
                // Derive an independent hash per scatter slot.
                let h = splitmix(base ^ (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let index = (h % dim as u64) as usize;
                let sign = if (h >> 63) & 1 == 1 { -1.0 } else { 1.0 };
                values[index] += sign * weight;
            }
        }
        Embedding::new(values)
    }

    /// Encodes a batch of texts.
    pub fn embed_batch<I, S>(&self, texts: I) -> Vec<Embedding>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        texts.into_iter().map(|t| self.embed(t.as_ref())).collect()
    }

    /// Encodes a query together with recommended tool descriptions, the way
    /// the paper forms the `Ẽ` latent points (§III-B): each recommendation
    /// is embedded alongside the user task so the match sees both.
    pub fn embed_with_context(&self, query: &str, description: &str) -> Embedding {
        self.embed(&format!("{query} {description}"))
    }
}

/// 64-bit FNV-1a hash — stable across runs, platforms and Rust versions
/// (unlike `DefaultHasher`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// SplitMix64 finaliser used to decorrelate the per-slot hashes.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_is_deterministic() {
        let e = Embedder::new();
        let a = e.embed("plot vqa captions on the map");
        let b = e.embed("plot vqa captions on the map");
        assert_eq!(a, b);
    }

    #[test]
    fn embedding_has_requested_dim() {
        let e = Embedder::builder().dim(64).build();
        assert_eq!(e.embed("hello world").dim(), 64);
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let e = Embedder::new();
        assert!(e.embed("").is_zero());
        assert!(e.embed("the of and").is_zero());
    }

    #[test]
    fn similar_texts_closer_than_dissimilar() {
        let e = Embedder::new();
        let weather1 = e.embed("fetch the current weather report for a city");
        let weather2 = e.embed("get weather conditions of the city today");
        let math = e.embed("compute the determinant of a square matrix");
        assert!(weather1.cosine(&weather2) > weather1.cosine(&math) + 0.1);
    }

    #[test]
    fn identical_texts_have_cosine_one() {
        let e = Embedder::new();
        let v = e.embed("translate text to french");
        assert!((v.cosine(&v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn idf_downweights_common_terms() {
        // Corpus where "tool" is ubiquitous; two docs share only "tool",
        // two others share the rare word "orbit".
        let corpus = [
            "tool alpha orbit",
            "tool beta orbit",
            "tool gamma street",
            "tool delta road",
        ];
        let plain = Embedder::new();
        let weighted = Embedder::builder().idf(IdfModel::fit(corpus)).build();
        let a = "tool orbit";
        let b = "tool street";
        // With IDF, the match driven by rare "orbit" should strengthen
        // relative to the boilerplate-driven one.
        let plain_gap = plain.embed(a).cosine(&plain.embed("alpha tool orbit"))
            - plain.embed(b).cosine(&plain.embed("alpha tool orbit"));
        let weighted_gap = weighted
            .embed(a)
            .cosine(&weighted.embed("alpha tool orbit"))
            - weighted
                .embed(b)
                .cosine(&weighted.embed("alpha tool orbit"));
        assert!(weighted_gap > plain_gap);
    }

    #[test]
    fn batch_matches_single() {
        let e = Embedder::new();
        let batch = e.embed_batch(["a b c", "d e f"]);
        assert_eq!(batch[0], e.embed("a b c"));
        assert_eq!(batch[1], e.embed("d e f"));
    }

    #[test]
    fn context_embedding_mixes_query_and_description() {
        let e = Embedder::new();
        let with_ctx = e.embed_with_context("weather in paris", "temperature lookup");
        let plain = e.embed("weather in paris temperature lookup");
        assert_eq!(with_ctx, plain);
    }

    #[test]
    fn fnv_is_stable() {
        // Pin a reference value so accidental algorithm changes are caught:
        // the whole workspace's reproducibility hangs on this hash.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"weather"), fnv1a(b"weathe"));
    }
}
