//! The dense embedding vector type.

use std::fmt;

/// A dense latent-space vector produced by [`crate::Embedder`].
///
/// Non-empty embeddings are L2-normalised at construction, so
/// [`Embedding::cosine`] reduces to a dot product — mirroring how FAISS
/// inner-product search is used for cosine similarity in the paper's
/// controller.
#[derive(Clone, PartialEq)]
pub struct Embedding {
    values: Vec<f32>,
}

impl Embedding {
    /// Wraps raw values, normalising to unit L2 norm when non-zero.
    ///
    /// A zero vector (e.g. the embedding of an empty string) is preserved
    /// as-is, and its cosine with anything is defined to be 0.
    pub fn new(values: Vec<f32>) -> Self {
        let norm = values.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            Self {
                values: values.iter().map(|v| v / norm).collect(),
            }
        } else {
            Self { values }
        }
    }

    /// Wraps values that are already unit-norm (or intentionally zero)
    /// without re-normalising.
    ///
    /// Dividing an already-normalised vector by its ≈1.0 norm perturbs
    /// every component by an ulp, so decoding a serialised embedding
    /// through [`Embedding::new`] would not be bit-identical to the
    /// vector that was written. Snapshot and checkpoint loaders use this
    /// constructor so persisted state round-trips to the exact bytes.
    pub fn from_normalized(values: Vec<f32>) -> Self {
        Self { values }
    }

    /// Creates an all-zero embedding of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self {
            values: vec![0.0; dim],
        }
    }

    /// Dimensionality of the vector.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Borrows the raw components.
    pub fn as_slice(&self) -> &[f32] {
        &self.values
    }

    /// Returns `true` if every component is zero.
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|v| *v == 0.0)
    }

    /// Dot product with another embedding.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn dot(&self, other: &Embedding) -> f32 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Cosine similarity in `[-1, 1]`; 0 when either vector is zero.
    ///
    /// Because embeddings are unit-norm this is just [`Embedding::dot`],
    /// clamped against floating-point drift.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn cosine(&self, other: &Embedding) -> f32 {
        if self.is_zero() || other.is_zero() {
            return 0.0;
        }
        self.dot(other).clamp(-1.0, 1.0)
    }

    /// Euclidean distance to another embedding.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn euclidean(&self, other: &Embedding) -> f32 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt()
    }

    /// Arithmetic mean of a non-empty set of embeddings, re-normalised.
    ///
    /// Used to build cluster centroids for Search Level 2.
    ///
    /// Returns `None` for an empty input.
    pub fn mean<'a, I: IntoIterator<Item = &'a Embedding>>(items: I) -> Option<Embedding> {
        let mut iter = items.into_iter();
        let first = iter.next()?;
        let mut acc: Vec<f32> = first.values.clone();
        let mut count = 1usize;
        for e in iter {
            assert_eq!(e.dim(), acc.len(), "dimension mismatch");
            for (a, b) in acc.iter_mut().zip(&e.values) {
                *a += b;
            }
            count += 1;
        }
        for a in &mut acc {
            *a /= count as f32;
        }
        Some(Embedding::new(acc))
    }
}

impl fmt::Debug for Embedding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Full 768-element dumps are useless in assertions; show a summary.
        write!(
            f,
            "Embedding(dim={}, norm={:.3}, head={:?})",
            self.dim(),
            self.values.iter().map(|v| v * v).sum::<f32>().sqrt(),
            &self.values[..self.values.len().min(4)]
        )
    }
}

impl AsRef<[f32]> for Embedding {
    fn as_ref(&self) -> &[f32] {
        &self.values
    }
}

impl From<Vec<f32>> for Embedding {
    fn from(values: Vec<f32>) -> Self {
        Embedding::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalises() {
        let e = Embedding::new(vec![3.0, 4.0]);
        assert!((e.as_slice()[0] - 0.6).abs() < 1e-6);
        assert!((e.as_slice()[1] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn zero_vector_is_preserved() {
        let e = Embedding::zeros(4);
        assert!(e.is_zero());
        assert_eq!(e.dim(), 4);
    }

    #[test]
    fn cosine_of_self_is_one() {
        let e = Embedding::new(vec![1.0, 2.0, 3.0]);
        assert!((e.cosine(&e) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_with_zero_is_zero() {
        let e = Embedding::new(vec![1.0, 0.0]);
        let z = Embedding::zeros(2);
        assert_eq!(e.cosine(&z), 0.0);
        assert_eq!(z.cosine(&z), 0.0);
    }

    #[test]
    fn cosine_of_orthogonal_is_zero() {
        let a = Embedding::new(vec![1.0, 0.0]);
        let b = Embedding::new(vec![0.0, 1.0]);
        assert!(a.cosine(&b).abs() < 1e-6);
    }

    #[test]
    fn euclidean_matches_manual() {
        let a = Embedding::zeros(2);
        let b = Embedding::new(vec![0.0, 1.0]);
        assert!((a.euclidean(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mean_of_identical_vectors_is_same() {
        let a = Embedding::new(vec![1.0, 1.0]);
        let m = Embedding::mean([&a, &a]).unwrap();
        assert!((m.cosine(&a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert!(Embedding::mean([]).is_none());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_panics_on_dim_mismatch() {
        let a = Embedding::zeros(2);
        let b = Embedding::zeros(3);
        let _ = a.dot(&b);
    }
}
