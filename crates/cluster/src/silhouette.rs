//! Silhouette cluster-quality score.

/// Mean silhouette coefficient of a labelling, in `[-1, 1]`.
///
/// For each point: `s = (b - a) / max(a, b)` where `a` is the mean distance
/// to its own cluster and `b` the smallest mean distance to another
/// cluster. Points in singleton clusters contribute 0, as in scikit-learn.
///
/// The Search-Level-2 builder uses this to choose how many tool clusters to
/// cut from the dendrogram.
///
/// # Panics
///
/// Panics if `points` and `labels` have different lengths.
///
/// # Examples
///
/// ```
/// use lim_cluster::silhouette_score;
/// use lim_embed::similarity::euclidean;
///
/// let pts = vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1]];
/// let good = silhouette_score(&pts, &[0, 0, 1, 1], euclidean);
/// let bad = silhouette_score(&pts, &[0, 1, 0, 1], euclidean);
/// assert!(good > 0.9);
/// assert!(bad < 0.0);
/// ```
pub fn silhouette_score<F>(points: &[Vec<f32>], labels: &[usize], distance: F) -> f32
where
    F: Fn(&[f32], &[f32]) -> f32,
{
    assert_eq!(points.len(), labels.len(), "points/labels length mismatch");
    let n = points.len();
    if n == 0 {
        return 0.0;
    }
    let cluster_count = labels.iter().copied().max().map_or(0, |m| m + 1);
    if cluster_count < 2 {
        return 0.0;
    }

    let mut sizes = vec![0usize; cluster_count];
    for &l in labels {
        sizes[l] += 1;
    }

    let mut total = 0.0f32;
    for i in 0..n {
        if sizes[labels[i]] <= 1 {
            continue; // singleton: s = 0
        }
        // Mean distance to every cluster.
        let mut sums = vec![0.0f32; cluster_count];
        for j in 0..n {
            if i == j {
                continue;
            }
            sums[labels[j]] += distance(&points[i], &points[j]);
        }
        let own = labels[i];
        let a = sums[own] / (sizes[own] - 1) as f32;
        let b = (0..cluster_count)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f32)
            .fold(f32::INFINITY, f32::min);
        if b.is_finite() {
            let denom = a.max(b);
            if denom > 0.0 {
                total += (b - a) / denom;
            }
        }
    }
    total / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use lim_embed::similarity::euclidean;

    #[test]
    fn perfect_separation_scores_high() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.0, 0.1],
            vec![9.0, 9.0],
            vec![9.0, 9.1],
        ];
        let s = silhouette_score(&pts, &[0, 0, 1, 1], euclidean);
        assert!(s > 0.95);
    }

    #[test]
    fn single_cluster_scores_zero() {
        let pts = vec![vec![0.0], vec![1.0]];
        assert_eq!(silhouette_score(&pts, &[0, 0], euclidean), 0.0);
    }

    #[test]
    fn empty_input_scores_zero() {
        assert_eq!(silhouette_score(&[], &[], euclidean), 0.0);
    }

    #[test]
    fn singletons_contribute_zero() {
        let pts = vec![vec![0.0], vec![0.1], vec![50.0]];
        let with_singleton = silhouette_score(&pts, &[0, 0, 1], euclidean);
        // Two tight points + one singleton: still strongly positive.
        assert!(with_singleton > 0.6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = silhouette_score(&[vec![0.0]], &[0, 1], euclidean);
    }
}
