//! Agglomerative clustering and ROUGE scoring — the scikit-learn substitute.
//!
//! Search Level 2 of the paper groups tools by *co-usage*: augmented queries
//! are embedded and fed to "Agglomerative Clustering, i.e., a recursively
//! clustering algorithm which starts by treating each query as its own
//! cluster and then progressively merges the most similar clusters"
//! (§III-A). This crate supplies:
//!
//! * [`agglomerative`] — the bottom-up merge loop with four linkage
//!   criteria ([`Linkage`]), producing a [`Dendrogram`] that can be cut
//!   into any number of clusters;
//! * [`silhouette_score`] — cluster-quality measurement used by the level
//!   builder to pick a cut;
//! * [`rouge`] — ROUGE-1/2/L, the similarity score the paper uses (after
//!   ToolQA) to vet GPT-generated augmentation queries.
//!
//! # Examples
//!
//! ```
//! use lim_cluster::{agglomerative, Linkage};
//!
//! let points = vec![
//!     vec![0.0, 0.0], vec![0.1, 0.0],   // blob A
//!     vec![5.0, 5.0], vec![5.1, 5.0],   // blob B
//! ];
//! let dendrogram = agglomerative(&points, Linkage::Average);
//! let labels = dendrogram.cut(2);
//! assert_eq!(labels[0], labels[1]);
//! assert_eq!(labels[2], labels[3]);
//! assert_ne!(labels[0], labels[2]);
//! ```

mod dendrogram;
mod linkage;
pub mod rouge;
mod silhouette;

pub use dendrogram::{Dendrogram, Merge};
pub use linkage::Linkage;
pub use silhouette::silhouette_score;

use lim_embed::similarity::euclidean;

/// Runs bottom-up agglomerative clustering over `points` with Euclidean
/// distance.
///
/// Every point starts as a singleton cluster; each step merges the pair
/// with the smallest linkage distance until one cluster remains. The full
/// merge history is returned as a [`Dendrogram`].
///
/// # Panics
///
/// Panics if `points` is empty or rows have uneven lengths.
pub fn agglomerative(points: &[Vec<f32>], linkage: Linkage) -> Dendrogram {
    agglomerative_with(points, linkage, euclidean)
}

/// Like [`agglomerative`] but with a caller-supplied distance function
/// (e.g. cosine distance for unit-norm embeddings).
///
/// # Panics
///
/// Panics if `points` is empty or rows have uneven lengths.
pub fn agglomerative_with<F>(points: &[Vec<f32>], linkage: Linkage, distance: F) -> Dendrogram
where
    F: Fn(&[f32], &[f32]) -> f32,
{
    assert!(!points.is_empty(), "clustering requires at least one point");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "all points must share one dimensionality"
    );
    linkage::run(points, linkage, distance)
}

/// Cosine *distance* (`1 - cosine similarity`) for clustering unit-norm
/// embeddings; pass to [`agglomerative_with`].
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    1.0 - lim_embed::similarity::cosine(a, b)
}

#[cfg(test)]
mod tests;
