//! Merge history and cluster extraction.

/// One merge step of the agglomeration.
///
/// Cluster labels follow the scipy convention: leaves are `0..n`, and the
/// cluster created by merge step `m` is labelled `n + m`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// Label of the first merged cluster.
    pub a: usize,
    /// Label of the second merged cluster.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f32,
    /// Number of leaves in the merged cluster.
    pub size: usize,
}

/// Full agglomeration history over `n` leaves.
///
/// Supports cutting into a requested number of clusters ([`Dendrogram::cut`])
/// or at a distance threshold ([`Dendrogram::cut_distance`]).
#[derive(Debug, Clone)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    pub(crate) fn new(n: usize, merges: Vec<Merge>) -> Self {
        Self { n, merges }
    }

    /// Number of leaves (input points).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the dendrogram has no leaves.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The merge steps, in execution order (ascending distance for
    /// monotone linkages).
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the tree into exactly `k` clusters (clamped to `1..=n`).
    ///
    /// Returns a label in `0..k` per leaf. Labels are canonicalised by
    /// first appearance so the result is deterministic.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        let k = k.clamp(1, self.n.max(1));
        // Apply the first n-k merges; the remaining components are clusters.
        self.labels_after(self.n.saturating_sub(k))
    }

    /// Cuts the tree at a linkage-distance threshold: merges with
    /// `distance <= threshold` are applied.
    pub fn cut_distance(&self, threshold: f32) -> Vec<usize> {
        let applied = self
            .merges
            .iter()
            .take_while(|m| m.distance <= threshold)
            .count();
        self.labels_after(applied)
    }

    /// Number of clusters produced by [`Dendrogram::cut_distance`].
    pub fn cluster_count_at(&self, threshold: f32) -> usize {
        let applied = self
            .merges
            .iter()
            .take_while(|m| m.distance <= threshold)
            .count();
        self.n - applied
    }

    fn labels_after(&self, merge_count: usize) -> Vec<usize> {
        // Union-find over leaves, replaying the first `merge_count` merges.
        let total = self.n + merge_count;
        let mut parent: Vec<usize> = (0..total).collect();

        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }

        for (step, merge) in self.merges.iter().take(merge_count).enumerate() {
            let new_label = self.n + step;
            let ra = find(&mut parent, merge.a);
            let rb = find(&mut parent, merge.b);
            parent[ra] = new_label;
            parent[rb] = new_label;
        }

        // Canonicalise roots into dense labels by first appearance.
        let mut canonical = std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(self.n);
        for leaf in 0..self.n {
            let root = find(&mut parent, leaf);
            let next = canonical.len();
            let label = *canonical.entry(root).or_insert(next);
            labels.push(label);
        }
        labels
    }

    /// Groups leaf indices by cluster for a `k`-cluster cut.
    ///
    /// # Examples
    ///
    /// ```
    /// use lim_cluster::{agglomerative, Linkage};
    /// let pts = vec![vec![0.0], vec![0.1], vec![9.0]];
    /// let groups = agglomerative(&pts, Linkage::Average).groups(2);
    /// assert_eq!(groups.len(), 2);
    /// assert!(groups.iter().any(|g| g == &vec![0, 1]));
    /// ```
    pub fn groups(&self, k: usize) -> Vec<Vec<usize>> {
        let labels = self.cut(k);
        let cluster_count = labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut groups = vec![Vec::new(); cluster_count];
        for (leaf, label) in labels.iter().enumerate() {
            groups[*label].push(leaf);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dendrogram {
        // 4 leaves: merge (0,1) at d=1, (2,3) at d=1.5, then both at d=9.
        Dendrogram::new(
            4,
            vec![
                Merge {
                    a: 0,
                    b: 1,
                    distance: 1.0,
                    size: 2,
                },
                Merge {
                    a: 2,
                    b: 3,
                    distance: 1.5,
                    size: 2,
                },
                Merge {
                    a: 4,
                    b: 5,
                    distance: 9.0,
                    size: 4,
                },
            ],
        )
    }

    #[test]
    fn cut_into_two() {
        assert_eq!(toy().cut(2), vec![0, 0, 1, 1]);
    }

    #[test]
    fn cut_into_one_merges_everything() {
        assert_eq!(toy().cut(1), vec![0, 0, 0, 0]);
    }

    #[test]
    fn cut_into_n_keeps_singletons() {
        assert_eq!(toy().cut(4), vec![0, 1, 2, 3]);
        // k beyond n clamps.
        assert_eq!(toy().cut(99), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cut_distance_thresholds() {
        let d = toy();
        assert_eq!(d.cut_distance(0.5), vec![0, 1, 2, 3]);
        assert_eq!(d.cut_distance(1.2), vec![0, 0, 1, 2]);
        assert_eq!(d.cut_distance(2.0), vec![0, 0, 1, 1]);
        assert_eq!(d.cut_distance(10.0), vec![0, 0, 0, 0]);
        assert_eq!(d.cluster_count_at(2.0), 2);
    }

    #[test]
    fn groups_partition_all_leaves() {
        let groups = toy().groups(2);
        let mut all: Vec<usize> = groups.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }
}
