//! Crate-level behaviour and property tests.

use crate::{agglomerative, agglomerative_with, cosine_distance, silhouette_score, Linkage};
use lim_embed::similarity::euclidean;
use proptest::prelude::*;

#[test]
fn clusters_tool_usage_embeddings_by_cosine() {
    // Miniature of the Level-2 construction: embeddings of augmented
    // queries mentioning tool pairs should cluster by topic under cosine
    // distance.
    let embedder = lim_embed::Embedder::new();
    let queries = [
        "translate the report and open the document viewer",
        "translate this text then show the document",
        "plot the satellite image and detect objects in the scene",
        "detect objects on the satellite map and plot them",
    ];
    let points: Vec<Vec<f32>> = queries
        .iter()
        .map(|q| embedder.embed(q).as_slice().to_vec())
        .collect();
    let labels = agglomerative_with(&points, Linkage::Average, cosine_distance).cut(2);
    assert_eq!(labels[0], labels[1]);
    assert_eq!(labels[2], labels[3]);
    assert_ne!(labels[0], labels[2]);
}

#[test]
fn silhouette_prefers_the_natural_cut() {
    let pts = vec![
        vec![0.0, 0.0],
        vec![0.3, 0.1],
        vec![0.1, 0.2],
        vec![7.0, 7.0],
        vec![7.2, 7.1],
        vec![7.1, 6.9],
    ];
    let dendro = agglomerative(&pts, Linkage::Ward);
    let s2 = silhouette_score(&pts, &dendro.cut(2), euclidean);
    let s3 = silhouette_score(&pts, &dendro.cut(3), euclidean);
    let s5 = silhouette_score(&pts, &dendro.cut(5), euclidean);
    assert!(s2 > s3, "s2={s2} s3={s3}");
    assert!(s2 > s5, "s2={s2} s5={s5}");
}

proptest! {
    /// A k-cut always yields exactly min(k, n) clusters labelled densely.
    #[test]
    fn cut_produces_dense_labels(
        pts in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 2), 1..12),
        k in 1usize..8,
    ) {
        let labels = agglomerative(&pts, Linkage::Average).cut(k);
        prop_assert_eq!(labels.len(), pts.len());
        let expected = k.min(pts.len());
        let max = labels.iter().copied().max().unwrap();
        prop_assert_eq!(max + 1, expected);
        // Dense: every label below max occurs.
        for l in 0..=max {
            prop_assert!(labels.contains(&l));
        }
    }

    /// Merge distances are non-decreasing for the monotone linkages.
    #[test]
    fn merge_distances_monotone(
        pts in prop::collection::vec(prop::collection::vec(-5.0f32..5.0, 3), 2..12),
    ) {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = agglomerative(&pts, linkage);
            let dists: Vec<f32> = d.merges().iter().map(|m| m.distance).collect();
            prop_assert!(
                dists.windows(2).all(|w| w[0] <= w[1] + 1e-4),
                "non-monotone for {}: {:?}", linkage, dists
            );
        }
    }

    /// Cutting at threshold 0 keeps all distinct points separate; cutting at
    /// +inf merges everything.
    #[test]
    fn threshold_extremes(
        pts in prop::collection::vec(prop::collection::vec(0.0f32..10.0, 2), 2..10),
    ) {
        let d = agglomerative(&pts, Linkage::Complete);
        let all = d.cut_distance(f32::INFINITY);
        prop_assert!(all.iter().all(|l| *l == 0));
    }

    /// ROUGE-L f1 is symmetric in precision/recall exchange.
    #[test]
    fn rouge_l_swap_swaps_precision_recall(
        a in "[a-z]{1,6}( [a-z]{1,6}){0,8}",
        b in "[a-z]{1,6}( [a-z]{1,6}){0,8}",
    ) {
        let ab = crate::rouge::rouge_l(&a, &b);
        let ba = crate::rouge::rouge_l(&b, &a);
        prop_assert!((ab.precision - ba.recall).abs() < 1e-6);
        prop_assert!((ab.recall - ba.precision).abs() < 1e-6);
        prop_assert!((ab.f1 - ba.f1).abs() < 1e-6);
    }

    /// ROUGE scores live in [0, 1].
    #[test]
    fn rouge_bounded(
        a in "[a-z ]{0,40}",
        b in "[a-z ]{0,40}",
        n in 1usize..4,
    ) {
        for s in [crate::rouge::rouge_n(&a, &b, n), crate::rouge::rouge_l(&a, &b)] {
            prop_assert!((0.0..=1.0).contains(&s.precision));
            prop_assert!((0.0..=1.0).contains(&s.recall));
            prop_assert!((0.0..=1.0).contains(&s.f1));
        }
    }
}
