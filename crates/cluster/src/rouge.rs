//! ROUGE similarity scores.
//!
//! The paper (after ToolQA) measures the quality of GPT-generated
//! augmentation queries "based on a similarity score (i.e., ROUGE score)"
//! to ensure diverse tool combinations without redundancy. The augmenter in
//! `lim-workloads` uses [`rouge_l`] as that gate: variants too close to the
//! source (near-duplicates) or too far (off-topic) are rejected.

use std::collections::HashMap;

/// Precision / recall / F1 triple returned by the ROUGE variants.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RougeScore {
    /// Fraction of candidate n-grams present in the reference.
    pub precision: f32,
    /// Fraction of reference n-grams present in the candidate.
    pub recall: f32,
    /// Harmonic mean of precision and recall.
    pub f1: f32,
}

impl RougeScore {
    fn from_counts(overlap: usize, candidate_total: usize, reference_total: usize) -> Self {
        let precision = if candidate_total == 0 {
            0.0
        } else {
            overlap as f32 / candidate_total as f32
        };
        let recall = if reference_total == 0 {
            0.0
        } else {
            overlap as f32 / reference_total as f32
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f1,
        }
    }
}

/// ROUGE tokenization: lowercase alphanumeric words, no stemming or
/// stopword removal (matching the reference implementation's defaults).
fn words(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .collect()
}

/// ROUGE-N: n-gram overlap with clipped counts.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use lim_cluster::rouge::rouge_n;
/// let s = rouge_n("the cat sat", "the cat ran", 1);
/// assert!((s.recall - 2.0 / 3.0).abs() < 1e-6);
/// ```
pub fn rouge_n(candidate: &str, reference: &str, n: usize) -> RougeScore {
    assert!(n > 0, "n must be positive");
    let cand = words(candidate);
    let refr = words(reference);
    if cand.len() < n || refr.len() < n {
        return RougeScore::default();
    }
    let mut ref_counts: HashMap<&[String], usize> = HashMap::new();
    for gram in refr.windows(n) {
        *ref_counts.entry(gram).or_insert(0) += 1;
    }
    let mut overlap = 0usize;
    for gram in cand.windows(n) {
        if let Some(c) = ref_counts.get_mut(gram) {
            if *c > 0 {
                *c -= 1;
                overlap += 1;
            }
        }
    }
    RougeScore::from_counts(overlap, cand.len() - n + 1, refr.len() - n + 1)
}

/// ROUGE-L: longest-common-subsequence based score.
///
/// # Examples
///
/// ```
/// use lim_cluster::rouge::rouge_l;
/// let same = rouge_l("plot the captions", "plot the captions");
/// assert!((same.f1 - 1.0).abs() < 1e-6);
/// ```
pub fn rouge_l(candidate: &str, reference: &str) -> RougeScore {
    let cand = words(candidate);
    let refr = words(reference);
    if cand.is_empty() || refr.is_empty() {
        return RougeScore::default();
    }
    let lcs = lcs_len(&cand, &refr);
    RougeScore::from_counts(lcs, cand.len(), refr.len())
}

fn lcs_len(a: &[String], b: &[String]) -> usize {
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for x in a {
        for (j, y) in b.iter().enumerate() {
            cur[j + 1] = if x == y {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_score_one() {
        for f in [
            rouge_l("a b c", "a b c").f1,
            rouge_n("a b c", "a b c", 1).f1,
            rouge_n("a b c", "a b c", 2).f1,
        ] {
            assert!((f - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn disjoint_texts_score_zero() {
        assert_eq!(rouge_l("alpha beta", "gamma delta").f1, 0.0);
        assert_eq!(rouge_n("alpha beta", "gamma delta", 1).f1, 0.0);
    }

    #[test]
    fn rouge1_counts_are_clipped() {
        // "the the the" vs "the": only one overlapping unigram allowed.
        let s = rouge_n("the the the", "the", 1);
        assert!((s.precision - 1.0 / 3.0).abs() < 1e-6);
        assert!((s.recall - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rouge2_needs_adjacent_matches() {
        let s = rouge_n("a b c d", "a c b d", 2);
        // Bigrams of candidate: ab, bc, cd; of reference: ac, cb, bd → 0.
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn rouge_l_respects_order() {
        let in_order = rouge_l("plot captions on map", "plot the captions over a map");
        let shuffled = rouge_l("map on captions plot", "plot the captions over a map");
        assert!(in_order.f1 > shuffled.f1);
    }

    #[test]
    fn empty_and_short_inputs_are_zero() {
        assert_eq!(rouge_l("", "a b").f1, 0.0);
        assert_eq!(rouge_l("a b", "").f1, 0.0);
        assert_eq!(rouge_n("a", "a b c", 2).f1, 0.0);
    }

    #[test]
    fn case_and_punctuation_insensitive() {
        let s = rouge_l("Plot, the Captions!", "plot the captions");
        assert!((s.f1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn permuted_task_scores_in_middle_band() {
        // The augmenter's acceptance band: related-but-not-identical.
        let original = "open the translated document in a browser";
        let variant = "print the translated document on paper";
        let s = rouge_l(variant, original);
        assert!(s.f1 > 0.3 && s.f1 < 0.9, "f1 = {}", s.f1);
    }
}
