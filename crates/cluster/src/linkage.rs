//! Linkage criteria and the Lance–Williams merge loop.

use crate::dendrogram::{Dendrogram, Merge};

/// How the distance between two clusters is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Linkage {
    /// Minimum pairwise distance ("friends of friends"); chains easily.
    Single,
    /// Maximum pairwise distance; produces compact, even clusters.
    Complete,
    /// Unweighted average pairwise distance (UPGMA). scikit-learn's common
    /// default for text embeddings and the behaviour the paper relies on.
    #[default]
    Average,
    /// Ward's minimum-variance criterion (on squared distances).
    Ward,
}

impl std::fmt::Display for Linkage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Linkage::Single => "single",
            Linkage::Complete => "complete",
            Linkage::Average => "average",
            Linkage::Ward => "ward",
        };
        f.write_str(name)
    }
}

/// Runs the merge loop. Internal; called through [`crate::agglomerative_with`].
pub(crate) fn run<F>(points: &[Vec<f32>], linkage: Linkage, distance: F) -> Dendrogram
where
    F: Fn(&[f32], &[f32]) -> f32,
{
    let n = points.len();

    // Pairwise distance matrix. Ward operates on squared distances
    // internally and reports the square root at merge time.
    let mut dist = vec![vec![0.0f32; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = distance(&points[i], &points[j]);
            let d = if linkage == Linkage::Ward { d * d } else { d };
            dist[i][j] = d;
            dist[j][i] = d;
        }
    }

    // active[i]: cluster currently labelled i is alive. Labels 0..n are
    // leaves; each merge m creates label n+m.
    let mut active: Vec<Option<usize>> = (0..n).map(Some).collect(); // maps slot -> cluster label
    let mut sizes = vec![1usize; n];
    let mut merges = Vec::with_capacity(n.saturating_sub(1));

    for step in 0..n.saturating_sub(1) {
        // Find the closest active pair of slots.
        let mut best: Option<(usize, usize, f32)> = None;
        for i in 0..n {
            if active[i].is_none() {
                continue;
            }
            for j in (i + 1)..n {
                if active[j].is_none() {
                    continue;
                }
                let d = dist[i][j];
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let (i, j, d) = best.expect("at least two active clusters remain");

        let (ni, nj) = (sizes[i] as f32, sizes[j] as f32);
        // Update distances from the merged cluster (stored in slot i) to
        // every other active slot k via the Lance–Williams recurrence.
        for k in 0..n {
            if k == i || k == j || active[k].is_none() {
                continue;
            }
            let (dik, djk) = (dist[i][k], dist[j][k]);
            let updated = match linkage {
                Linkage::Single => dik.min(djk),
                Linkage::Complete => dik.max(djk),
                Linkage::Average => (ni * dik + nj * djk) / (ni + nj),
                Linkage::Ward => {
                    let nk = sizes[k] as f32;
                    let total = ni + nj + nk;
                    ((ni + nk) * dik + (nj + nk) * djk - nk * d) / total
                }
            };
            dist[i][k] = updated;
            dist[k][i] = updated;
        }

        let label_a = active[i].expect("slot i active");
        let label_b = active[j].expect("slot j active");
        let merged_size = sizes[i] + sizes[j];
        merges.push(Merge {
            a: label_a,
            b: label_b,
            distance: if linkage == Linkage::Ward {
                d.max(0.0).sqrt()
            } else {
                d
            },
            size: merged_size,
        });

        // Slot i now holds the merged cluster with the new label.
        active[i] = Some(n + step);
        active[j] = None;
        sizes[i] = merged_size;
    }

    Dendrogram::new(n, merges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lim_embed::similarity::euclidean;

    fn line() -> Vec<Vec<f32>> {
        // Points at x = 0, 1, 10: the first merge must join 0 and 1.
        vec![vec![0.0], vec![1.0], vec![10.0]]
    }

    #[test]
    fn first_merge_joins_nearest_pair() {
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let d = run(&line(), linkage, euclidean);
            let first = &d.merges()[0];
            let mut pair = [first.a, first.b];
            pair.sort_unstable();
            assert_eq!(pair, [0, 1], "linkage {linkage}");
        }
    }

    #[test]
    fn merge_count_is_n_minus_one() {
        let d = run(&line(), Linkage::Average, euclidean);
        assert_eq!(d.merges().len(), 2);
    }

    #[test]
    fn single_vs_complete_differ_on_chains() {
        // A chain 0-1-2-3 spaced by 1.0, plus an outlier; single linkage
        // chains the whole line before absorbing the outlier.
        let pts = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![100.0]];
        let single = run(&pts, Linkage::Single, euclidean);
        // Final merge distance for single linkage is the gap to the outlier.
        let last = single.merges().last().unwrap();
        assert!((last.distance - 97.0).abs() < 1e-3);
        let complete = run(&pts, Linkage::Complete, euclidean);
        let last_c = complete.merges().last().unwrap();
        assert!(last_c.distance >= 97.0);
    }

    #[test]
    fn ward_distance_is_monotone_on_blobs() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.2, 0.0],
            vec![8.0, 8.0],
            vec![8.2, 8.0],
        ];
        let d = run(&pts, Linkage::Ward, euclidean);
        let dists: Vec<f32> = d.merges().iter().map(|m| m.distance).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1] + 1e-5));
    }

    #[test]
    fn singleton_input_yields_empty_dendrogram() {
        let d = run(&[vec![1.0]], Linkage::Average, euclidean);
        assert!(d.merges().is_empty());
        assert_eq!(d.cut(1), vec![0]);
    }
}
