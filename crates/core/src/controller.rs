//! The online Tool Controller (§III-C).

use lim_vecstore::VectorIndex;

use crate::levels::SearchLevels;

/// Which Search Level the controller committed to for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchLevel {
    /// Level 1 — individual tools.
    Individual,
    /// Level 2 — tool clusters.
    Cluster,
    /// Level 3 — the entire tool set (vanilla function calling).
    Full,
}

impl std::fmt::Display for SearchLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SearchLevel::Individual => "level-1",
            SearchLevel::Cluster => "level-2",
            SearchLevel::Full => "level-3",
        };
        f.write_str(name)
    }
}

/// Controller tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Top-k retrieved per recommendation against each level (the paper
    /// evaluates k = 3 and k = 5).
    pub k: usize,
    /// Confidence floor below which the controller falls back to Level 3.
    /// Compared against the mean (over recommendations) of each level's
    /// *best-match* similarity. The paper uses 0.5 with MPNet embeddings;
    /// the default here is calibrated to this workspace's hashed encoder,
    /// whose cosine scale for related-but-differently-worded text sits
    /// lower.
    pub fallback_threshold: f32,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            k: 3,
            fallback_threshold: 0.30,
        }
    }
}

impl ControllerConfig {
    /// Config with a given `k` and the default threshold.
    pub fn with_k(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }
}

/// The controller's decision for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolSelection {
    /// Level the controller committed to.
    pub level: SearchLevel,
    /// Registry indices of the tools to offer the agent.
    pub tool_indices: Vec<usize>,
    /// Mean top-k similarity against Level 1.
    pub level1_score: f32,
    /// Mean top-k similarity against Level 2.
    pub level2_score: f32,
}

/// Runs k-NN arbitration between the search levels.
#[derive(Debug, Clone)]
pub struct ToolController<'a> {
    levels: &'a SearchLevels,
    config: ControllerConfig,
}

impl<'a> ToolController<'a> {
    /// Creates a controller over prebuilt levels.
    pub fn new(levels: &'a SearchLevels, config: ControllerConfig) -> Self {
        Self { levels, config }
    }

    /// The active configuration.
    pub fn config(&self) -> ControllerConfig {
        self.config
    }

    /// Selects the tools for a query given the recommender's "ideal tool"
    /// descriptions.
    ///
    /// Each recommendation (embedded together with the user task, as the
    /// paper's `Ẽ` construction prescribes) is searched against both
    /// levels; the level with the higher mean top-k similarity wins. If
    /// both means fall below the confidence threshold the controller
    /// defaults to presenting all tools (Level 3).
    pub fn select(&self, query: &str, recommendations: &[String]) -> ToolSelection {
        let embedder = self.levels.embedder();
        let contexts: Vec<lim_embed::Embedding> = recommendations
            .iter()
            .map(|rec| embedder.embed_with_context(query, rec))
            .collect();
        self.select_embedded(&contexts)
    }

    /// [`ToolController::select`] with the `Ẽ` context embeddings already
    /// computed — the entry point for callers that cache them (the serving
    /// engine's query-embedding cache feeds this directly, skipping the
    /// encoder on a hit).
    pub fn select_embedded(&self, contexts: &[lim_embed::Embedding]) -> ToolSelection {
        if contexts.is_empty() {
            return self.full_selection(0.0, 0.0);
        }
        let k = self.config.k.max(1);

        let mut l1_best = Vec::new();
        let mut l1_tools: Vec<usize> = Vec::new();
        let mut l2_best = Vec::new();
        let mut l2_clusters: Vec<(usize, f32)> = Vec::new();

        for embedding in contexts {
            let l1_hits = self.levels.tool_index().search(embedding.as_slice(), k);
            if let Some(top) = l1_hits.first() {
                l1_best.push(top.score);
            }
            for hit in l1_hits {
                l1_tools.push(hit.id as usize);
            }
            let l2_hits = self.levels.cluster_index().search(embedding.as_slice(), k);
            if let Some(top) = l2_hits.first() {
                l2_best.push(top.score);
            }
            for hit in l2_hits {
                l2_clusters.push((hit.id as usize, hit.score));
            }
        }

        // Arbitration uses each level's best match per recommendation —
        // robust to the long similarity tail of unrelated catalog entries
        // that a plain mean over all k hits would drag down.
        let level1_score = mean(&l1_best);
        let level2_score = mean(&l2_best);

        if level1_score < self.config.fallback_threshold
            && level2_score < self.config.fallback_threshold
        {
            return self.full_selection(level1_score, level2_score);
        }

        if level1_score >= level2_score {
            let mut tools = l1_tools;
            tools.sort_unstable();
            tools.dedup();
            ToolSelection {
                level: SearchLevel::Individual,
                tool_indices: tools,
                level1_score,
                level2_score,
            }
        } else {
            // Union the members of the best k clusters across all
            // recommendations (deduplicated, best score kept).
            l2_clusters.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
            let mut picked = Vec::new();
            for (cluster_id, _) in l2_clusters {
                if !picked.contains(&cluster_id) {
                    picked.push(cluster_id);
                }
                if picked.len() == k {
                    break;
                }
            }
            // Stale clusters may still list tools retired since the last
            // refresh; a retired tool is never offered.
            let mut tools: Vec<usize> = picked
                .iter()
                .flat_map(|c| self.levels.clusters()[*c].tool_indices.iter().copied())
                .filter(|t| self.levels.is_live(*t))
                .collect();
            tools.sort_unstable();
            tools.dedup();
            ToolSelection {
                level: SearchLevel::Cluster,
                tool_indices: tools,
                level1_score,
                level2_score,
            }
        }
    }

    /// The Level-3 downgrade: the full catalog with zero selection work.
    ///
    /// Superseded by the [`ServicePolicy`](crate::ServicePolicy) actuation
    /// surface: `controller.actuate(ServiceLevel::Floor, &[])` produces
    /// the identical selection, and is the one runtime entry point shared
    /// by the admission shed path and the energy governor.
    #[deprecated(note = "use ServicePolicy::actuate(ServiceLevel::Floor, &[]) instead")]
    pub fn downgrade_to_full(&self) -> ToolSelection {
        self.floor_selection()
    }

    /// The floor rung's selection: every catalog tool, scoreless.
    pub(crate) fn floor_selection(&self) -> ToolSelection {
        self.full_selection(0.0, 0.0)
    }

    fn full_selection(&self, level1_score: f32, level2_score: f32) -> ToolSelection {
        ToolSelection {
            level: SearchLevel::Full,
            tool_indices: self.levels.full_level(),
            level1_score,
            level2_score,
        }
    }
}

fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f32>() / values.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::SearchLevels;
    use lim_workloads::{bfcl, geoengine};

    #[test]
    fn empty_recommendations_fall_back_to_full() {
        let w = bfcl(1, 30);
        let levels = SearchLevels::build(&w);
        let c = ToolController::new(&levels, ControllerConfig::default());
        let s = c.select("anything", &[]);
        assert_eq!(s.level, SearchLevel::Full);
        assert_eq!(s.tool_indices.len(), 51);
    }

    #[test]
    fn gibberish_recommendations_trigger_confidence_fallback() {
        let w = bfcl(1, 30);
        let levels = SearchLevels::build(&w);
        let c = ToolController::new(&levels, ControllerConfig::default());
        let s = c.select(
            "zzz qqq xxx",
            &["wqxyz plomf grunk vexqi".into(), "blorp znarf quux".into()],
        );
        assert_eq!(
            s.level,
            SearchLevel::Full,
            "scores l1={} l2={}",
            s.level1_score,
            s.level2_score
        );
    }

    #[test]
    fn weather_recommendation_selects_few_relevant_tools() {
        let w = bfcl(2, 30);
        let levels = SearchLevels::build(&w);
        let c = ToolController::new(&levels, ControllerConfig::with_k(3));
        let s = c.select(
            "What's the weather like in Paris right now?",
            &["fetches the current weather conditions for a city".into()],
        );
        assert_ne!(s.level, SearchLevel::Full);
        assert!(s.tool_indices.len() <= 3 * 3);
        let gold = w.registry.index_of("current_weather").unwrap();
        assert!(s.tool_indices.contains(&gold), "gold tool not retrieved");
    }

    #[test]
    fn selection_k_bounds_level1_size() {
        let w = bfcl(2, 30);
        let levels = SearchLevels::build(&w);
        for k in [1, 3, 5] {
            let c = ToolController::new(&levels, ControllerConfig::with_k(k));
            let s = c.select(
                "Convert 100 USD to EUR",
                &["converts money between two currencies".into()],
            );
            if s.level == SearchLevel::Individual {
                assert!(s.tool_indices.len() <= k);
            }
        }
    }

    #[test]
    fn geo_multi_step_recommendations_prefer_clusters() {
        // §IV: "in BFCL Search Level 1 yields higher tool-matching scores,
        // whereas for GeoEngine it is Search Level 2". Use the actual
        // recommender output for a vqa-mapping query, as the pipeline does.
        let w = geoengine(3, 60);
        let levels = SearchLevels::build(&w);
        let c = ToolController::new(&levels, ControllerConfig::with_k(3));
        let model = lim_llm::ModelProfile::by_name("hermes2-pro-8b").unwrap();
        let query = w
            .queries
            .iter()
            .find(|q| q.category == "vqa-mapping")
            .expect("vqa-mapping query exists");
        let gold_descs: Vec<String> = query
            .steps
            .iter()
            .map(|s| {
                w.registry
                    .get_by_name(&s.tool)
                    .unwrap()
                    .description()
                    .to_owned()
            })
            .collect();
        let gold_refs: Vec<&str> = gold_descs.iter().map(String::as_str).collect();

        // Aggregate over seeds: Level 2 must win for the clear majority of
        // recommender noise draws, and cover the gold chain when it does.
        let mut cluster_wins = 0;
        let mut covered = 0;
        let runs = 20;
        for seed in 0..runs {
            let recs = lim_llm::recommender::recommend_descriptions(
                &model,
                lim_llm::Quant::Q8_0,
                &query.text,
                &gold_refs,
                seed,
            );
            let s = c.select(&query.text, &recs);
            if s.level == SearchLevel::Cluster {
                cluster_wins += 1;
                let all_covered = query.steps.iter().all(|step| {
                    let idx = w.registry.index_of(&step.tool).unwrap();
                    s.tool_indices.contains(&idx)
                });
                if all_covered {
                    covered += 1;
                }
                assert!(
                    s.tool_indices.len() < 35,
                    "{} tools selected",
                    s.tool_indices.len()
                );
            }
        }
        assert!(
            cluster_wins * 2 > runs,
            "Level 2 won only {cluster_wins}/{runs}"
        );
        assert!(
            covered * 4 >= cluster_wins * 3,
            "chain covered {covered}/{cluster_wins}"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn downgrade_to_full_offers_the_whole_catalog_scoreless() {
        // The deprecated shim must keep its exact historical behaviour
        // while call sites migrate to ServicePolicy::actuate.
        let w = bfcl(1, 30);
        let levels = SearchLevels::build(&w);
        let c = ToolController::new(&levels, ControllerConfig::default());
        let s = c.downgrade_to_full();
        assert_eq!(s.level, SearchLevel::Full);
        assert_eq!(s.tool_indices, levels.full_level());
        assert_eq!((s.level1_score, s.level2_score), (0.0, 0.0));
    }

    #[test]
    fn selection_is_deterministic() {
        let w = geoengine(4, 40);
        let levels = SearchLevels::build(&w);
        let c = ToolController::new(&levels, ControllerConfig::default());
        let recs = vec!["detects ships in maritime imagery".to_string()];
        assert_eq!(c.select("find ships", &recs), c.select("find ships", &recs));
    }

    #[test]
    fn select_embedded_matches_select() {
        // The serving engine caches the `Ẽ` embeddings and calls
        // `select_embedded` directly; the two entry points must agree.
        let w = bfcl(5, 30);
        let levels = SearchLevels::build(&w);
        let c = ToolController::new(&levels, ControllerConfig::with_k(3));
        let query = "What's the weather like in Paris right now?";
        let recs = vec!["fetches the current weather conditions for a city".to_string()];
        let contexts: Vec<lim_embed::Embedding> = recs
            .iter()
            .map(|r| levels.embedder().embed_with_context(query, r))
            .collect();
        assert_eq!(c.select(query, &recs), c.select_embedded(&contexts));
    }
}
