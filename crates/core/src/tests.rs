//! Crate-level behaviour tests: the paper's headline claims, end to end.

use crate::{evaluate, normalize_against, Pipeline, Policy, SearchLevels};
use lim_llm::{ModelProfile, Quant};
use lim_workloads::{bfcl, geoengine};

/// Shared fixture: building levels is the expensive part, do it once.
fn fixtures() -> (
    lim_workloads::Workload,
    SearchLevels,
    lim_workloads::Workload,
    SearchLevels,
) {
    let b = bfcl(21, 60);
    let bl = SearchLevels::build(&b);
    let g = geoengine(21, 60);
    let gl = SearchLevels::build(&g);
    (b, bl, g, gl)
}

#[test]
fn headline_lim_beats_default_on_bfcl_for_a_capable_model() {
    let (b, bl, _, _) = fixtures();
    let model = ModelProfile::by_name("hermes2-pro-8b").unwrap();
    let pipeline = Pipeline::new(&b, &bl, &model, Quant::Q4KM);
    let default = evaluate(&pipeline, Policy::Default);
    let lim = evaluate(&pipeline, Policy::less_is_more(3));
    assert!(
        lim.success_rate > default.success_rate + 0.08,
        "LiM {:.3} vs default {:.3}",
        lim.success_rate,
        default.success_rate
    );
    assert!(
        lim.tool_accuracy > default.tool_accuracy,
        "LiM acc {:.3} vs default acc {:.3}",
        lim.tool_accuracy,
        default.tool_accuracy
    );
    let (time, power) = normalize_against(&default, &lim);
    assert!(time < 0.6, "normalized time {time:.3}");
    assert!(power < 1.0, "normalized power {power:.3}");
}

#[test]
fn bfcl_queries_prefer_level_1_geo_queries_prefer_level_2() {
    // §IV: "in BFCL Search Level 1 yields higher tool-matching scores,
    // whereas for GeoEngine it is Search Level 2".
    let (b, bl, g, gl) = fixtures();
    let model = ModelProfile::by_name("hermes2-pro-8b").unwrap();

    let bfcl_metrics = evaluate(
        &Pipeline::new(&b, &bl, &model, Quant::Q8_0),
        Policy::less_is_more(3),
    );
    assert!(
        bfcl_metrics.level1_share > bfcl_metrics.level2_share,
        "BFCL: L1 {:.2} vs L2 {:.2}",
        bfcl_metrics.level1_share,
        bfcl_metrics.level2_share
    );

    let geo_metrics = evaluate(
        &Pipeline::new(&g, &gl, &model, Quant::Q8_0),
        Policy::less_is_more(3),
    );
    assert!(
        geo_metrics.level2_share > geo_metrics.level1_share,
        "Geo: L1 {:.2} vs L2 {:.2}",
        geo_metrics.level1_share,
        geo_metrics.level2_share
    );
}

#[test]
fn gorilla_sits_between_default_and_lim_on_bfcl() {
    let (b, bl, _, _) = fixtures();
    let model = ModelProfile::by_name("hermes2-pro-8b").unwrap();
    let pipeline = Pipeline::new(&b, &bl, &model, Quant::Q4KM);
    let default = evaluate(&pipeline, Policy::Default);
    let gorilla = evaluate(&pipeline, Policy::Gorilla { k: 3 });
    let lim = evaluate(&pipeline, Policy::less_is_more(3));
    assert!(
        gorilla.success_rate > default.success_rate,
        "gorilla {:.3} vs default {:.3}",
        gorilla.success_rate,
        default.success_rate
    );
    assert!(
        lim.success_rate >= gorilla.success_rate,
        "lim {:.3} vs gorilla {:.3}",
        lim.success_rate,
        gorilla.success_rate
    );
}

#[test]
fn gorilla_fails_to_help_on_sequential_geoengine() {
    // §IV: "Gorilla struggled to improve the success rate in most cases as
    // it only checks tool similarity, while GeoEngine requires sequential
    // function calls".
    let (_, _, g, gl) = fixtures();
    let model = ModelProfile::by_name("llama3.1-8b").unwrap();
    let pipeline = Pipeline::new(&g, &gl, &model, Quant::Q4KM);
    let default = evaluate(&pipeline, Policy::Default);
    let gorilla = evaluate(&pipeline, Policy::Gorilla { k: 3 });
    let lim = evaluate(&pipeline, Policy::less_is_more(3));
    assert!(
        gorilla.success_rate <= default.success_rate + 0.02,
        "gorilla should not help on chains: {:.3} vs {:.3}",
        gorilla.success_rate,
        default.success_rate
    );
    assert!(
        lim.success_rate > gorilla.success_rate,
        "lim {:.3} vs gorilla {:.3}",
        lim.success_rate,
        gorilla.success_rate
    );
}

#[test]
fn mistral_gets_speed_but_not_accuracy_from_lim() {
    // §IV (BFCL): "for Mistral-8b, even though the optimizations did not
    // result in any gain in success rate and tool accuracy, our method
    // resulted in a 77% reduction in execution time".
    let (b, bl, _, _) = fixtures();
    let model = ModelProfile::by_name("mistral-8b").unwrap();
    let pipeline = Pipeline::new(&b, &bl, &model, Quant::Q4KM);
    let default = evaluate(&pipeline, Policy::Default);
    let lim = evaluate(&pipeline, Policy::less_is_more(3));
    assert!(
        (lim.success_rate - default.success_rate).abs() < 0.12,
        "Mistral success should be flat: {:.3} vs {:.3}",
        lim.success_rate,
        default.success_rate
    );
    let (time, _) = normalize_against(&default, &lim);
    assert!(time < 0.6, "Mistral normalized time {time:.3}");
}

#[test]
fn quantized_default_underperforms_f16_default() {
    // Table I's premise, on the full pipeline rather than the analytic
    // model.
    let (b, bl, _, _) = fixtures();
    let model = ModelProfile::by_name("llama3.1-8b").unwrap();
    let pipeline_f16 = Pipeline::new(&b, &bl, &model, Quant::F16);
    let pipeline_q4 = Pipeline::new(&b, &bl, &model, Quant::Q4_0);
    let f16 = evaluate(&pipeline_f16, Policy::Default);
    let q4 = evaluate(&pipeline_q4, Policy::Default);
    assert!(
        f16.success_rate > q4.success_rate + 0.2,
        "f16 {:.3} vs q4_0 {:.3}",
        f16.success_rate,
        q4.success_rate
    );
}

#[test]
fn fallback_rate_is_bounded_and_level3_reachable() {
    // On the standard catalogs the recommender text plus the appended
    // query makes top-k retrieval essentially always contain the gold
    // tool, so the runtime-error fallback cannot be observed there. To
    // prove the §III-C mechanism end to end, build a deliberately
    // confusable catalog: near-duplicate tool descriptions whose single
    // discriminating word the noisy recommender frequently drops, while
    // the query text itself never names it. A weak model with k = 1 then
    // misses the gold tool often enough that some runs signal an error
    // and reach the Level-3 fallback — but not a majority (which would
    // mean the controller is useless).
    use lim_workloads::{GoldStep, Query, Workload, WorkloadKind};

    const LANGS: [(&str, &str); 12] = [
        ("french", "Paris"),
        ("german", "Berlin"),
        ("spanish", "Madrid"),
        ("italian", "Rome"),
        ("polish", "Warsaw"),
        ("dutch", "Amsterdam"),
        ("swedish", "Stockholm"),
        ("finnish", "Helsinki"),
        ("greek", "Athens"),
        ("czech", "Prague"),
        ("danish", "Copenhagen"),
        ("hungarian", "Budapest"),
    ];
    let specs = LANGS.iter().map(|(lang, _)| {
        lim_tools::ToolSpec::builder(format!("translate_{lang}"))
            .description(format!(
                "translates the supplied text document into {lang} preserving formatting"
            ))
            .category("translation")
            .build()
    });
    let registry = lim_tools::ToolRegistry::from_specs(specs).expect("unique names");
    let queries: Vec<Query> = LANGS
        .iter()
        .enumerate()
        .flat_map(|(i, (lang, city))| {
            (0..4).map(move |rep| Query {
                id: (i * 4 + rep) as u64,
                text: format!("translate this document for my colleague in {city} draft {rep}"),
                category: "translation".into(),
                steps: vec![GoldStep {
                    tool: format!("translate_{lang}"),
                    args: lim_json::Value::object::<&str, _>([]),
                }],
            })
        })
        .collect();
    let workload = Workload {
        name: "confusable",
        kind: WorkloadKind::SingleCall,
        registry,
        queries,
        // No training queries: no Level-2 clusters, so every decision is
        // the Level-1 shortlist or a confidence fallback.
        train_queries: Vec::new(),
    };
    let levels = SearchLevels::build(&workload);
    let model = ModelProfile::by_name("mistral-8b").unwrap();
    // Disable the confidence fallback (threshold 0): this test is about
    // the *runtime-error* fallback, which only fires after the controller
    // confidently commits to a shortlist that lacks the gold tool.
    let metrics = evaluate(
        &Pipeline::new(&workload, &levels, &model, Quant::Q4_0),
        Policy::LessIsMore {
            config: crate::ControllerConfig {
                k: 1,
                fallback_threshold: 0.0,
            },
        },
    );
    assert!(
        metrics.fallback_rate > 0.0,
        "no fallbacks on the confusable catalog"
    );
    assert!(
        metrics.fallback_rate < 0.6,
        "fallback {:.2}",
        metrics.fallback_rate
    );
    // The fallback is what makes Level 3 reachable at runtime.
    assert!(metrics.level3_share + metrics.fallback_rate > 0.0);
}
