//! Crate-level behaviour tests: the paper's headline claims, end to end.

use crate::{evaluate, normalize_against, Pipeline, Policy, SearchLevels};
use lim_llm::{ModelProfile, Quant};
use lim_workloads::{bfcl, geoengine};

/// Shared fixture: building levels is the expensive part, do it once.
fn fixtures() -> (lim_workloads::Workload, SearchLevels, lim_workloads::Workload, SearchLevels) {
    let b = bfcl(21, 60);
    let bl = SearchLevels::build(&b);
    let g = geoengine(21, 60);
    let gl = SearchLevels::build(&g);
    (b, bl, g, gl)
}

#[test]
fn headline_lim_beats_default_on_bfcl_for_a_capable_model() {
    let (b, bl, _, _) = fixtures();
    let model = ModelProfile::by_name("hermes2-pro-8b").unwrap();
    let pipeline = Pipeline::new(&b, &bl, &model, Quant::Q4KM);
    let default = evaluate(&pipeline, Policy::Default);
    let lim = evaluate(&pipeline, Policy::less_is_more(3));
    assert!(
        lim.success_rate > default.success_rate + 0.08,
        "LiM {:.3} vs default {:.3}",
        lim.success_rate,
        default.success_rate
    );
    assert!(
        lim.tool_accuracy > default.tool_accuracy,
        "LiM acc {:.3} vs default acc {:.3}",
        lim.tool_accuracy,
        default.tool_accuracy
    );
    let (time, power) = normalize_against(&default, &lim);
    assert!(time < 0.6, "normalized time {time:.3}");
    assert!(power < 1.0, "normalized power {power:.3}");
}

#[test]
fn bfcl_queries_prefer_level_1_geo_queries_prefer_level_2() {
    // §IV: "in BFCL Search Level 1 yields higher tool-matching scores,
    // whereas for GeoEngine it is Search Level 2".
    let (b, bl, g, gl) = fixtures();
    let model = ModelProfile::by_name("hermes2-pro-8b").unwrap();

    let bfcl_metrics = evaluate(
        &Pipeline::new(&b, &bl, &model, Quant::Q8_0),
        Policy::less_is_more(3),
    );
    assert!(
        bfcl_metrics.level1_share > bfcl_metrics.level2_share,
        "BFCL: L1 {:.2} vs L2 {:.2}",
        bfcl_metrics.level1_share,
        bfcl_metrics.level2_share
    );

    let geo_metrics = evaluate(
        &Pipeline::new(&g, &gl, &model, Quant::Q8_0),
        Policy::less_is_more(3),
    );
    assert!(
        geo_metrics.level2_share > geo_metrics.level1_share,
        "Geo: L1 {:.2} vs L2 {:.2}",
        geo_metrics.level1_share,
        geo_metrics.level2_share
    );
}

#[test]
fn gorilla_sits_between_default_and_lim_on_bfcl() {
    let (b, bl, _, _) = fixtures();
    let model = ModelProfile::by_name("hermes2-pro-8b").unwrap();
    let pipeline = Pipeline::new(&b, &bl, &model, Quant::Q4KM);
    let default = evaluate(&pipeline, Policy::Default);
    let gorilla = evaluate(&pipeline, Policy::Gorilla { k: 3 });
    let lim = evaluate(&pipeline, Policy::less_is_more(3));
    assert!(
        gorilla.success_rate > default.success_rate,
        "gorilla {:.3} vs default {:.3}",
        gorilla.success_rate,
        default.success_rate
    );
    assert!(
        lim.success_rate >= gorilla.success_rate,
        "lim {:.3} vs gorilla {:.3}",
        lim.success_rate,
        gorilla.success_rate
    );
}

#[test]
fn gorilla_fails_to_help_on_sequential_geoengine() {
    // §IV: "Gorilla struggled to improve the success rate in most cases as
    // it only checks tool similarity, while GeoEngine requires sequential
    // function calls".
    let (_, _, g, gl) = fixtures();
    let model = ModelProfile::by_name("llama3.1-8b").unwrap();
    let pipeline = Pipeline::new(&g, &gl, &model, Quant::Q4KM);
    let default = evaluate(&pipeline, Policy::Default);
    let gorilla = evaluate(&pipeline, Policy::Gorilla { k: 3 });
    let lim = evaluate(&pipeline, Policy::less_is_more(3));
    assert!(
        gorilla.success_rate <= default.success_rate + 0.02,
        "gorilla should not help on chains: {:.3} vs {:.3}",
        gorilla.success_rate,
        default.success_rate
    );
    assert!(
        lim.success_rate > gorilla.success_rate,
        "lim {:.3} vs gorilla {:.3}",
        lim.success_rate,
        gorilla.success_rate
    );
}

#[test]
fn mistral_gets_speed_but_not_accuracy_from_lim() {
    // §IV (BFCL): "for Mistral-8b, even though the optimizations did not
    // result in any gain in success rate and tool accuracy, our method
    // resulted in a 77% reduction in execution time".
    let (b, bl, _, _) = fixtures();
    let model = ModelProfile::by_name("mistral-8b").unwrap();
    let pipeline = Pipeline::new(&b, &bl, &model, Quant::Q4KM);
    let default = evaluate(&pipeline, Policy::Default);
    let lim = evaluate(&pipeline, Policy::less_is_more(3));
    assert!(
        (lim.success_rate - default.success_rate).abs() < 0.12,
        "Mistral success should be flat: {:.3} vs {:.3}",
        lim.success_rate,
        default.success_rate
    );
    let (time, _) = normalize_against(&default, &lim);
    assert!(time < 0.6, "Mistral normalized time {time:.3}");
}

#[test]
fn quantized_default_underperforms_f16_default() {
    // Table I's premise, on the full pipeline rather than the analytic
    // model.
    let (b, bl, _, _) = fixtures();
    let model = ModelProfile::by_name("llama3.1-8b").unwrap();
    let pipeline_f16 = Pipeline::new(&b, &bl, &model, Quant::F16);
    let pipeline_q4 = Pipeline::new(&b, &bl, &model, Quant::Q4_0);
    let f16 = evaluate(&pipeline_f16, Policy::Default);
    let q4 = evaluate(&pipeline_q4, Policy::Default);
    assert!(
        f16.success_rate > q4.success_rate + 0.2,
        "f16 {:.3} vs q4_0 {:.3}",
        f16.success_rate,
        q4.success_rate
    );
}

#[test]
fn fallback_rate_is_bounded_and_level3_reachable() {
    // A weak model with noisy recommendations occasionally misses the
    // gold tool in its Level-1 shortlist; some of those runs must reach
    // the error fallback — but not a majority (which would mean the
    // controller is useless).
    let (b, bl, g, gl) = fixtures();
    let model = ModelProfile::by_name("mistral-8b").unwrap();
    let bfcl_lim = evaluate(
        &Pipeline::new(&b, &bl, &model, Quant::Q4_0),
        Policy::less_is_more(3),
    );
    let geo_lim = evaluate(
        &Pipeline::new(&g, &gl, &model, Quant::Q4_0),
        Policy::less_is_more(3),
    );
    let total_fallback = bfcl_lim.fallback_rate + geo_lim.fallback_rate;
    assert!(total_fallback > 0.0, "no fallbacks on either benchmark");
    assert!(bfcl_lim.fallback_rate < 0.6, "bfcl fallback {:.2}", bfcl_lim.fallback_rate);
    assert!(geo_lim.fallback_rate < 0.6, "geo fallback {:.2}", geo_lim.fallback_rate);
}
