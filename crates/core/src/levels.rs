//! Offline construction of the three Search Levels (§III-A).

use lim_cluster::{agglomerative_with, cosine_distance, silhouette_score, Linkage};
use lim_embed::{Embedder, Embedding, IdfModel};
use lim_vecstore::{
    FlatIndex, HnswIndex, HnswParams, IvfIndex, IvfParams, Metric, Neighbor, VectorIndex,
};
use lim_workloads::augment::{augment, AugmentConfig};
use lim_workloads::Workload;

/// Which vector-index backend Level 1 is built over.
///
/// Flat is exact and the right default at paper scale (51 / 46 tools);
/// IVF and HNSW trade a bounded recall loss for sub-linear scans, which
/// is what keeps dispatch fast at 10k–100k-tool catalog scale.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum IndexSpec {
    /// Exhaustive exact scan ([`FlatIndex`]).
    #[default]
    Flat,
    /// Inverted-file probed scan ([`IvfIndex`]).
    Ivf(IvfParams),
    /// Navigable small-world graph ([`HnswIndex`]).
    Hnsw(HnswParams),
}

impl IndexSpec {
    /// The serialization kind tag this spec builds (`"flat"` / `"ivf"` /
    /// `"hnsw"`, matching `lim_vecstore::serial`).
    pub fn kind(&self) -> &'static str {
        match self {
            IndexSpec::Flat => "flat",
            IndexSpec::Ivf(_) => "ivf",
            IndexSpec::Hnsw(_) => "hnsw",
        }
    }
}

/// The Level-1 index, whichever backend it was built with.
///
/// Dispatches [`VectorIndex`] statically over the three backends so the
/// controller's hot k-NN path stays monomorphic (no `Box<dyn>` per query).
#[derive(Debug, Clone)]
pub enum ToolIndex {
    /// Exhaustive exact scan.
    Flat(FlatIndex),
    /// Inverted-file probed scan.
    Ivf(IvfIndex),
    /// Navigable small-world graph.
    Hnsw(HnswIndex),
}

impl ToolIndex {
    /// The serialization kind tag (`"flat"` / `"ivf"` / `"hnsw"`).
    pub fn kind(&self) -> &'static str {
        match self {
            ToolIndex::Flat(_) => "flat",
            ToolIndex::Ivf(_) => "ivf",
            ToolIndex::Hnsw(_) => "hnsw",
        }
    }

    /// Iterates over *live* `(id, vector)` pairs (tombstoned entries are
    /// skipped). Flat and HNSW yield insertion order; IVF yields cell
    /// order (its on-disk order).
    pub fn iter(&self) -> Box<dyn Iterator<Item = (u64, &[f32])> + '_> {
        match self {
            ToolIndex::Flat(index) => Box::new(index.iter()),
            ToolIndex::Ivf(index) => Box::new(
                index
                    .cells()
                    .iter()
                    .flatten()
                    .filter(|(id, _)| !index.tombstones().contains(id))
                    .map(|(id, v)| (*id, v.as_slice())),
            ),
            ToolIndex::Hnsw(index) => Box::new(index.iter()),
        }
    }

    /// Inserts one vector, whichever backend: Flat appends, IVF assigns to
    /// its nearest trained centroid, HNSW wires the node into the graph
    /// exactly as a batch build would have.
    pub fn add(&mut self, id: u64, vector: &[f32]) -> Result<(), lim_vecstore::IndexError> {
        match self {
            ToolIndex::Flat(index) => index.add(id, vector),
            ToolIndex::Ivf(index) => index.add(id, vector),
            ToolIndex::Hnsw(index) => index.add(id, vector),
        }
    }

    /// Tombstones one live id. Returns `true` when the removal tripped the
    /// backend's compaction threshold (see `lim_vecstore::compaction_due`).
    pub fn remove(&mut self, id: u64) -> Result<bool, lim_vecstore::IndexError> {
        match self {
            ToolIndex::Flat(index) => index.remove(id),
            ToolIndex::Ivf(index) => index.remove(id),
            ToolIndex::Hnsw(index) => index.remove(id),
        }
    }

    /// Currently tombstoned ids, in removal order.
    pub fn tombstones(&self) -> &[u64] {
        match self {
            ToolIndex::Flat(index) => index.tombstones(),
            ToolIndex::Ivf(index) => index.tombstones(),
            ToolIndex::Hnsw(index) => index.tombstones(),
        }
    }

    /// Searches and also reports how many vector-distance evaluations the
    /// query cost — the machine-independent latency proxy the ann bench
    /// gates on.
    pub fn search_with_stats(&self, query: &[f32], k: usize) -> (Vec<Neighbor>, usize) {
        match self {
            ToolIndex::Flat(index) => index.search_with_stats(query, k),
            ToolIndex::Ivf(index) => index.search_with_stats(query, k),
            ToolIndex::Hnsw(index) => index.search_with_stats(query, k),
        }
    }
}

impl VectorIndex for ToolIndex {
    fn len(&self) -> usize {
        match self {
            ToolIndex::Flat(index) => index.len(),
            ToolIndex::Ivf(index) => index.len(),
            ToolIndex::Hnsw(index) => index.len(),
        }
    }

    fn dim(&self) -> usize {
        match self {
            ToolIndex::Flat(index) => index.dim(),
            ToolIndex::Ivf(index) => index.dim(),
            ToolIndex::Hnsw(index) => index.dim(),
        }
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        match self {
            ToolIndex::Flat(index) => index.search(query, k),
            ToolIndex::Ivf(index) => index.search(query, k),
            ToolIndex::Hnsw(index) => index.search(query, k),
        }
    }
}

/// One Level-2 tool cluster: a centroid in the augmented latent space `Ã`
/// plus the indices of the tools its member queries co-use.
#[derive(Debug, Clone)]
pub struct ToolCluster {
    /// Cluster id (the vector-store id of its centroid).
    pub id: usize,
    /// Registry indices of the cluster's tools.
    pub tool_indices: Vec<usize>,
    /// Centroid embedding of the member queries.
    pub centroid: Embedding,
}

/// Tunables for the offline build.
#[derive(Debug, Clone)]
pub struct LevelsConfig {
    /// Augmentation settings (GPT-4-substitute; paper samples 10 queries
    /// per category).
    pub augment: AugmentConfig,
    /// Candidate cluster counts evaluated by silhouette score.
    pub min_clusters: usize,
    /// Upper bound of the candidate range.
    pub max_clusters: usize,
    /// Linkage criterion for the agglomerative pass.
    pub linkage: Linkage,
    /// Vector-index backend for Level 1.
    pub index: IndexSpec,
}

impl Default for LevelsConfig {
    fn default() -> Self {
        Self {
            augment: AugmentConfig::default(),
            min_clusters: 4,
            max_clusters: 24,
            linkage: Linkage::Average,
            index: IndexSpec::Flat,
        }
    }
}

/// The offline artifact consumed by the online controller: both latent
/// spaces plus the embedder that built them (the same encoder must embed
/// the recommender output at runtime — §III-B).
#[derive(Debug, Clone)]
pub struct SearchLevels {
    embedder: Embedder,
    tool_index: ToolIndex,
    cluster_index: FlatIndex,
    clusters: Vec<ToolCluster>,
    tool_count: usize,
    /// Registry indices retired by live catalog mutation, in retirement
    /// order. Retired indices stay allocated (the registry never reuses
    /// them) but are excluded from every level's offer.
    retired: Vec<usize>,
}

impl SearchLevels {
    /// Builds all levels for a workload with default settings.
    pub fn build(workload: &Workload) -> Self {
        Self::build_with(workload, &LevelsConfig::default())
    }

    /// Builds all levels with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the workload has no tools (no meaningful levels exist).
    pub fn build_with(workload: &Workload, config: &LevelsConfig) -> Self {
        assert!(!workload.registry.is_empty(), "workload has no tools");

        // One IDF model over the tool corpus; shared by both levels and by
        // the runtime embedding of recommendations.
        let corpus: Vec<String> = workload
            .registry
            .iter()
            .map(|t| t.embedding_text())
            .collect();
        let embedder = Embedder::builder()
            .idf(IdfModel::fit(corpus.iter()))
            .build();

        // ---- Level 1: individual tools, on the configured backend.
        let embeddings: Vec<Embedding> = corpus.iter().map(|text| embedder.embed(text)).collect();
        let items: Vec<(u64, &[f32])> = embeddings
            .iter()
            .enumerate()
            .map(|(i, e)| (i as u64, e.as_slice()))
            .collect();
        let tool_index = match config.index {
            IndexSpec::Flat => {
                let mut index = FlatIndex::new(embedder.dim(), Metric::Cosine);
                index
                    .add_batch(items.iter().copied())
                    .expect("registry indices are unique");
                ToolIndex::Flat(index)
            }
            IndexSpec::Ivf(params) => ToolIndex::Ivf(
                IvfIndex::train(embedder.dim(), Metric::Cosine, params, &items)
                    .expect("registry embeddings are valid training data"),
            ),
            IndexSpec::Hnsw(params) => ToolIndex::Hnsw(
                HnswIndex::train(embedder.dim(), Metric::Cosine, params, &items)
                    .expect("registry embeddings are valid training data"),
            ),
        };

        // ---- Level 2: tool clusters from augmented queries.
        let augmented = augment(workload, &config.augment);
        let (clusters, cluster_index) = build_clusters(workload, &embedder, &augmented, config);

        Self {
            embedder,
            tool_index,
            cluster_index,
            clusters,
            tool_count: workload.registry.len(),
            retired: Vec::new(),
        }
    }

    /// Reassembles levels from previously persisted parts (see
    /// [`crate::persist`]).
    ///
    /// # Panics
    ///
    /// Panics if the index dimensions disagree with the embedder.
    pub fn from_parts(
        embedder: Embedder,
        tool_index: ToolIndex,
        cluster_index: FlatIndex,
        clusters: Vec<ToolCluster>,
        tool_count: usize,
    ) -> Self {
        assert_eq!(
            embedder.dim(),
            tool_index.dim(),
            "tool index dimension mismatch"
        );
        assert_eq!(
            embedder.dim(),
            cluster_index.dim(),
            "cluster index dimension mismatch"
        );
        Self {
            embedder,
            tool_index,
            cluster_index,
            clusters,
            tool_count,
            retired: Vec::new(),
        }
    }

    /// The shared sentence encoder.
    pub fn embedder(&self) -> &Embedder {
        &self.embedder
    }

    /// Level-1 latent space `T̃` (ids = registry indices).
    pub fn tool_index(&self) -> &ToolIndex {
        &self.tool_index
    }

    /// Level-2 centroid index (ids = cluster ids).
    pub fn cluster_index(&self) -> &FlatIndex {
        &self.cluster_index
    }

    /// The Level-2 clusters.
    pub fn clusters(&self) -> &[ToolCluster] {
        &self.clusters
    }

    /// Number of tool indices ever allocated (live + retired). Level 3's
    /// size is [`SearchLevels::live_count`].
    pub fn tool_count(&self) -> usize {
        self.tool_count
    }

    /// Number of live (non-retired) tools.
    pub fn live_count(&self) -> usize {
        self.tool_count - self.retired.len()
    }

    /// Registry indices retired so far, in retirement order.
    pub fn retired(&self) -> &[usize] {
        &self.retired
    }

    /// Whether a registry index refers to a live tool.
    pub fn is_live(&self, tool_index: usize) -> bool {
        tool_index < self.tool_count && !self.retired.contains(&tool_index)
    }

    /// All live tool indices — Search Level 3.
    pub fn full_level(&self) -> Vec<usize> {
        (0..self.tool_count)
            .filter(|i| !self.retired.contains(i))
            .collect()
    }

    /// Inserts a newly registered tool into Level 1.
    ///
    /// `tool_index` must be the index the registry just allocated — the
    /// next unallocated one — so vector-store ids keep mirroring registry
    /// indices. The tool joins Level 2 at the next cluster refresh; until
    /// then it is reachable via Level 1 and Level 3.
    ///
    /// # Errors
    ///
    /// Propagates the backend's [`lim_vecstore::IndexError`] (dimension
    /// mismatch, duplicate id).
    ///
    /// # Panics
    ///
    /// Panics if `tool_index` is not the next unallocated index.
    pub fn register_embedded(
        &mut self,
        tool_index: usize,
        embedding: &Embedding,
    ) -> Result<(), lim_vecstore::IndexError> {
        assert_eq!(
            tool_index, self.tool_count,
            "registry indices are allocated densely and never reused"
        );
        self.tool_index
            .add(tool_index as u64, embedding.as_slice())?;
        self.tool_count += 1;
        Ok(())
    }

    /// Retires a live tool: tombstones it in Level 1 and excludes it from
    /// Level-2 offers and Level 3. The registry entry stays (old reports
    /// and logs keep resolving); the index is never reused.
    ///
    /// Returns `true` when the tombstone tripped Level 1's compaction.
    ///
    /// # Errors
    ///
    /// Returns [`lim_vecstore::IndexError::UnknownId`] if the tool is
    /// unknown or already retired.
    pub fn retire(&mut self, tool_index: usize) -> Result<bool, lim_vecstore::IndexError> {
        let compacted = self.tool_index.remove(tool_index as u64)?;
        self.retired.push(tool_index);
        Ok(compacted)
    }

    /// Restores the retired set when booting from a snapshot whose index
    /// sections already carry the mutated vector state (the catalog log
    /// is the source of truth for *which* indices are retired; the index
    /// tombstones only cover retirements since the last compaction).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or repeated — snapshot decode
    /// validates these before calling.
    pub fn restore_retired(&mut self, retired: Vec<usize>) {
        for (i, t) in retired.iter().enumerate() {
            assert!(*t < self.tool_count, "retired index {t} out of range");
            assert!(!retired[..i].contains(t), "retired index {t} repeated");
        }
        self.retired = retired;
    }

    /// Rebuilds Level 2 against the current live catalog — the
    /// staleness-bounded refresh that runs once churn exceeds the serving
    /// layer's configured fraction.
    ///
    /// Deterministic given the same mutation history: retired members are
    /// dropped from each cluster, live tools in no cluster (i.e. tools
    /// registered since the offline build) are adopted by the cluster
    /// with the nearest stale centroid in ascending tool-id order, empty
    /// clusters are dropped, and each surviving cluster's centroid is
    /// recomputed as the mean of its members' Level-1 embeddings.
    pub fn refresh_clusters(&mut self) {
        let mut vectors: Vec<Option<Embedding>> = vec![None; self.tool_count];
        for (id, v) in self.tool_index.iter() {
            // Index vectors were normalised when embedded; wrap without
            // re-normalising so refresh maths match the live build's.
            vectors[id as usize] = Some(Embedding::from_normalized(v.to_vec()));
        }

        for c in &mut self.clusters {
            c.tool_indices.retain(|t| vectors[*t].is_some());
        }

        if !self.clusters.is_empty() {
            for (t, slot) in vectors.iter().enumerate().take(self.tool_count) {
                let Some(embedding) = slot else {
                    continue;
                };
                if self.clusters.iter().any(|c| c.tool_indices.contains(&t)) {
                    continue;
                }
                let mut best = 0usize;
                let mut best_score = f32::NEG_INFINITY;
                for (i, c) in self.clusters.iter().enumerate() {
                    let score = c.centroid.cosine(embedding);
                    if score > best_score {
                        best = i;
                        best_score = score;
                    }
                }
                self.clusters[best].tool_indices.push(t);
            }
        }

        self.clusters.retain(|c| !c.tool_indices.is_empty());
        let mut cluster_index = FlatIndex::new(self.embedder.dim(), Metric::Cosine);
        for c in &mut self.clusters {
            c.tool_indices.sort_unstable();
            c.centroid = Embedding::mean(
                c.tool_indices
                    .iter()
                    .map(|t| vectors[*t].as_ref().expect("cluster members are live")),
            )
            .expect("cluster is non-empty");
            cluster_index
                .add(c.id as u64, c.centroid.as_slice())
                .expect("cluster ids are unique");
        }
        self.cluster_index = cluster_index;
    }

    /// Builds the *lexical* strawman clustering the paper dismisses in
    /// §III-A: clusters of tools grouped by the similarity of their own
    /// descriptions, with no query augmentation.
    ///
    /// "A clustering algorithm based on tool (text) descriptions would
    /// produce groups that poorly capture tool-usage patterns" — e.g. a
    /// translate-then-display workflow needs document *and* UI tools,
    /// which lexical clustering separates. This method exists so the
    /// claim can be measured (see the `ablation_clustering` bench):
    /// compare gold-chain coverage of these clusters against
    /// [`SearchLevels::clusters`].
    pub fn lexical_clusters(workload: &Workload, cluster_count: usize) -> Vec<ToolCluster> {
        let corpus: Vec<String> = workload
            .registry
            .iter()
            .map(|t| t.embedding_text())
            .collect();
        let embedder = Embedder::builder()
            .idf(IdfModel::fit(corpus.iter()))
            .build();
        let points: Vec<Vec<f32>> = corpus
            .iter()
            .map(|t| embedder.embed(t).as_slice().to_vec())
            .collect();
        if points.is_empty() {
            return Vec::new();
        }
        let labels = agglomerative_with(&points, Linkage::Average, cosine_distance)
            .cut(cluster_count.max(1));
        let count = labels.iter().copied().max().map_or(0, |m| m + 1);
        (0..count)
            .map(|id| {
                let tool_indices: Vec<usize> = labels
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| **l == id)
                    .map(|(i, _)| i)
                    .collect();
                let embeddings: Vec<Embedding> = tool_indices
                    .iter()
                    .map(|i| embedder.embed(&corpus[*i]))
                    .collect();
                let centroid = Embedding::mean(embeddings.iter()).expect("clusters are non-empty");
                ToolCluster {
                    id,
                    tool_indices,
                    centroid,
                }
            })
            .collect()
    }
}

/// Fraction of queries whose *entire* gold chain is contained in a single
/// cluster — the property Level 2 needs so one cluster selection can carry
/// a whole sequential workflow.
pub fn chain_coverage(workload: &Workload, clusters: &[ToolCluster]) -> f64 {
    if workload.queries.is_empty() {
        return 0.0;
    }
    let covered = workload
        .queries
        .iter()
        .filter(|q| {
            let gold: Vec<usize> = q
                .steps
                .iter()
                .filter_map(|s| workload.registry.index_of(&s.tool))
                .collect();
            clusters
                .iter()
                .any(|c| gold.iter().all(|g| c.tool_indices.contains(g)))
        })
        .count();
    covered as f64 / workload.queries.len() as f64
}

fn build_clusters(
    workload: &Workload,
    embedder: &Embedder,
    augmented: &[lim_workloads::augment::AugmentedQuery],
    config: &LevelsConfig,
) -> (Vec<ToolCluster>, FlatIndex) {
    // Augmented pool = generated variants plus the training queries
    // themselves (the paper augments the existing pool, not replaces it).
    let mut texts: Vec<String> = Vec::new();
    let mut tool_lists: Vec<Vec<usize>> = Vec::new();
    for q in &workload.train_queries {
        texts.push(q.text.clone());
        tool_lists.push(resolve_tools(
            workload,
            q.steps.iter().map(|s| s.tool.as_str()),
        ));
    }
    for a in augmented {
        texts.push(a.text.clone());
        tool_lists.push(resolve_tools(workload, a.tools.iter().map(String::as_str)));
    }

    let mut cluster_index = FlatIndex::new(embedder.dim(), Metric::Cosine);
    if texts.is_empty() {
        return (Vec::new(), cluster_index);
    }

    let points: Vec<Vec<f32>> = texts
        .iter()
        .map(|t| embedder.embed(t).as_slice().to_vec())
        .collect();
    let embeddings: Vec<Embedding> = texts.iter().map(|t| embedder.embed(t)).collect();

    let dendrogram = agglomerative_with(&points, config.linkage, cosine_distance);

    // Silhouette-guided cut over the configured candidate range.
    let lo = config.min_clusters.max(2).min(points.len());
    let hi = config.max_clusters.max(lo).min(points.len());
    let mut best = (lo, f32::NEG_INFINITY);
    for k in lo..=hi {
        let labels = dendrogram.cut(k);
        let score = silhouette_score(&points, &labels, cosine_distance);
        if score > best.1 {
            best = (k, score);
        }
    }
    let labels = dendrogram.cut(best.0);
    let cluster_count = labels.iter().copied().max().map_or(0, |m| m + 1);

    let mut clusters = Vec::with_capacity(cluster_count);
    for cluster_id in 0..cluster_count {
        let members: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == cluster_id)
            .map(|(i, _)| i)
            .collect();
        let mut tools: Vec<usize> = members
            .iter()
            .flat_map(|m| tool_lists[*m].iter().copied())
            .collect();
        tools.sort_unstable();
        tools.dedup();
        let centroid = Embedding::mean(members.iter().map(|m| &embeddings[*m]))
            .expect("clusters are non-empty");
        cluster_index
            .add(cluster_id as u64, centroid.as_slice())
            .expect("cluster ids are unique");
        clusters.push(ToolCluster {
            id: cluster_id,
            tool_indices: tools,
            centroid,
        });
    }
    (clusters, cluster_index)
}

fn resolve_tools<'a, I: IntoIterator<Item = &'a str>>(workload: &Workload, names: I) -> Vec<usize> {
    names
        .into_iter()
        .filter_map(|n| workload.registry.index_of(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lim_workloads::{bfcl, geoengine};

    #[test]
    fn level1_indexes_every_tool() {
        let w = bfcl(1, 40);
        let levels = SearchLevels::build(&w);
        assert_eq!(levels.tool_index().len(), 51);
        assert_eq!(levels.tool_count(), 51);
        assert_eq!(levels.full_level().len(), 51);
    }

    #[test]
    fn level2_clusters_are_nonempty_and_cover_tools() {
        let w = geoengine(1, 40);
        let levels = SearchLevels::build(&w);
        assert!(!levels.clusters().is_empty());
        for c in levels.clusters() {
            assert!(!c.tool_indices.is_empty(), "cluster {} has no tools", c.id);
            assert!(c.tool_indices.iter().all(|i| *i < 46));
        }
    }

    #[test]
    fn geo_clusters_capture_co_usage_not_lexical_similarity() {
        // The paper's motivating example: tools co-used by a workflow
        // (load → filter → caption → plot) must share a cluster even
        // though their descriptions are lexically unrelated.
        let w = geoengine(2, 60);
        let levels = SearchLevels::build(&w);
        let load = w.registry.index_of("load_fmow_scene").unwrap();
        let plot = w.registry.index_of("plot_captions").unwrap();
        let together = levels
            .clusters()
            .iter()
            .any(|c| c.tool_indices.contains(&load) && c.tool_indices.contains(&plot));
        assert!(together, "co-used tools not clustered together");
    }

    #[test]
    fn level1_nearest_tool_matches_description_query() {
        let w = bfcl(3, 40);
        let levels = SearchLevels::build(&w);
        let query = levels
            .embedder()
            .embed("a tool that fetches current weather conditions for a city");
        let hits = levels.tool_index().search(query.as_slice(), 1);
        let name = w.registry.get(hits[0].id as usize).unwrap().name();
        assert_eq!(name, "current_weather");
    }

    #[test]
    fn build_is_deterministic() {
        let w = geoengine(4, 40);
        let a = SearchLevels::build(&w);
        let b = SearchLevels::build(&w);
        assert_eq!(a.clusters().len(), b.clusters().len());
        for (x, y) in a.clusters().iter().zip(b.clusters()) {
            assert_eq!(x.tool_indices, y.tool_indices);
        }
    }

    #[test]
    fn co_usage_clusters_cover_chains_better_than_lexical() {
        // The §III-A claim, measured: augmented-query clustering keeps
        // whole workflows together; description clustering does not.
        let w = geoengine(8, 60);
        let levels = SearchLevels::build(&w);
        let lexical = SearchLevels::lexical_clusters(&w, levels.clusters().len());
        let co_usage = chain_coverage(&w, levels.clusters());
        let lex = chain_coverage(&w, &lexical);
        assert!(
            co_usage > lex + 0.3,
            "co-usage coverage {co_usage:.2} vs lexical {lex:.2}"
        );
        assert!(co_usage > 0.8, "co-usage coverage {co_usage:.2}");
    }

    #[test]
    fn alternative_backends_index_every_tool_and_agree_on_top1() {
        let w = bfcl(1, 40);
        let flat = SearchLevels::build(&w);
        let query = flat
            .embedder()
            .embed("a tool that fetches current weather conditions for a city");
        let expected = flat.tool_index().search(query.as_slice(), 1)[0].id;
        for index in [
            IndexSpec::Ivf(lim_vecstore::IvfParams::default()),
            IndexSpec::Hnsw(lim_vecstore::HnswParams::default()),
        ] {
            let config = LevelsConfig {
                index,
                ..LevelsConfig::default()
            };
            let levels = SearchLevels::build_with(&w, &config);
            assert_eq!(levels.tool_index().kind(), index.kind());
            assert_eq!(levels.tool_index().len(), 51);
            // At 51 tools both approximate backends see most of the
            // catalog per query; the top hit must match exact search.
            if matches!(index, IndexSpec::Hnsw(_)) {
                let hits = levels.tool_index().search(query.as_slice(), 1);
                assert_eq!(hits[0].id, expected);
            }
        }
    }

    #[test]
    fn hnsw_backend_build_is_deterministic() {
        let w = bfcl(6, 40);
        let config = LevelsConfig {
            index: IndexSpec::Hnsw(lim_vecstore::HnswParams::default()),
            ..LevelsConfig::default()
        };
        let a = SearchLevels::build_with(&w, &config);
        let b = SearchLevels::build_with(&w, &config);
        let q = a.embedder().embed("translate a document and plot it");
        let ha = a.tool_index().search(q.as_slice(), 5);
        let hb = b.tool_index().search(q.as_slice(), 5);
        for (x, y) in ha.iter().zip(&hb) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn registered_tool_joins_level1_and_level3() {
        let w = bfcl(1, 40);
        let mut levels = SearchLevels::build(&w);
        let embedding = levels
            .embedder()
            .embed("tide_forecast: Predicts tide heights for a coastal station");
        levels.register_embedded(51, &embedding).unwrap();
        assert_eq!(levels.tool_count(), 52);
        assert_eq!(levels.live_count(), 52);
        assert!(levels.full_level().contains(&51));
        let hits = levels.tool_index().search(embedding.as_slice(), 1);
        assert_eq!(hits[0].id, 51, "new tool must be its own nearest neighbor");
    }

    #[test]
    fn register_out_of_order_panics() {
        let w = bfcl(1, 40);
        let mut levels = SearchLevels::build(&w);
        let e = levels.embedder().embed("anything");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = levels.register_embedded(53, &e);
        }));
        assert!(result.is_err(), "index 53 skips 51 and 52");
    }

    #[test]
    fn retired_tool_leaves_every_level() {
        let w = bfcl(1, 40);
        let mut levels = SearchLevels::build(&w);
        let victim = w.registry.index_of("current_weather").unwrap();
        levels.retire(victim).unwrap();
        assert!(!levels.is_live(victim));
        assert_eq!(levels.live_count(), 50);
        assert!(!levels.full_level().contains(&victim));
        let query = levels
            .embedder()
            .embed("a tool that fetches current weather conditions for a city");
        let hits = levels.tool_index().search(query.as_slice(), 51);
        assert!(hits.iter().all(|h| h.id != victim as u64));
        // Double retirement is an error; the retired list is unchanged.
        assert!(levels.retire(victim).is_err());
        assert_eq!(levels.retired(), &[victim]);
    }

    #[test]
    fn refresh_clusters_drops_retired_and_adopts_registered_tools() {
        let w = geoengine(1, 60);
        let mut levels = SearchLevels::build(&w);
        let victim = levels.clusters()[0].tool_indices[0];
        levels.retire(victim).unwrap();
        let embedding = levels
            .embedder()
            .embed("cloud_mask: Masks cloudy pixels in a satellite scene");
        levels.register_embedded(46, &embedding).unwrap();

        levels.refresh_clusters();

        assert!(!levels.clusters().is_empty());
        for c in levels.clusters() {
            assert!(!c.tool_indices.contains(&victim), "retired member kept");
            assert!(!c.tool_indices.is_empty(), "empty cluster kept");
        }
        let adopted = levels
            .clusters()
            .iter()
            .filter(|c| c.tool_indices.contains(&46))
            .count();
        assert_eq!(adopted, 1, "new tool adopted by exactly one cluster");
        // Cluster index mirrors the surviving clusters.
        assert_eq!(levels.cluster_index().len(), levels.clusters().len());
    }

    #[test]
    fn refresh_is_deterministic_across_identical_histories() {
        let w = geoengine(2, 60);
        let run = || {
            let mut levels = SearchLevels::build(&w);
            levels.retire(3).unwrap();
            levels.retire(17).unwrap();
            let e = levels.embedder().embed("band_math: Computes band ratios");
            levels.register_embedded(46, &e).unwrap();
            levels.refresh_clusters();
            levels
        };
        let a = run();
        let b = run();
        assert_eq!(a.clusters().len(), b.clusters().len());
        for (x, y) in a.clusters().iter().zip(b.clusters()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.tool_indices, y.tool_indices);
            for (p, q) in x.centroid.as_slice().iter().zip(y.centroid.as_slice()) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }

    #[test]
    fn mutation_works_on_every_backend() {
        let w = bfcl(7, 40);
        for index in [
            IndexSpec::Flat,
            IndexSpec::Ivf(lim_vecstore::IvfParams::default()),
            IndexSpec::Hnsw(lim_vecstore::HnswParams::default()),
        ] {
            let config = LevelsConfig {
                index,
                ..LevelsConfig::default()
            };
            let mut levels = SearchLevels::build_with(&w, &config);
            let e = levels.embedder().embed("brand new capability");
            levels.register_embedded(51, &e).unwrap();
            levels.retire(0).unwrap();
            assert_eq!(levels.live_count(), 51, "{} backend", index.kind());
            let live: Vec<u64> = levels.tool_index().iter().map(|(id, _)| id).collect();
            assert!(live.contains(&51));
            assert!(!live.contains(&0), "{} iter leaks tombstone", index.kind());
            levels.refresh_clusters();
            assert!(levels
                .clusters()
                .iter()
                .all(|c| !c.tool_indices.contains(&0)));
        }
    }

    #[test]
    fn cluster_count_is_in_configured_range() {
        let w = geoengine(5, 60);
        let config = LevelsConfig {
            min_clusters: 6,
            max_clusters: 14,
            ..LevelsConfig::default()
        };
        let levels = SearchLevels::build_with(&w, &config);
        let n = levels.clusters().len();
        assert!((6..=14).contains(&n), "cluster count {n}");
    }
}
