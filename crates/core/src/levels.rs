//! Offline construction of the three Search Levels (§III-A).

use lim_cluster::{agglomerative_with, cosine_distance, silhouette_score, Linkage};
use lim_embed::{Embedder, Embedding, IdfModel};
use lim_vecstore::{
    FlatIndex, HnswIndex, HnswParams, IvfIndex, IvfParams, Metric, Neighbor, VectorIndex,
};
use lim_workloads::augment::{augment, AugmentConfig};
use lim_workloads::Workload;

/// Which vector-index backend Level 1 is built over.
///
/// Flat is exact and the right default at paper scale (51 / 46 tools);
/// IVF and HNSW trade a bounded recall loss for sub-linear scans, which
/// is what keeps dispatch fast at 10k–100k-tool catalog scale.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum IndexSpec {
    /// Exhaustive exact scan ([`FlatIndex`]).
    #[default]
    Flat,
    /// Inverted-file probed scan ([`IvfIndex`]).
    Ivf(IvfParams),
    /// Navigable small-world graph ([`HnswIndex`]).
    Hnsw(HnswParams),
}

impl IndexSpec {
    /// The serialization kind tag this spec builds (`"flat"` / `"ivf"` /
    /// `"hnsw"`, matching `lim_vecstore::serial`).
    pub fn kind(&self) -> &'static str {
        match self {
            IndexSpec::Flat => "flat",
            IndexSpec::Ivf(_) => "ivf",
            IndexSpec::Hnsw(_) => "hnsw",
        }
    }
}

/// The Level-1 index, whichever backend it was built with.
///
/// Dispatches [`VectorIndex`] statically over the three backends so the
/// controller's hot k-NN path stays monomorphic (no `Box<dyn>` per query).
#[derive(Debug, Clone)]
pub enum ToolIndex {
    /// Exhaustive exact scan.
    Flat(FlatIndex),
    /// Inverted-file probed scan.
    Ivf(IvfIndex),
    /// Navigable small-world graph.
    Hnsw(HnswIndex),
}

impl ToolIndex {
    /// The serialization kind tag (`"flat"` / `"ivf"` / `"hnsw"`).
    pub fn kind(&self) -> &'static str {
        match self {
            ToolIndex::Flat(_) => "flat",
            ToolIndex::Ivf(_) => "ivf",
            ToolIndex::Hnsw(_) => "hnsw",
        }
    }

    /// Iterates over stored `(id, vector)` pairs. Flat and HNSW yield
    /// insertion order; IVF yields cell order (its on-disk order).
    pub fn iter(&self) -> Box<dyn Iterator<Item = (u64, &[f32])> + '_> {
        match self {
            ToolIndex::Flat(index) => Box::new(index.iter()),
            ToolIndex::Ivf(index) => Box::new(
                index
                    .cells()
                    .iter()
                    .flatten()
                    .map(|(id, v)| (*id, v.as_slice())),
            ),
            ToolIndex::Hnsw(index) => Box::new(index.iter()),
        }
    }

    /// Searches and also reports how many vector-distance evaluations the
    /// query cost — the machine-independent latency proxy the ann bench
    /// gates on.
    pub fn search_with_stats(&self, query: &[f32], k: usize) -> (Vec<Neighbor>, usize) {
        match self {
            ToolIndex::Flat(index) => index.search_with_stats(query, k),
            ToolIndex::Ivf(index) => index.search_with_stats(query, k),
            ToolIndex::Hnsw(index) => index.search_with_stats(query, k),
        }
    }
}

impl VectorIndex for ToolIndex {
    fn len(&self) -> usize {
        match self {
            ToolIndex::Flat(index) => index.len(),
            ToolIndex::Ivf(index) => index.len(),
            ToolIndex::Hnsw(index) => index.len(),
        }
    }

    fn dim(&self) -> usize {
        match self {
            ToolIndex::Flat(index) => index.dim(),
            ToolIndex::Ivf(index) => index.dim(),
            ToolIndex::Hnsw(index) => index.dim(),
        }
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        match self {
            ToolIndex::Flat(index) => index.search(query, k),
            ToolIndex::Ivf(index) => index.search(query, k),
            ToolIndex::Hnsw(index) => index.search(query, k),
        }
    }
}

/// One Level-2 tool cluster: a centroid in the augmented latent space `Ã`
/// plus the indices of the tools its member queries co-use.
#[derive(Debug, Clone)]
pub struct ToolCluster {
    /// Cluster id (the vector-store id of its centroid).
    pub id: usize,
    /// Registry indices of the cluster's tools.
    pub tool_indices: Vec<usize>,
    /// Centroid embedding of the member queries.
    pub centroid: Embedding,
}

/// Tunables for the offline build.
#[derive(Debug, Clone)]
pub struct LevelsConfig {
    /// Augmentation settings (GPT-4-substitute; paper samples 10 queries
    /// per category).
    pub augment: AugmentConfig,
    /// Candidate cluster counts evaluated by silhouette score.
    pub min_clusters: usize,
    /// Upper bound of the candidate range.
    pub max_clusters: usize,
    /// Linkage criterion for the agglomerative pass.
    pub linkage: Linkage,
    /// Vector-index backend for Level 1.
    pub index: IndexSpec,
}

impl Default for LevelsConfig {
    fn default() -> Self {
        Self {
            augment: AugmentConfig::default(),
            min_clusters: 4,
            max_clusters: 24,
            linkage: Linkage::Average,
            index: IndexSpec::Flat,
        }
    }
}

/// The offline artifact consumed by the online controller: both latent
/// spaces plus the embedder that built them (the same encoder must embed
/// the recommender output at runtime — §III-B).
#[derive(Debug, Clone)]
pub struct SearchLevels {
    embedder: Embedder,
    tool_index: ToolIndex,
    cluster_index: FlatIndex,
    clusters: Vec<ToolCluster>,
    tool_count: usize,
}

impl SearchLevels {
    /// Builds all levels for a workload with default settings.
    pub fn build(workload: &Workload) -> Self {
        Self::build_with(workload, &LevelsConfig::default())
    }

    /// Builds all levels with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the workload has no tools (no meaningful levels exist).
    pub fn build_with(workload: &Workload, config: &LevelsConfig) -> Self {
        assert!(!workload.registry.is_empty(), "workload has no tools");

        // One IDF model over the tool corpus; shared by both levels and by
        // the runtime embedding of recommendations.
        let corpus: Vec<String> = workload
            .registry
            .iter()
            .map(|t| t.embedding_text())
            .collect();
        let embedder = Embedder::builder()
            .idf(IdfModel::fit(corpus.iter()))
            .build();

        // ---- Level 1: individual tools, on the configured backend.
        let embeddings: Vec<Embedding> = corpus.iter().map(|text| embedder.embed(text)).collect();
        let items: Vec<(u64, &[f32])> = embeddings
            .iter()
            .enumerate()
            .map(|(i, e)| (i as u64, e.as_slice()))
            .collect();
        let tool_index = match config.index {
            IndexSpec::Flat => {
                let mut index = FlatIndex::new(embedder.dim(), Metric::Cosine);
                index
                    .add_batch(items.iter().copied())
                    .expect("registry indices are unique");
                ToolIndex::Flat(index)
            }
            IndexSpec::Ivf(params) => ToolIndex::Ivf(
                IvfIndex::train(embedder.dim(), Metric::Cosine, params, &items)
                    .expect("registry embeddings are valid training data"),
            ),
            IndexSpec::Hnsw(params) => ToolIndex::Hnsw(
                HnswIndex::train(embedder.dim(), Metric::Cosine, params, &items)
                    .expect("registry embeddings are valid training data"),
            ),
        };

        // ---- Level 2: tool clusters from augmented queries.
        let augmented = augment(workload, &config.augment);
        let (clusters, cluster_index) = build_clusters(workload, &embedder, &augmented, config);

        Self {
            embedder,
            tool_index,
            cluster_index,
            clusters,
            tool_count: workload.registry.len(),
        }
    }

    /// Reassembles levels from previously persisted parts (see
    /// [`crate::persist`]).
    ///
    /// # Panics
    ///
    /// Panics if the index dimensions disagree with the embedder.
    pub fn from_parts(
        embedder: Embedder,
        tool_index: ToolIndex,
        cluster_index: FlatIndex,
        clusters: Vec<ToolCluster>,
        tool_count: usize,
    ) -> Self {
        assert_eq!(
            embedder.dim(),
            tool_index.dim(),
            "tool index dimension mismatch"
        );
        assert_eq!(
            embedder.dim(),
            cluster_index.dim(),
            "cluster index dimension mismatch"
        );
        Self {
            embedder,
            tool_index,
            cluster_index,
            clusters,
            tool_count,
        }
    }

    /// The shared sentence encoder.
    pub fn embedder(&self) -> &Embedder {
        &self.embedder
    }

    /// Level-1 latent space `T̃` (ids = registry indices).
    pub fn tool_index(&self) -> &ToolIndex {
        &self.tool_index
    }

    /// Level-2 centroid index (ids = cluster ids).
    pub fn cluster_index(&self) -> &FlatIndex {
        &self.cluster_index
    }

    /// The Level-2 clusters.
    pub fn clusters(&self) -> &[ToolCluster] {
        &self.clusters
    }

    /// Number of tools in the catalog (Level 3's size).
    pub fn tool_count(&self) -> usize {
        self.tool_count
    }

    /// All tool indices — Search Level 3.
    pub fn full_level(&self) -> Vec<usize> {
        (0..self.tool_count).collect()
    }

    /// Builds the *lexical* strawman clustering the paper dismisses in
    /// §III-A: clusters of tools grouped by the similarity of their own
    /// descriptions, with no query augmentation.
    ///
    /// "A clustering algorithm based on tool (text) descriptions would
    /// produce groups that poorly capture tool-usage patterns" — e.g. a
    /// translate-then-display workflow needs document *and* UI tools,
    /// which lexical clustering separates. This method exists so the
    /// claim can be measured (see the `ablation_clustering` bench):
    /// compare gold-chain coverage of these clusters against
    /// [`SearchLevels::clusters`].
    pub fn lexical_clusters(workload: &Workload, cluster_count: usize) -> Vec<ToolCluster> {
        let corpus: Vec<String> = workload
            .registry
            .iter()
            .map(|t| t.embedding_text())
            .collect();
        let embedder = Embedder::builder()
            .idf(IdfModel::fit(corpus.iter()))
            .build();
        let points: Vec<Vec<f32>> = corpus
            .iter()
            .map(|t| embedder.embed(t).as_slice().to_vec())
            .collect();
        if points.is_empty() {
            return Vec::new();
        }
        let labels = agglomerative_with(&points, Linkage::Average, cosine_distance)
            .cut(cluster_count.max(1));
        let count = labels.iter().copied().max().map_or(0, |m| m + 1);
        (0..count)
            .map(|id| {
                let tool_indices: Vec<usize> = labels
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| **l == id)
                    .map(|(i, _)| i)
                    .collect();
                let embeddings: Vec<Embedding> = tool_indices
                    .iter()
                    .map(|i| embedder.embed(&corpus[*i]))
                    .collect();
                let centroid = Embedding::mean(embeddings.iter()).expect("clusters are non-empty");
                ToolCluster {
                    id,
                    tool_indices,
                    centroid,
                }
            })
            .collect()
    }
}

/// Fraction of queries whose *entire* gold chain is contained in a single
/// cluster — the property Level 2 needs so one cluster selection can carry
/// a whole sequential workflow.
pub fn chain_coverage(workload: &Workload, clusters: &[ToolCluster]) -> f64 {
    if workload.queries.is_empty() {
        return 0.0;
    }
    let covered = workload
        .queries
        .iter()
        .filter(|q| {
            let gold: Vec<usize> = q
                .steps
                .iter()
                .filter_map(|s| workload.registry.index_of(&s.tool))
                .collect();
            clusters
                .iter()
                .any(|c| gold.iter().all(|g| c.tool_indices.contains(g)))
        })
        .count();
    covered as f64 / workload.queries.len() as f64
}

fn build_clusters(
    workload: &Workload,
    embedder: &Embedder,
    augmented: &[lim_workloads::augment::AugmentedQuery],
    config: &LevelsConfig,
) -> (Vec<ToolCluster>, FlatIndex) {
    // Augmented pool = generated variants plus the training queries
    // themselves (the paper augments the existing pool, not replaces it).
    let mut texts: Vec<String> = Vec::new();
    let mut tool_lists: Vec<Vec<usize>> = Vec::new();
    for q in &workload.train_queries {
        texts.push(q.text.clone());
        tool_lists.push(resolve_tools(
            workload,
            q.steps.iter().map(|s| s.tool.as_str()),
        ));
    }
    for a in augmented {
        texts.push(a.text.clone());
        tool_lists.push(resolve_tools(workload, a.tools.iter().map(String::as_str)));
    }

    let mut cluster_index = FlatIndex::new(embedder.dim(), Metric::Cosine);
    if texts.is_empty() {
        return (Vec::new(), cluster_index);
    }

    let points: Vec<Vec<f32>> = texts
        .iter()
        .map(|t| embedder.embed(t).as_slice().to_vec())
        .collect();
    let embeddings: Vec<Embedding> = texts.iter().map(|t| embedder.embed(t)).collect();

    let dendrogram = agglomerative_with(&points, config.linkage, cosine_distance);

    // Silhouette-guided cut over the configured candidate range.
    let lo = config.min_clusters.max(2).min(points.len());
    let hi = config.max_clusters.max(lo).min(points.len());
    let mut best = (lo, f32::NEG_INFINITY);
    for k in lo..=hi {
        let labels = dendrogram.cut(k);
        let score = silhouette_score(&points, &labels, cosine_distance);
        if score > best.1 {
            best = (k, score);
        }
    }
    let labels = dendrogram.cut(best.0);
    let cluster_count = labels.iter().copied().max().map_or(0, |m| m + 1);

    let mut clusters = Vec::with_capacity(cluster_count);
    for cluster_id in 0..cluster_count {
        let members: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == cluster_id)
            .map(|(i, _)| i)
            .collect();
        let mut tools: Vec<usize> = members
            .iter()
            .flat_map(|m| tool_lists[*m].iter().copied())
            .collect();
        tools.sort_unstable();
        tools.dedup();
        let centroid = Embedding::mean(members.iter().map(|m| &embeddings[*m]))
            .expect("clusters are non-empty");
        cluster_index
            .add(cluster_id as u64, centroid.as_slice())
            .expect("cluster ids are unique");
        clusters.push(ToolCluster {
            id: cluster_id,
            tool_indices: tools,
            centroid,
        });
    }
    (clusters, cluster_index)
}

fn resolve_tools<'a, I: IntoIterator<Item = &'a str>>(workload: &Workload, names: I) -> Vec<usize> {
    names
        .into_iter()
        .filter_map(|n| workload.registry.index_of(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lim_workloads::{bfcl, geoengine};

    #[test]
    fn level1_indexes_every_tool() {
        let w = bfcl(1, 40);
        let levels = SearchLevels::build(&w);
        assert_eq!(levels.tool_index().len(), 51);
        assert_eq!(levels.tool_count(), 51);
        assert_eq!(levels.full_level().len(), 51);
    }

    #[test]
    fn level2_clusters_are_nonempty_and_cover_tools() {
        let w = geoengine(1, 40);
        let levels = SearchLevels::build(&w);
        assert!(!levels.clusters().is_empty());
        for c in levels.clusters() {
            assert!(!c.tool_indices.is_empty(), "cluster {} has no tools", c.id);
            assert!(c.tool_indices.iter().all(|i| *i < 46));
        }
    }

    #[test]
    fn geo_clusters_capture_co_usage_not_lexical_similarity() {
        // The paper's motivating example: tools co-used by a workflow
        // (load → filter → caption → plot) must share a cluster even
        // though their descriptions are lexically unrelated.
        let w = geoengine(2, 60);
        let levels = SearchLevels::build(&w);
        let load = w.registry.index_of("load_fmow_scene").unwrap();
        let plot = w.registry.index_of("plot_captions").unwrap();
        let together = levels
            .clusters()
            .iter()
            .any(|c| c.tool_indices.contains(&load) && c.tool_indices.contains(&plot));
        assert!(together, "co-used tools not clustered together");
    }

    #[test]
    fn level1_nearest_tool_matches_description_query() {
        let w = bfcl(3, 40);
        let levels = SearchLevels::build(&w);
        let query = levels
            .embedder()
            .embed("a tool that fetches current weather conditions for a city");
        let hits = levels.tool_index().search(query.as_slice(), 1);
        let name = w.registry.get(hits[0].id as usize).unwrap().name();
        assert_eq!(name, "current_weather");
    }

    #[test]
    fn build_is_deterministic() {
        let w = geoengine(4, 40);
        let a = SearchLevels::build(&w);
        let b = SearchLevels::build(&w);
        assert_eq!(a.clusters().len(), b.clusters().len());
        for (x, y) in a.clusters().iter().zip(b.clusters()) {
            assert_eq!(x.tool_indices, y.tool_indices);
        }
    }

    #[test]
    fn co_usage_clusters_cover_chains_better_than_lexical() {
        // The §III-A claim, measured: augmented-query clustering keeps
        // whole workflows together; description clustering does not.
        let w = geoengine(8, 60);
        let levels = SearchLevels::build(&w);
        let lexical = SearchLevels::lexical_clusters(&w, levels.clusters().len());
        let co_usage = chain_coverage(&w, levels.clusters());
        let lex = chain_coverage(&w, &lexical);
        assert!(
            co_usage > lex + 0.3,
            "co-usage coverage {co_usage:.2} vs lexical {lex:.2}"
        );
        assert!(co_usage > 0.8, "co-usage coverage {co_usage:.2}");
    }

    #[test]
    fn alternative_backends_index_every_tool_and_agree_on_top1() {
        let w = bfcl(1, 40);
        let flat = SearchLevels::build(&w);
        let query = flat
            .embedder()
            .embed("a tool that fetches current weather conditions for a city");
        let expected = flat.tool_index().search(query.as_slice(), 1)[0].id;
        for index in [
            IndexSpec::Ivf(lim_vecstore::IvfParams::default()),
            IndexSpec::Hnsw(lim_vecstore::HnswParams::default()),
        ] {
            let config = LevelsConfig {
                index,
                ..LevelsConfig::default()
            };
            let levels = SearchLevels::build_with(&w, &config);
            assert_eq!(levels.tool_index().kind(), index.kind());
            assert_eq!(levels.tool_index().len(), 51);
            // At 51 tools both approximate backends see most of the
            // catalog per query; the top hit must match exact search.
            if matches!(index, IndexSpec::Hnsw(_)) {
                let hits = levels.tool_index().search(query.as_slice(), 1);
                assert_eq!(hits[0].id, expected);
            }
        }
    }

    #[test]
    fn hnsw_backend_build_is_deterministic() {
        let w = bfcl(6, 40);
        let config = LevelsConfig {
            index: IndexSpec::Hnsw(lim_vecstore::HnswParams::default()),
            ..LevelsConfig::default()
        };
        let a = SearchLevels::build_with(&w, &config);
        let b = SearchLevels::build_with(&w, &config);
        let q = a.embedder().embed("translate a document and plot it");
        let ha = a.tool_index().search(q.as_slice(), 5);
        let hb = b.tool_index().search(q.as_slice(), 5);
        for (x, y) in ha.iter().zip(&hb) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn cluster_count_is_in_configured_range() {
        let w = geoengine(5, 60);
        let config = LevelsConfig {
            min_clusters: 6,
            max_clusters: 14,
            ..LevelsConfig::default()
        };
        let levels = SearchLevels::build_with(&w, &config);
        let n = levels.clusters().len();
        assert!((6..=14).contains(&n), "cluster count {n}");
    }
}
