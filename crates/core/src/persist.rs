//! Persistence of the offline artifacts (§III-A: the search levels are
//! built "offline and prior to any user interaction").
//!
//! A deployment builds [`SearchLevels`] once per tool catalog, serializes
//! them with [`save_levels`], ships the JSON artifact to the edge device,
//! and reloads it with [`load_levels`] at boot — no augmentation or
//! clustering happens on-device.
//!
//! The format is plain JSON (via `lim-json`), versioned with a `format`
//! tag so future layouts can evolve compatibly.

use std::error::Error;
use std::fmt;

use lim_embed::{Embedder, Embedding, IdfModel};
use lim_json::Value;
use lim_vecstore::{FlatIndex, Metric};

use crate::levels::{SearchLevels, ToolCluster};

/// Format tag written into every artifact.
pub const FORMAT: &str = "lessismore-levels/1";

/// Error raised when an artifact cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadLevelsError {
    /// What was wrong with the document.
    pub message: String,
}

impl fmt::Display for LoadLevelsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot load search levels: {}", self.message)
    }
}

impl Error for LoadLevelsError {}

fn err(message: impl Into<String>) -> LoadLevelsError {
    LoadLevelsError {
        message: message.into(),
    }
}

/// Serializes levels into a JSON document.
pub fn save_levels(levels: &SearchLevels) -> Value {
    let idf = levels.embedder().idf();
    let idf_entries: Value = idf
        .entries()
        .map(|(term, df)| Value::array([Value::from(term), Value::from(df as i64)]))
        .collect();

    Value::object([
        ("format", Value::from(FORMAT)),
        ("dim", Value::from(levels.embedder().dim())),
        ("tool_count", Value::from(levels.tool_count())),
        (
            "idf",
            Value::object([
                ("doc_count", Value::from(idf.len())),
                ("entries", idf_entries),
            ]),
        ),
        ("tool_index", index_to_json(levels.tool_index())),
        (
            "clusters",
            levels
                .clusters()
                .iter()
                .map(|c| {
                    Value::object([
                        ("id", Value::from(c.id)),
                        (
                            "tools",
                            c.tool_indices.iter().map(|t| Value::from(*t)).collect(),
                        ),
                        ("centroid", floats_to_json(c.centroid.as_slice())),
                    ])
                })
                .collect(),
        ),
    ])
}

/// Reconstructs levels from a document produced by [`save_levels`].
///
/// # Errors
///
/// Returns [`LoadLevelsError`] on any structural mismatch: wrong format
/// tag, missing members, malformed vectors, or duplicate ids.
pub fn load_levels(doc: &Value) -> Result<SearchLevels, LoadLevelsError> {
    let format = doc
        .get("format")
        .and_then(Value::as_str)
        .ok_or_else(|| err("missing format tag"))?;
    if format != FORMAT {
        return Err(err(format!("unsupported format {format:?}")));
    }
    let dim = get_usize(doc, "dim")?;
    let tool_count = get_usize(doc, "tool_count")?;

    let idf_doc = doc.get("idf").ok_or_else(|| err("missing idf"))?;
    let doc_count = get_usize(idf_doc, "doc_count")?;
    let mut entries = Vec::new();
    for e in idf_doc
        .get("entries")
        .and_then(Value::as_array)
        .ok_or_else(|| err("missing idf.entries"))?
    {
        let term = e
            .at(0)
            .and_then(Value::as_str)
            .ok_or_else(|| err("idf entry missing term"))?;
        let df = e
            .at(1)
            .and_then(Value::as_i64)
            .ok_or_else(|| err("idf entry missing df"))? as usize;
        entries.push((term.to_owned(), df));
    }
    let embedder = Embedder::builder()
        .dim(dim)
        .idf(IdfModel::from_parts(doc_count, entries))
        .build();

    let tool_index = index_from_json(
        doc.get("tool_index")
            .ok_or_else(|| err("missing tool_index"))?,
        dim,
    )?;

    let mut clusters = Vec::new();
    let mut cluster_index = FlatIndex::new(dim, Metric::Cosine);
    for c in doc
        .get("clusters")
        .and_then(Value::as_array)
        .ok_or_else(|| err("missing clusters"))?
    {
        let id = get_usize(c, "id")?;
        let tool_indices: Vec<usize> = c
            .get("tools")
            .and_then(Value::as_array)
            .ok_or_else(|| err("cluster missing tools"))?
            .iter()
            .map(|v| v.as_i64().map(|x| x as usize))
            .collect::<Option<Vec<usize>>>()
            .ok_or_else(|| err("cluster tools must be integers"))?;
        let centroid_values = floats_from_json(
            c.get("centroid")
                .ok_or_else(|| err("cluster missing centroid"))?,
        )?;
        if centroid_values.len() != dim {
            return Err(err("centroid dimension mismatch"));
        }
        let centroid = Embedding::new(centroid_values);
        cluster_index
            .add(id as u64, centroid.as_slice())
            .map_err(|e| err(format!("cluster index: {e}")))?;
        clusters.push(ToolCluster {
            id,
            tool_indices,
            centroid,
        });
    }

    Ok(SearchLevels::from_parts(
        embedder,
        tool_index,
        cluster_index,
        clusters,
        tool_count,
    ))
}

fn index_to_json(index: &FlatIndex) -> Value {
    index
        .iter()
        .map(|(id, vector)| {
            Value::object([
                ("id", Value::from(id as i64)),
                ("v", floats_to_json(vector)),
            ])
        })
        .collect()
}

fn index_from_json(doc: &Value, dim: usize) -> Result<FlatIndex, LoadLevelsError> {
    let mut index = FlatIndex::new(dim, Metric::Cosine);
    for entry in doc
        .as_array()
        .ok_or_else(|| err("index must be an array"))?
    {
        let id = entry
            .get("id")
            .and_then(Value::as_i64)
            .ok_or_else(|| err("index entry missing id"))? as u64;
        let vector = floats_from_json(entry.get("v").ok_or_else(|| err("index entry missing v"))?)?;
        if vector.len() != dim {
            return Err(err("index vector dimension mismatch"));
        }
        index
            .add(id, &vector)
            .map_err(|e| err(format!("index: {e}")))?;
    }
    Ok(index)
}

fn floats_to_json(values: &[f32]) -> Value {
    values.iter().map(|v| Value::from(f64::from(*v))).collect()
}

fn floats_from_json(doc: &Value) -> Result<Vec<f32>, LoadLevelsError> {
    doc.as_array()
        .ok_or_else(|| err("vector must be an array"))?
        .iter()
        .map(|v| v.as_f64().map(|x| x as f32))
        .collect::<Option<Vec<f32>>>()
        .ok_or_else(|| err("vector components must be numbers"))
}

fn get_usize(doc: &Value, key: &str) -> Result<usize, LoadLevelsError> {
    doc.get(key)
        .and_then(Value::as_i64)
        .map(|v| v as usize)
        .ok_or_else(|| err(format!("missing integer member {key:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{ControllerConfig, ToolController};
    use lim_vecstore::VectorIndex;
    use lim_workloads::{bfcl, geoengine};

    #[test]
    fn roundtrip_preserves_structure() {
        let w = geoengine(3, 40);
        let levels = SearchLevels::build(&w);
        let doc = save_levels(&levels);
        let loaded = load_levels(&doc).expect("roundtrip succeeds");
        assert_eq!(loaded.tool_count(), levels.tool_count());
        assert_eq!(loaded.tool_index().len(), levels.tool_index().len());
        assert_eq!(loaded.clusters().len(), levels.clusters().len());
        for (a, b) in loaded.clusters().iter().zip(levels.clusters()) {
            assert_eq!(a.tool_indices, b.tool_indices);
        }
    }

    #[test]
    fn roundtrip_through_text_gives_identical_controller_decisions() {
        let w = bfcl(4, 40);
        let levels = SearchLevels::build(&w);
        let text = save_levels(&levels).to_string();
        let parsed = lim_json::parse(&text).expect("valid JSON");
        let loaded = load_levels(&parsed).expect("roundtrip succeeds");

        let recs = vec![
            "fetches current weather conditions of a city".to_owned(),
            "converts an amount of money between currencies".to_owned(),
        ];
        let original = ToolController::new(&levels, ControllerConfig::with_k(3))
            .select("weather in Paris then convert 10 USD", &recs);
        let restored = ToolController::new(&loaded, ControllerConfig::with_k(3))
            .select("weather in Paris then convert 10 USD", &recs);
        assert_eq!(original.level, restored.level);
        assert_eq!(original.tool_indices, restored.tool_indices);
        // f32 → f64 JSON roundtrip is exact for these magnitudes.
        assert!((original.level1_score - restored.level1_score).abs() < 1e-6);
    }

    #[test]
    fn rejects_wrong_format_and_corrupt_documents() {
        let w = bfcl(5, 10);
        let levels = SearchLevels::build(&w);
        let mut doc = save_levels(&levels);
        doc.insert("format", Value::from("other/9"));
        assert!(load_levels(&doc).is_err());

        for missing in ["dim", "idf", "tool_index", "clusters"] {
            let mut broken = save_levels(&levels);
            broken.insert(missing, Value::Null);
            assert!(load_levels(&broken).is_err(), "member {missing}");
        }
        assert!(load_levels(&Value::object::<&str, _>([])).is_err());
    }

    #[test]
    fn embedder_idf_survives_roundtrip() {
        let w = bfcl(6, 10);
        let levels = SearchLevels::build(&w);
        let loaded = load_levels(&save_levels(&levels)).expect("roundtrip succeeds");
        // Same IDF weights ⇒ same embeddings for any runtime text.
        let text = "translate a document into French and display it";
        assert_eq!(levels.embedder().embed(text), loaded.embedder().embed(text));
    }
}
