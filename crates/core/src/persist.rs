//! Persistence of the offline artifacts (§III-A: the search levels are
//! built "offline and prior to any user interaction").
//!
//! Two formats live here:
//!
//! * **`lessismore-levels/1`** — the original single-document JSON levels
//!   artifact ([`save_levels`] / [`load_levels`]), kept for
//!   `lim levels --save/--load` compatibility.
//! * **`lim/snapshot-v1`** — the boot snapshot: a sectioned container a
//!   serving process can open without decoding everything. The paper's
//!   offline/online split says the expensive preparation (clustering,
//!   level reduction, index construction) must be amortized across
//!   process lifetimes, not re-paid per boot; TinyAgent likewise ships a
//!   precomputed retrieval index to the device. A snapshot therefore
//!   carries [`SearchLevels`] plus the vector indexes as independent
//!   sections behind a byte-offset table, mmap-style: [`Snapshot::parse`]
//!   reads the header eagerly and decodes a section's JSON only on first
//!   use (`lim snapshot inspect` never decodes any; a levels boot never
//!   decodes a checkpoint's warm-cache sections).
//!
//! # The `lim/snapshot-v1` container
//!
//! ```text
//! lim/snapshot-v1\n                      magic line
//! {"format":"lim/snapshot-v1", ...}\n    header: kind, identity fields,
//!                                        section table [{name,offset,len}]
//! <section payloads, concatenated>       offsets relative to payload start
//! ```
//!
//! Every section payload is one compact JSON document. Versioning rule:
//! **unknown sections are an error** (a loader must never silently drop
//! state another writer considered worth persisting), **unknown fields
//! inside a section are ignored** (additive evolution keeps the format
//! id). Writers emit sections and header fields in deterministic order,
//! so encoding the same state twice is byte-identical.

use std::cell::OnceCell;
use std::error::Error;
use std::fmt;

use lim_embed::{Embedder, Embedding, IdfModel};
use lim_json::Value;
use lim_vecstore::{
    flat_from_json, flat_to_json, hnsw_from_json, hnsw_to_json, ivf_from_json, ivf_to_json,
    FlatIndex, Metric, VectorIndex,
};

use crate::levels::{SearchLevels, ToolCluster, ToolIndex};

/// Format tag written into every levels artifact.
pub const FORMAT: &str = "lessismore-levels/1";

/// Format tag of the sectioned boot snapshot.
pub const SNAPSHOT_FORMAT: &str = "lim/snapshot-v1";

/// Snapshot section holding the embedder (IDF model) and level metadata.
pub const SECTION_LEVELS: &str = "levels";
/// Snapshot section holding the Level-1 tool index.
pub const SECTION_TOOL_INDEX: &str = "tool_index";
/// Snapshot section holding the Level-2 clusters and centroids.
pub const SECTION_CLUSTERS: &str = "clusters";

/// Error raised when an artifact cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadLevelsError {
    /// What was wrong with the document.
    pub message: String,
    /// Breadcrumb from the document root to the offending field, e.g.
    /// `["clusters", "[3]", "centroid"]`. Index segments are bracketed.
    pub path: Vec<String>,
}

impl LoadLevelsError {
    /// Renders the breadcrumb as a dotted path (`clusters[3].centroid`);
    /// empty when the failure concerns the document as a whole.
    pub fn path_string(&self) -> String {
        let mut out = String::new();
        for seg in &self.path {
            if !out.is_empty() && !seg.starts_with('[') {
                out.push('.');
            }
            out.push_str(seg);
        }
        out
    }

    /// Prepends `segment` to the breadcrumb (errors bubble up from the
    /// leaf, so parents prepend their own context).
    fn nest(mut self, segment: impl Into<String>) -> Self {
        self.path.insert(0, segment.into());
        self
    }
}

impl fmt::Display for LoadLevelsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "cannot load search levels: {}", self.message)
        } else {
            write!(
                f,
                "cannot load search levels at {}: {}",
                self.path_string(),
                self.message
            )
        }
    }
}

impl Error for LoadLevelsError {}

fn err(message: impl Into<String>) -> LoadLevelsError {
    LoadLevelsError {
        message: message.into(),
        path: Vec::new(),
    }
}

/// Serializes levels into a JSON document.
///
/// IDF entries are sorted by term so the same levels always serialize to
/// the same bytes (the in-memory model iterates in hash order).
///
/// The legacy `lessismore-levels/1` format stores the Level-1 index as a
/// bare postings array, so [`load_levels`] always rebuilds it as a
/// [`FlatIndex`] whatever backend built it; use a `lim/snapshot-v1`
/// snapshot (kind-tagged `tool_index` section) to round-trip IVF or HNSW
/// graphs exactly.
pub fn save_levels(levels: &SearchLevels) -> Value {
    let idf = levels.embedder().idf();
    Value::object([
        ("format", Value::from(FORMAT)),
        ("dim", Value::from(levels.embedder().dim())),
        ("tool_count", Value::from(levels.tool_count())),
        ("idf", idf_to_json(idf)),
        ("tool_index", index_to_json(levels.tool_index())),
        ("clusters", clusters_to_json(levels.clusters())),
    ])
}

fn idf_to_json(idf: &IdfModel) -> Value {
    let mut entries: Vec<(String, usize)> = idf
        .entries()
        .map(|(term, df)| (term.to_owned(), df))
        .collect();
    entries.sort();
    Value::object([
        ("doc_count", Value::from(idf.len())),
        (
            "entries",
            entries
                .into_iter()
                .map(|(term, df)| Value::array([Value::from(term), Value::from(df as i64)]))
                .collect(),
        ),
    ])
}

fn idf_from_json(doc: &Value) -> Result<IdfModel, LoadLevelsError> {
    let doc_count = get_usize(doc, "doc_count")?;
    let mut entries = Vec::new();
    for (i, e) in doc
        .get("entries")
        .and_then(Value::as_array)
        .ok_or_else(|| err("missing member").nest("entries"))?
        .iter()
        .enumerate()
    {
        let term = e.at(0).and_then(Value::as_str).ok_or_else(|| {
            err("entry missing term")
                .nest(format!("[{i}]"))
                .nest("entries")
        })?;
        let df = e.at(1).and_then(Value::as_i64).ok_or_else(|| {
            err("entry missing df")
                .nest(format!("[{i}]"))
                .nest("entries")
        })? as usize;
        entries.push((term.to_owned(), df));
    }
    Ok(IdfModel::from_parts(doc_count, entries))
}

fn clusters_to_json(clusters: &[ToolCluster]) -> Value {
    clusters
        .iter()
        .map(|c| {
            Value::object([
                ("id", Value::from(c.id)),
                (
                    "tools",
                    c.tool_indices.iter().map(|t| Value::from(*t)).collect(),
                ),
                ("centroid", floats_to_json(c.centroid.as_slice())),
            ])
        })
        .collect()
}

fn clusters_from_json(
    doc: &Value,
    dim: usize,
) -> Result<(Vec<ToolCluster>, FlatIndex), LoadLevelsError> {
    let mut clusters = Vec::new();
    let mut cluster_index = FlatIndex::new(dim, Metric::Cosine);
    for (i, c) in doc
        .as_array()
        .ok_or_else(|| err("clusters must be an array"))?
        .iter()
        .enumerate()
    {
        let at = |e: LoadLevelsError| e.nest(format!("[{i}]"));
        let id = get_usize(c, "id").map_err(at)?;
        let tool_indices: Vec<usize> = c
            .get("tools")
            .and_then(Value::as_array)
            .ok_or_else(|| at(err("missing member").nest("tools")))?
            .iter()
            .map(|v| v.as_i64().map(|x| x as usize))
            .collect::<Option<Vec<usize>>>()
            .ok_or_else(|| at(err("tools must be integers").nest("tools")))?;
        let centroid_values = c
            .get("centroid")
            .ok_or_else(|| at(err("missing member").nest("centroid")))
            .and_then(|v| floats_from_json(v).map_err(|e| at(e.nest("centroid"))))?;
        if centroid_values.len() != dim {
            return Err(at(err(format!(
                "centroid has {} components, expected {dim}",
                centroid_values.len()
            ))
            .nest("centroid")));
        }
        // Persisted centroids are already unit-norm; re-normalising would
        // perturb them by an ulp and break byte-exact restore.
        let centroid = Embedding::from_normalized(centroid_values);
        cluster_index
            .add(id as u64, centroid.as_slice())
            .map_err(|e| at(err(format!("cluster index: {e}"))))?;
        clusters.push(ToolCluster {
            id,
            tool_indices,
            centroid,
        });
    }
    Ok((clusters, cluster_index))
}

/// Reconstructs levels from a document produced by [`save_levels`].
///
/// # Errors
///
/// Returns [`LoadLevelsError`] on any structural mismatch: wrong format
/// tag, missing members, malformed vectors, or duplicate ids. The
/// error's `path` breadcrumb names the offending field (e.g.
/// `clusters[3].centroid`).
pub fn load_levels(doc: &Value) -> Result<SearchLevels, LoadLevelsError> {
    let format = doc
        .get("format")
        .and_then(Value::as_str)
        .ok_or_else(|| err("missing member").nest("format"))?;
    if format != FORMAT {
        return Err(err(format!("unsupported format {format:?}")).nest("format"));
    }
    let dim = get_usize(doc, "dim")?;
    let tool_count = get_usize(doc, "tool_count")?;

    let idf = idf_from_json(
        doc.get("idf")
            .ok_or_else(|| err("missing member").nest("idf"))?,
    )
    .map_err(|e| e.nest("idf"))?;
    let embedder = Embedder::builder().dim(dim).idf(idf).build();

    let tool_index = index_from_json(
        doc.get("tool_index")
            .ok_or_else(|| err("missing member").nest("tool_index"))?,
        dim,
    )
    .map_err(|e| e.nest("tool_index"))?;

    let (clusters, cluster_index) = clusters_from_json(
        doc.get("clusters")
            .ok_or_else(|| err("missing member").nest("clusters"))?,
        dim,
    )
    .map_err(|e| e.nest("clusters"))?;

    Ok(SearchLevels::from_parts(
        embedder,
        ToolIndex::Flat(tool_index),
        cluster_index,
        clusters,
        tool_count,
    ))
}

fn index_to_json(index: &ToolIndex) -> Value {
    index
        .iter()
        .map(|(id, vector)| {
            Value::object([
                ("id", Value::from(id as i64)),
                ("v", floats_to_json(vector)),
            ])
        })
        .collect()
}

fn index_from_json(doc: &Value, dim: usize) -> Result<FlatIndex, LoadLevelsError> {
    let mut index = FlatIndex::new(dim, Metric::Cosine);
    for (i, entry) in doc
        .as_array()
        .ok_or_else(|| err("index must be an array"))?
        .iter()
        .enumerate()
    {
        let at = |e: LoadLevelsError| e.nest(format!("[{i}]"));
        let id = entry
            .get("id")
            .and_then(Value::as_i64)
            .ok_or_else(|| at(err("missing member").nest("id")))? as u64;
        let vector = entry
            .get("v")
            .ok_or_else(|| at(err("missing member").nest("v")))
            .and_then(|v| floats_from_json(v).map_err(|e| at(e.nest("v"))))?;
        if vector.len() != dim {
            return Err(at(err(format!(
                "vector has {} components, expected {dim}",
                vector.len()
            ))
            .nest("v")));
        }
        index.add(id, &vector).map_err(|e| at(err(e.to_string())))?;
    }
    Ok(index)
}

// The f32 <-> JSON encoding rule lives in lim_vecstore::serial so every
// snapshot section round-trips through one implementation; only the
// error type is adapted here.
fn floats_to_json(values: &[f32]) -> Value {
    lim_vecstore::floats_to_json(values)
}

fn floats_from_json(doc: &Value) -> Result<Vec<f32>, LoadLevelsError> {
    lim_vecstore::floats_from_json(doc, "vector").map_err(|e| err(e.message))
}

fn get_usize(doc: &Value, key: &str) -> Result<usize, LoadLevelsError> {
    doc.get(key)
        .and_then(Value::as_i64)
        .map(|v| v as usize)
        .ok_or_else(|| err("missing integer member").nest(key.to_owned()))
}

// ---------------------------------------------------------------------------
// The lim/snapshot-v1 container.
// ---------------------------------------------------------------------------

/// Typed failure modes of snapshot parsing and loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes do not start with the `lim/snapshot-v1` magic line.
    Magic,
    /// The header line is missing, malformed, or lacks required members.
    Header(String),
    /// A section's recorded byte range exceeds the available payload.
    Truncated {
        /// Name of the out-of-bounds section.
        section: String,
        /// Bytes the header claims the section occupies.
        expected: usize,
        /// Payload bytes actually available at its offset.
        available: usize,
    },
    /// The file carries a section this loader does not understand
    /// (unknown sections are an error; see the module docs).
    UnknownSection(String),
    /// A section this loader requires is absent.
    MissingSection(String),
    /// A section's payload failed to parse or decode.
    Section {
        /// Name of the offending section.
        section: String,
        /// What was wrong with its payload.
        message: String,
    },
    /// The snapshot's identity or configuration disagrees with the
    /// engine it is being restored into.
    Mismatch(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Magic => write!(f, "not a {SNAPSHOT_FORMAT} snapshot (bad magic)"),
            SnapshotError::Header(m) => write!(f, "bad snapshot header: {m}"),
            SnapshotError::Truncated {
                section,
                expected,
                available,
            } => write!(
                f,
                "snapshot is truncated: section {section:?} claims {expected} bytes \
                 but only {available} are present"
            ),
            SnapshotError::UnknownSection(name) => {
                write!(f, "snapshot carries unknown section {name:?}")
            }
            SnapshotError::MissingSection(name) => {
                write!(f, "snapshot is missing required section {name:?}")
            }
            SnapshotError::Section { section, message } => {
                write!(f, "snapshot section {section:?}: {message}")
            }
            SnapshotError::Mismatch(m) => write!(f, "snapshot does not match this engine: {m}"),
        }
    }
}

impl Error for SnapshotError {}

/// Builder for a `lim/snapshot-v1` file: header fields plus named
/// sections, encoded with a byte-offset table so readers can decode
/// sections lazily.
#[derive(Debug, Clone)]
pub struct SnapshotWriter {
    kind: String,
    fields: Vec<(String, Value)>,
    sections: Vec<(String, String)>,
}

impl SnapshotWriter {
    /// Starts a snapshot of the given kind (`"levels"` boots indexes
    /// only; `"checkpoint"` additionally carries warm serving state).
    pub fn new(kind: &str) -> Self {
        Self {
            kind: kind.to_owned(),
            fields: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// Records an identity field in the header (benchmark, seed, …).
    /// Header fields are always decoded; keep them small.
    pub fn header_field(&mut self, key: &str, value: Value) {
        self.fields.push((key.to_owned(), value));
    }

    /// Appends a section. Order is preserved into the file, so the same
    /// state always encodes to the same bytes.
    pub fn add_section(&mut self, name: &str, doc: &Value) {
        self.sections.push((name.to_owned(), doc.to_string()));
    }

    /// Encodes the container (magic line, header line, payloads).
    pub fn encode(&self) -> Vec<u8> {
        let mut table = Vec::new();
        let mut offset = 0usize;
        for (name, payload) in &self.sections {
            table.push(Value::object([
                ("name", Value::from(name.as_str())),
                ("offset", Value::from(offset)),
                ("len", Value::from(payload.len())),
            ]));
            offset += payload.len();
        }
        let mut header = Value::object([
            ("format", Value::from(SNAPSHOT_FORMAT)),
            ("kind", Value::from(self.kind.as_str())),
            ("sections", table.into_iter().collect()),
        ]);
        for (key, value) in &self.fields {
            header.insert(key.as_str(), value.clone());
        }
        let mut out = String::new();
        out.push_str(SNAPSHOT_FORMAT);
        out.push('\n');
        out.push_str(&header.to_string());
        out.push('\n');
        for (_, payload) in &self.sections {
            out.push_str(payload);
        }
        out.into_bytes()
    }
}

/// One entry of the section table plus its lazily decoded document.
#[derive(Debug)]
struct Section {
    name: String,
    offset: usize,
    len: usize,
    decoded: OnceCell<Value>,
}

/// A parsed-but-mostly-undecoded `lim/snapshot-v1` container.
///
/// [`Snapshot::parse`] reads the magic and header lines and validates the
/// section table against the payload length; section payloads are JSON-
/// decoded only on the first [`Snapshot::section`] call — a boot that
/// never touches a section never pays for it.
#[derive(Debug)]
pub struct Snapshot {
    header: Value,
    kind: String,
    payload: Vec<u8>,
    sections: Vec<Section>,
}

impl Snapshot {
    /// Parses the container header; decodes no section payloads.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Magic`] on a wrong magic line,
    /// [`SnapshotError::Header`] on a malformed header, and
    /// [`SnapshotError::Truncated`] when a section's byte range runs past
    /// the end of the file.
    pub fn parse(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let magic_len = SNAPSHOT_FORMAT.len() + 1;
        if bytes.len() < magic_len
            || &bytes[..magic_len - 1] != SNAPSHOT_FORMAT.as_bytes()
            || bytes[magic_len - 1] != b'\n'
        {
            return Err(SnapshotError::Magic);
        }
        let rest = &bytes[magic_len..];
        let header_end = rest
            .iter()
            .position(|b| *b == b'\n')
            .ok_or_else(|| SnapshotError::Header("missing header line".into()))?;
        let header_text = std::str::from_utf8(&rest[..header_end])
            .map_err(|_| SnapshotError::Header("header is not UTF-8".into()))?;
        let header =
            lim_json::parse(header_text).map_err(|e| SnapshotError::Header(e.to_string()))?;
        if header.get("format").and_then(Value::as_str) != Some(SNAPSHOT_FORMAT) {
            return Err(SnapshotError::Header(format!(
                "format tag is not {SNAPSHOT_FORMAT:?}"
            )));
        }
        let kind = header
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| SnapshotError::Header("missing kind".into()))?
            .to_owned();
        let payload = rest[header_end + 1..].to_vec();
        let mut sections = Vec::new();
        for entry in header
            .get("sections")
            .and_then(Value::as_array)
            .ok_or_else(|| SnapshotError::Header("missing section table".into()))?
        {
            let name = entry
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| SnapshotError::Header("section entry missing name".into()))?
                .to_owned();
            let get = |key: &str| {
                entry
                    .get(key)
                    .and_then(Value::as_i64)
                    .ok_or_else(|| SnapshotError::Header(format!("section {name:?} missing {key}")))
            };
            let offset = get("offset")? as usize;
            let len = get("len")? as usize;
            if sections.iter().any(|s: &Section| s.name == name) {
                return Err(SnapshotError::Header(format!("duplicate section {name:?}")));
            }
            if offset.saturating_add(len) > payload.len() {
                return Err(SnapshotError::Truncated {
                    section: name,
                    expected: len,
                    available: payload.len().saturating_sub(offset.min(payload.len())),
                });
            }
            sections.push(Section {
                name,
                offset,
                len,
                decoded: OnceCell::new(),
            });
        }
        Ok(Self {
            header,
            kind,
            payload,
            sections,
        })
    }

    /// The snapshot kind (`"levels"` / `"checkpoint"`).
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// The decoded header document (identity fields live here).
    pub fn header(&self) -> &Value {
        &self.header
    }

    /// A header field, if present.
    pub fn header_field(&self, key: &str) -> Option<&Value> {
        self.header.get(key)
    }

    /// Names in the section table, in file order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|s| s.name.as_str()).collect()
    }

    /// Whether the table carries `name`.
    pub fn has_section(&self, name: &str) -> bool {
        self.sections.iter().any(|s| s.name == name)
    }

    /// Encoded byte length of a section, without decoding it.
    pub fn section_len(&self, name: &str) -> Option<usize> {
        self.sections.iter().find(|s| s.name == name).map(|s| s.len)
    }

    /// Total payload bytes after the header line.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Names of the sections that have actually been decoded so far —
    /// the observable half of the lazy-loading contract.
    pub fn decoded_sections(&self) -> Vec<&str> {
        self.sections
            .iter()
            .filter(|s| s.decoded.get().is_some())
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Enforces the versioning rule: every section in the file must be
    /// one this loader knows about.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnknownSection`] naming the first stranger.
    pub fn ensure_known(&self, known: &[&str]) -> Result<(), SnapshotError> {
        for section in &self.sections {
            if !known.contains(&section.name.as_str()) {
                return Err(SnapshotError::UnknownSection(section.name.clone()));
            }
        }
        Ok(())
    }

    /// The decoded document of section `name`, parsing it on first use.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MissingSection`] when absent from the table, or
    /// [`SnapshotError::Section`] when the payload is not valid JSON.
    pub fn section(&self, name: &str) -> Result<&Value, SnapshotError> {
        let section = self
            .sections
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| SnapshotError::MissingSection(name.to_owned()))?;
        if let Some(doc) = section.decoded.get() {
            return Ok(doc);
        }
        let bytes = &self.payload[section.offset..section.offset + section.len];
        let text = std::str::from_utf8(bytes).map_err(|_| SnapshotError::Section {
            section: name.to_owned(),
            message: "payload is not UTF-8".into(),
        })?;
        let doc = lim_json::parse(text).map_err(|e| SnapshotError::Section {
            section: name.to_owned(),
            message: e.to_string(),
        })?;
        Ok(section.decoded.get_or_init(|| doc))
    }
}

/// Appends the three levels sections to a snapshot under construction.
pub fn snapshot_levels(levels: &SearchLevels, writer: &mut SnapshotWriter) {
    snapshot_levels_prefixed(levels, writer, "");
}

/// [`snapshot_levels`] with every section name prefixed (e.g. `"t3."`)
/// — how a multi-tenant checkpoint stores each tenant's possibly-forked
/// levels side by side in one container.
pub fn snapshot_levels_prefixed(levels: &SearchLevels, writer: &mut SnapshotWriter, prefix: &str) {
    writer.add_section(
        &format!("{prefix}{SECTION_LEVELS}"),
        &Value::object([
            ("dim", Value::from(levels.embedder().dim())),
            ("tool_count", Value::from(levels.tool_count())),
            ("idf", idf_to_json(levels.embedder().idf())),
        ]),
    );
    let tool_index_doc = match levels.tool_index() {
        ToolIndex::Flat(index) => flat_to_json(index),
        ToolIndex::Ivf(index) => ivf_to_json(index),
        ToolIndex::Hnsw(index) => hnsw_to_json(index),
    };
    writer.add_section(&format!("{prefix}{SECTION_TOOL_INDEX}"), &tool_index_doc);
    writer.add_section(
        &format!("{prefix}{SECTION_CLUSTERS}"),
        &clusters_to_json(levels.clusters()),
    );
}

/// Encodes a standalone levels snapshot (`kind: "levels"`) with the
/// workload identity fields `lim serve --snapshot` validates at boot.
pub fn write_levels_snapshot(
    levels: &SearchLevels,
    benchmark: &str,
    seed: u64,
    pool_size: usize,
) -> Vec<u8> {
    let mut writer = SnapshotWriter::new("levels");
    writer.header_field("benchmark", Value::from(benchmark));
    writer.header_field("seed", Value::from(seed as i64));
    writer.header_field("pool_size", Value::from(pool_size));
    writer.header_field("tool_count", Value::from(levels.tool_count()));
    writer.header_field("dim", Value::from(levels.embedder().dim()));
    snapshot_levels(levels, &mut writer);
    writer.encode()
}

/// Rebuilds [`SearchLevels`] from a snapshot's levels sections, decoding
/// only those three — a checkpoint's warm sections stay untouched.
///
/// # Errors
///
/// [`SnapshotError::MissingSection`] / [`SnapshotError::Section`] when
/// the levels sections are absent or undecodable.
pub fn levels_from_snapshot(snapshot: &Snapshot) -> Result<SearchLevels, SnapshotError> {
    levels_from_snapshot_prefixed(snapshot, "")
}

/// [`levels_from_snapshot`] over prefixed section names (e.g. `"t3."`)
/// — the read side of [`snapshot_levels_prefixed`]. Errors carry the
/// prefixed section name, so a corrupt tenant section names itself.
///
/// # Errors
///
/// [`SnapshotError::MissingSection`] / [`SnapshotError::Section`] when
/// the prefixed levels sections are absent or undecodable.
pub fn levels_from_snapshot_prefixed(
    snapshot: &Snapshot,
    prefix: &str,
) -> Result<SearchLevels, SnapshotError> {
    fn section_err(section: &str) -> impl Fn(LoadLevelsError) -> SnapshotError + '_ {
        move |e| SnapshotError::Section {
            section: section.to_owned(),
            message: e.to_string(),
        }
    }
    let levels_name = format!("{prefix}{SECTION_LEVELS}");
    let tool_index_name = format!("{prefix}{SECTION_TOOL_INDEX}");
    let clusters_name = format!("{prefix}{SECTION_CLUSTERS}");
    let meta = snapshot.section(&levels_name)?;
    let dim = get_usize(meta, "dim").map_err(section_err(&levels_name))?;
    let tool_count = get_usize(meta, "tool_count").map_err(section_err(&levels_name))?;
    let idf = meta
        .get("idf")
        .ok_or_else(|| err("missing member").nest("idf"))
        .and_then(|d| idf_from_json(d).map_err(|e| e.nest("idf")))
        .map_err(section_err(&levels_name))?;
    let embedder = Embedder::builder().dim(dim).idf(idf).build();

    let tool_index_doc = snapshot.section(&tool_index_name)?;
    let index_err = |e: lim_vecstore::DecodeIndexError| SnapshotError::Section {
        section: tool_index_name.clone(),
        message: e.to_string(),
    };
    // The section is self-describing: dispatch on its kind tag so a
    // snapshot can carry whichever backend built the levels.
    let kind = tool_index_doc
        .get("kind")
        .and_then(Value::as_str)
        .unwrap_or("flat");
    let tool_index = match kind {
        "flat" => ToolIndex::Flat(flat_from_json(tool_index_doc).map_err(index_err)?),
        "ivf" => ToolIndex::Ivf(ivf_from_json(tool_index_doc).map_err(index_err)?),
        "hnsw" => ToolIndex::Hnsw(hnsw_from_json(tool_index_doc).map_err(index_err)?),
        other => {
            return Err(SnapshotError::Section {
                section: tool_index_name.clone(),
                message: format!("unknown index kind {other:?}"),
            })
        }
    };
    if tool_index.dim() != dim {
        return Err(SnapshotError::Section {
            section: tool_index_name.clone(),
            message: format!("index dim {} but levels dim {dim}", tool_index.dim()),
        });
    }

    let (clusters, cluster_index) = clusters_from_json(snapshot.section(&clusters_name)?, dim)
        .map_err(section_err(&clusters_name))?;

    Ok(SearchLevels::from_parts(
        embedder,
        tool_index,
        cluster_index,
        clusters,
        tool_count,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{ControllerConfig, ToolController};
    use lim_vecstore::VectorIndex;
    use lim_workloads::{bfcl, geoengine};

    #[test]
    fn roundtrip_preserves_structure() {
        let w = geoengine(3, 40);
        let levels = SearchLevels::build(&w);
        let doc = save_levels(&levels);
        let loaded = load_levels(&doc).expect("roundtrip succeeds");
        assert_eq!(loaded.tool_count(), levels.tool_count());
        assert_eq!(loaded.tool_index().len(), levels.tool_index().len());
        assert_eq!(loaded.clusters().len(), levels.clusters().len());
        for (a, b) in loaded.clusters().iter().zip(levels.clusters()) {
            assert_eq!(a.tool_indices, b.tool_indices);
        }
    }

    #[test]
    fn roundtrip_through_text_gives_identical_controller_decisions() {
        let w = bfcl(4, 40);
        let levels = SearchLevels::build(&w);
        let text = save_levels(&levels).to_string();
        let parsed = lim_json::parse(&text).expect("valid JSON");
        let loaded = load_levels(&parsed).expect("roundtrip succeeds");

        let recs = vec![
            "fetches current weather conditions of a city".to_owned(),
            "converts an amount of money between currencies".to_owned(),
        ];
        let original = ToolController::new(&levels, ControllerConfig::with_k(3))
            .select("weather in Paris then convert 10 USD", &recs);
        let restored = ToolController::new(&loaded, ControllerConfig::with_k(3))
            .select("weather in Paris then convert 10 USD", &recs);
        assert_eq!(original.level, restored.level);
        assert_eq!(original.tool_indices, restored.tool_indices);
        // f32 → f64 JSON roundtrip is exact for these magnitudes.
        assert!((original.level1_score - restored.level1_score).abs() < 1e-6);
    }

    #[test]
    fn rejects_wrong_format_and_corrupt_documents() {
        let w = bfcl(5, 10);
        let levels = SearchLevels::build(&w);
        let mut doc = save_levels(&levels);
        doc.insert("format", Value::from("other/9"));
        assert!(load_levels(&doc).is_err());

        for missing in ["dim", "idf", "tool_index", "clusters"] {
            let mut broken = save_levels(&levels);
            broken.insert(missing, Value::Null);
            assert!(load_levels(&broken).is_err(), "member {missing}");
        }
        assert!(load_levels(&Value::object::<&str, _>([])).is_err());
    }

    #[test]
    fn decode_errors_carry_the_field_path() {
        let w = bfcl(6, 10);
        let levels = SearchLevels::build(&w);

        // Corrupt one cluster's centroid: the breadcrumb must name the
        // cluster index and the field.
        let mut doc = save_levels(&levels);
        let mut clusters = doc.get("clusters").unwrap().as_array().unwrap().to_vec();
        let corrupt_at = clusters.len() - 1;
        clusters[corrupt_at].insert("centroid", Value::from("not-a-vector"));
        doc.insert("clusters", clusters.into_iter().collect::<Value>());
        let e = load_levels(&doc).expect_err("corrupt centroid");
        assert_eq!(e.path_string(), format!("clusters[{corrupt_at}].centroid"));
        assert!(e.to_string().contains(&format!("clusters[{corrupt_at}]")));

        // A malformed IDF entry points into idf.entries[i].
        let mut doc = save_levels(&levels);
        let mut idf = doc.get("idf").unwrap().clone();
        idf.insert("entries", Value::array([Value::from(3)]));
        doc.insert("idf", idf);
        let e = load_levels(&doc).expect_err("corrupt idf entry");
        assert_eq!(e.path_string(), "idf.entries[0]");

        // Top-level failures keep an empty path but still render.
        let e = load_levels(&Value::object::<&str, _>([])).expect_err("empty doc");
        assert_eq!(e.path_string(), "format");
    }

    #[test]
    fn embedder_idf_survives_roundtrip() {
        let w = bfcl(6, 10);
        let levels = SearchLevels::build(&w);
        let loaded = load_levels(&save_levels(&levels)).expect("roundtrip succeeds");
        // Same IDF weights ⇒ same embeddings for any runtime text.
        let text = "translate a document into French and display it";
        assert_eq!(levels.embedder().embed(text), loaded.embedder().embed(text));
    }

    #[test]
    fn snapshot_roundtrip_is_lazy_and_exact() {
        let w = bfcl(9, 30);
        let levels = SearchLevels::build(&w);
        let bytes = write_levels_snapshot(&levels, "bfcl", 9, 30);
        // Byte-determinism: encoding the same state twice is identical.
        assert_eq!(bytes, write_levels_snapshot(&levels, "bfcl", 9, 30));

        let snapshot = Snapshot::parse(&bytes).expect("valid snapshot");
        assert_eq!(snapshot.kind(), "levels");
        assert_eq!(
            snapshot.header_field("benchmark").and_then(Value::as_str),
            Some("bfcl")
        );
        assert_eq!(
            snapshot.section_names(),
            vec![SECTION_LEVELS, SECTION_TOOL_INDEX, SECTION_CLUSTERS]
        );
        // Nothing decoded until asked.
        assert!(snapshot.decoded_sections().is_empty());
        let _ = snapshot.section(SECTION_LEVELS).expect("levels decode");
        assert_eq!(snapshot.decoded_sections(), vec![SECTION_LEVELS]);

        let loaded = levels_from_snapshot(&snapshot).expect("levels load");
        assert_eq!(loaded.tool_count(), levels.tool_count());
        let text = "fetch the current weather and convert currencies";
        assert_eq!(levels.embedder().embed(text), loaded.embedder().embed(text));
        let q = levels.embedder().embed(text);
        assert_eq!(
            levels.tool_index().search(q.as_slice(), 3),
            loaded.tool_index().search(q.as_slice(), 3)
        );
    }

    #[test]
    fn snapshot_roundtrips_every_index_backend_exactly() {
        let w = bfcl(9, 30);
        for index in [
            crate::IndexSpec::Flat,
            crate::IndexSpec::Ivf(lim_vecstore::IvfParams::default()),
            crate::IndexSpec::Hnsw(lim_vecstore::HnswParams::default()),
        ] {
            let config = crate::LevelsConfig {
                index,
                ..crate::LevelsConfig::default()
            };
            let levels = SearchLevels::build_with(&w, &config);
            let bytes = write_levels_snapshot(&levels, "bfcl", 9, 30);
            let snapshot = Snapshot::parse(&bytes).expect("valid snapshot");
            let loaded = levels_from_snapshot(&snapshot).expect("levels load");
            assert_eq!(loaded.tool_index().kind(), index.kind());
            let q = levels
                .embedder()
                .embed("fetch the current weather and convert currencies");
            let a = levels.tool_index().search(q.as_slice(), 3);
            let b = loaded.tool_index().search(q.as_slice(), 3);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id, "backend {}", index.kind());
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    #[test]
    fn snapshot_rejects_unknown_index_kind() {
        let w = bfcl(9, 20);
        let levels = SearchLevels::build(&w);
        let mut writer = SnapshotWriter::new("levels");
        writer.add_section(
            SECTION_LEVELS,
            &Value::object([
                ("dim", Value::from(levels.embedder().dim())),
                ("tool_count", Value::from(levels.tool_count())),
                ("idf", idf_to_json(levels.embedder().idf())),
            ]),
        );
        let mut index_doc = flat_to_json(match levels.tool_index() {
            ToolIndex::Flat(index) => index,
            _ => unreachable!("default build is flat"),
        });
        index_doc.insert("kind", Value::from("pq"));
        writer.add_section(SECTION_TOOL_INDEX, &index_doc);
        writer.add_section(SECTION_CLUSTERS, &clusters_to_json(levels.clusters()));
        let snapshot = Snapshot::parse(&writer.encode()).expect("valid container");
        let e = levels_from_snapshot(&snapshot).unwrap_err();
        assert!(
            matches!(&e, SnapshotError::Section { message, .. } if message.contains("pq")),
            "{e:?}"
        );
    }

    #[test]
    fn snapshot_rejects_corruption_with_typed_errors() {
        let w = bfcl(9, 20);
        let levels = SearchLevels::build(&w);
        let bytes = write_levels_snapshot(&levels, "bfcl", 9, 20);

        // Wrong magic.
        assert_eq!(
            Snapshot::parse(b"not a snapshot").unwrap_err(),
            SnapshotError::Magic
        );
        // Truncation is caught at parse time, before any decode.
        let truncated = &bytes[..bytes.len() - 40];
        assert!(matches!(
            Snapshot::parse(truncated).unwrap_err(),
            SnapshotError::Truncated { .. }
        ));
        // Corrupting a section payload fails only that section's decode.
        let mut corrupt = bytes.clone();
        let len = corrupt.len();
        corrupt[len - 10] = b'!';
        let snapshot = Snapshot::parse(&corrupt).expect("header still parses");
        assert!(matches!(
            levels_from_snapshot(&snapshot).unwrap_err(),
            SnapshotError::Section { .. }
        ));
        // Unknown sections are an error under the versioning rule.
        let mut writer = SnapshotWriter::new("levels");
        snapshot_levels(&levels, &mut writer);
        writer.add_section("from_the_future", &Value::object::<&str, _>([]));
        let stranger = Snapshot::parse(&writer.encode()).expect("valid container");
        assert_eq!(
            stranger
                .ensure_known(&[SECTION_LEVELS, SECTION_TOOL_INDEX, SECTION_CLUSTERS])
                .unwrap_err(),
            SnapshotError::UnknownSection("from_the_future".into())
        );
    }
}
