//! Less-is-More: dynamic tool selection for hardware-efficient LLM
//! function calling on edge devices.
//!
//! This crate implements the paper's contribution end to end:
//!
//! * [`SearchLevels`] — the offline stage (§III-A): Level 1 embeds every
//!   tool description into a 768-d latent space `T̃`; Level 2 augments
//!   benchmark queries (GPT-4-substitute), embeds them into `Ã`, runs
//!   agglomerative clustering and derives *tool clusters* that capture
//!   co-usage; Level 3 is the plain full catalog.
//! * [`ToolController`] — the online stage (§III-C): k-NN search of the
//!   recommender's "ideal tool" embeddings against Levels 1 and 2, level
//!   arbitration by mean top-k similarity, and the two fallbacks to
//!   Level 3 (low confidence, runtime error).
//! * [`Pipeline`] — per-query execution under a [`Policy`]
//!   (Default / Gorilla / Less-is-More / ToolLLM-DFSDT), accounting
//!   success, tool accuracy, latency and energy on a
//!   [`lim_device::DeviceProfile`].
//! * [`evaluate`] / [`BatchMetrics`] — the paper's four metrics over query
//!   batches, plus normalization against the default policy.
//! * [`evaluate_parallel`] / [`Pipeline::run_all_parallel`] — the same
//!   evaluation sharded across worker threads, bit-identical to the
//!   sequential run (see the [`parallel`](crate::sharded_map) executor).
//!
//! # Examples
//!
//! ```
//! use lim_core::{Pipeline, Policy, SearchLevels};
//! use lim_llm::{ModelProfile, Quant};
//!
//! let workload = lim_workloads::bfcl(42, 20);
//! let levels = SearchLevels::build(&workload);
//! let model = ModelProfile::by_name("llama3.1-8b").expect("model exists");
//! let pipeline = Pipeline::new(&workload, &levels, &model, Quant::Q4KM);
//! let result = pipeline.run_query(&workload.queries[0], Policy::less_is_more(3));
//! assert!(result.cost.seconds > 0.0);
//! ```

mod controller;
mod levels;
mod metrics;
mod parallel;
pub mod persist;
mod pipeline;
mod service;
mod toolllm;

pub use controller::{ControllerConfig, SearchLevel, ToolController, ToolSelection};
pub use levels::{chain_coverage, IndexSpec, LevelsConfig, SearchLevels, ToolCluster, ToolIndex};
pub use metrics::{
    evaluate, evaluate_repeated, normalize_against, BatchMetrics, MeanCi, RepeatedMetrics,
};
pub use parallel::{evaluate_parallel, resolve_threads, shard_bounds, sharded_map};
pub use persist::{
    levels_from_snapshot, levels_from_snapshot_prefixed, load_levels, save_levels, snapshot_levels,
    snapshot_levels_prefixed, write_levels_snapshot, LoadLevelsError, Snapshot, SnapshotError,
    SnapshotWriter, SECTION_TOOL_INDEX, SNAPSHOT_FORMAT,
};
pub use pipeline::{
    Pipeline, Policy, QueryResult, QueryTrace, StepTrace, DEFAULT_CONTEXT, REDUCED_CONTEXT,
};
pub use service::{ServiceLevel, ServicePolicy};
pub use toolllm::{plan_dfsdt, DfsdtConfig, DfsdtPlan};

#[cfg(test)]
mod tests;
