//! The paper's four evaluation metrics over query batches (§IV).

use crate::controller::SearchLevel;
use crate::pipeline::{Pipeline, Policy, QueryResult};

/// Aggregated metrics for one (model, quant, policy) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchMetrics {
    /// Number of evaluated queries.
    pub queries: usize,
    /// Fraction of queries where every step chose the right tool *and*
    /// used it properly (correct argument types) — the paper's
    /// **Success Rate**.
    pub success_rate: f64,
    /// Fraction of queries where every step chose the right tool — the
    /// paper's **Tool Accuracy**.
    pub tool_accuracy: f64,
    /// Mean wall-clock seconds per query.
    pub avg_seconds: f64,
    /// Time-weighted average power over the batch, watts.
    pub avg_power_w: f64,
    /// Mean number of tools offered to the agent.
    pub avg_offered_tools: f64,
    /// Fraction of queries where the runtime error fallback fired.
    pub fallback_rate: f64,
    /// Fraction of queries decided at Search Level 1.
    pub level1_share: f64,
    /// Fraction of queries decided at Search Level 2.
    pub level2_share: f64,
    /// Fraction of queries decided at Search Level 3 (incl. confidence
    /// fallback; 1.0 for the default policy).
    pub level3_share: f64,
    /// Mean seconds spent in the recommender step.
    pub avg_recommender_seconds: f64,
}

impl BatchMetrics {
    /// Aggregates raw per-query results.
    ///
    /// Returns a zeroed record for an empty slice.
    pub fn from_results(results: &[QueryResult]) -> Self {
        let n = results.len();
        if n == 0 {
            return BatchMetrics {
                queries: 0,
                success_rate: 0.0,
                tool_accuracy: 0.0,
                avg_seconds: 0.0,
                avg_power_w: 0.0,
                avg_offered_tools: 0.0,
                fallback_rate: 0.0,
                level1_share: 0.0,
                level2_share: 0.0,
                level3_share: 0.0,
                avg_recommender_seconds: 0.0,
            };
        }
        let nf = n as f64;
        let total_seconds: f64 = results.iter().map(|r| r.cost.seconds).sum();
        let total_joules: f64 = results.iter().map(|r| r.cost.joules).sum();
        let share = |level: SearchLevel| {
            results.iter().filter(|r| r.level == Some(level)).count() as f64 / nf
        };
        BatchMetrics {
            queries: n,
            success_rate: results.iter().filter(|r| r.success).count() as f64 / nf,
            tool_accuracy: results.iter().filter(|r| r.tool_correct).count() as f64 / nf,
            avg_seconds: total_seconds / nf,
            avg_power_w: if total_seconds > 0.0 {
                total_joules / total_seconds
            } else {
                0.0
            },
            avg_offered_tools: results.iter().map(|r| r.offered_tools as f64).sum::<f64>() / nf,
            fallback_rate: results.iter().filter(|r| r.fell_back).count() as f64 / nf,
            level1_share: share(SearchLevel::Individual),
            level2_share: share(SearchLevel::Cluster),
            level3_share: results
                .iter()
                .filter(|r| r.level == Some(SearchLevel::Full) || r.level.is_none())
                .count() as f64
                / nf,
            avg_recommender_seconds: results.iter().map(|r| r.recommender_seconds).sum::<f64>()
                / nf,
        }
    }
}

/// Runs the whole workload under `policy` and aggregates.
pub fn evaluate(pipeline: &Pipeline<'_>, policy: Policy) -> BatchMetrics {
    BatchMetrics::from_results(&pipeline.run_all(policy))
}

/// A mean with a 95% confidence half-width (normal approximation over
/// per-seed repetitions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Sample mean over repetitions.
    pub mean: f64,
    /// 95% confidence half-width (`1.96 · σ/√n`; 0 for a single run).
    pub half_width: f64,
}

impl MeanCi {
    /// Computes mean and CI from samples. Empty input yields zeros.
    pub fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return Self {
                mean: 0.0,
                half_width: 0.0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Self {
                mean,
                half_width: 0.0,
            };
        }
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1) as f64;
        Self {
            mean,
            half_width: 1.96 * (var / n as f64).sqrt(),
        }
    }

    /// Whether another interval overlaps this one.
    pub fn overlaps(&self, other: &MeanCi) -> bool {
        (self.mean - other.mean).abs() <= self.half_width + other.half_width
    }
}

impl std::fmt::Display for MeanCi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.half_width)
    }
}

/// The four paper metrics aggregated over repeated seeded runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepeatedMetrics {
    /// Number of repetitions.
    pub runs: usize,
    /// Success rate across runs.
    pub success_rate: MeanCi,
    /// Tool accuracy across runs.
    pub tool_accuracy: MeanCi,
    /// Mean per-query seconds across runs.
    pub avg_seconds: MeanCi,
    /// Mean power across runs.
    pub avg_power_w: MeanCi,
}

/// Evaluates `policy` once per seed and aggregates with confidence
/// intervals — the statistically honest form of the figure numbers.
pub fn evaluate_repeated(
    pipeline: &Pipeline<'_>,
    policy: Policy,
    seeds: &[u64],
) -> RepeatedMetrics {
    let batches: Vec<BatchMetrics> = seeds
        .iter()
        .map(|seed| evaluate(&pipeline.clone().with_seed(*seed), policy))
        .collect();
    let collect = |f: fn(&BatchMetrics) -> f64| {
        MeanCi::from_samples(&batches.iter().map(f).collect::<Vec<f64>>())
    };
    RepeatedMetrics {
        runs: seeds.len(),
        success_rate: collect(|b| b.success_rate),
        tool_accuracy: collect(|b| b.tool_accuracy),
        avg_seconds: collect(|b| b.avg_seconds),
        avg_power_w: collect(|b| b.avg_power_w),
    }
}

/// Time and power of `metrics` normalized against a baseline (the paper's
/// Normalized Execution Time and Normalized Power, baseline = default
/// policy). Values below 1.0 mean the policy is cheaper.
pub fn normalize_against(baseline: &BatchMetrics, metrics: &BatchMetrics) -> (f64, f64) {
    let time = if baseline.avg_seconds > 0.0 {
        metrics.avg_seconds / baseline.avg_seconds
    } else {
        0.0
    };
    let power = if baseline.avg_power_w > 0.0 {
        metrics.avg_power_w / baseline.avg_power_w
    } else {
        0.0
    };
    (time, power)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lim_device::QueryCost;

    fn result(success: bool, tool: bool, seconds: f64, watts: f64) -> QueryResult {
        QueryResult {
            query_id: 0,
            success,
            tool_correct: tool,
            cost: QueryCost {
                seconds,
                joules: watts * seconds,
            },
            recommender_seconds: 0.1,
            level: Some(SearchLevel::Individual),
            offered_tools: 3,
            fell_back: false,
        }
    }

    #[test]
    fn aggregation_matches_hand_computation() {
        let rs = vec![
            result(true, true, 2.0, 20.0),
            result(false, true, 4.0, 30.0),
            result(false, false, 6.0, 25.0),
        ];
        let m = BatchMetrics::from_results(&rs);
        assert_eq!(m.queries, 3);
        assert!((m.success_rate - 1.0 / 3.0).abs() < 1e-9);
        assert!((m.tool_accuracy - 2.0 / 3.0).abs() < 1e-9);
        assert!((m.avg_seconds - 4.0).abs() < 1e-9);
        // (40 + 120 + 150) / 12 joules-per-second.
        assert!((m.avg_power_w - 310.0 / 12.0).abs() < 1e-9);
        assert!((m.level1_share - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_results_are_zeroed() {
        let m = BatchMetrics::from_results(&[]);
        assert_eq!(m.queries, 0);
        assert_eq!(m.avg_power_w, 0.0);
    }

    #[test]
    fn normalization_is_a_ratio() {
        let base = BatchMetrics::from_results(&[result(true, true, 10.0, 30.0)]);
        let fast = BatchMetrics::from_results(&[result(true, true, 3.0, 24.0)]);
        let (t, p) = normalize_against(&base, &fast);
        assert!((t - 0.3).abs() < 1e-9);
        assert!((p - 0.8).abs() < 1e-9);
    }

    #[test]
    fn mean_ci_from_samples() {
        let ci = MeanCi::from_samples(&[1.0, 2.0, 3.0]);
        assert!((ci.mean - 2.0).abs() < 1e-9);
        // σ = 1, n = 3 → hw = 1.96/√3.
        assert!((ci.half_width - 1.96 / 3f64.sqrt()).abs() < 1e-9);
        assert_eq!(MeanCi::from_samples(&[]).mean, 0.0);
        assert_eq!(MeanCi::from_samples(&[5.0]).half_width, 0.0);
    }

    #[test]
    fn mean_ci_overlap() {
        let a = MeanCi {
            mean: 1.0,
            half_width: 0.2,
        };
        let b = MeanCi {
            mean: 1.3,
            half_width: 0.2,
        };
        let c = MeanCi {
            mean: 2.0,
            half_width: 0.1,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.to_string(), "1.000 ± 0.200");
    }

    #[test]
    fn evaluate_repeated_tightens_with_more_seeds() {
        let w = lim_workloads::bfcl(31, 30);
        let levels = crate::SearchLevels::build(&w);
        let model = lim_llm::ModelProfile::by_name("qwen2-7b").expect("model exists");
        let pipeline = Pipeline::new(&w, &levels, &model, lim_llm::Quant::Q4KM);
        let few = evaluate_repeated(&pipeline, Policy::Default, &[1, 2]);
        let many = evaluate_repeated(&pipeline, Policy::Default, &(1..=8).collect::<Vec<u64>>());
        assert_eq!(few.runs, 2);
        assert_eq!(many.runs, 8);
        // More repetitions should not widen the interval (same generator).
        assert!(many.success_rate.half_width <= few.success_rate.half_width + 0.05);
        assert!(many.success_rate.mean > 0.0 && many.success_rate.mean < 1.0);
    }
}
