//! The runtime service-level ladder and its single actuation surface.
//!
//! Historically the serving layer had exactly one way to change what a
//! request is offered at runtime: the ad-hoc
//! `ToolController::downgrade_to_full` call hard-wired into the admission
//! shed path. Energy-aware serving needs a second actuator (a power-budget
//! governor), and rather than bake in a second special case, both now go
//! through one typed surface: a [`ServiceLevel`] ladder (selection level ×
//! quant profile) actuated via [`ServicePolicy::actuate`].

use lim_llm::Quant;

use crate::controller::{ToolController, ToolSelection};

/// A rung on the runtime service ladder.
///
/// Each rung fixes *how a request is served*: which tool-selection
/// machinery runs and which quantization profile executes the call. The
/// ladder is ordered by fidelity; actuators only ever move along it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ServiceLevel {
    /// Configured selection policy at the configured quant — the normal
    /// full-fidelity service.
    #[default]
    Full,
    /// Same selection machinery, one quant step coarser — the energy
    /// governor's descent rung: fewer weight bytes per call, lower
    /// joules/request, slightly lower per-call competence.
    Economy,
    /// Selection-free Level-3 full catalog at the configured quant — the
    /// admission shed-path degrade (what `downgrade_to_full` used to do):
    /// zero selection work, vanilla function calling.
    Floor,
}

impl ServiceLevel {
    /// All rungs, highest fidelity first.
    pub const LADDER: [ServiceLevel; 3] = [
        ServiceLevel::Full,
        ServiceLevel::Economy,
        ServiceLevel::Floor,
    ];

    /// Stable label used in reports and checkpoints.
    pub fn label(self) -> &'static str {
        match self {
            ServiceLevel::Full => "full",
            ServiceLevel::Economy => "economy",
            ServiceLevel::Floor => "floor",
        }
    }

    /// Parses a [`ServiceLevel::label`] back (checkpoint restore).
    pub fn from_label(s: &str) -> Option<ServiceLevel> {
        match s {
            "full" => Some(ServiceLevel::Full),
            "economy" => Some(ServiceLevel::Economy),
            "floor" => Some(ServiceLevel::Floor),
            _ => None,
        }
    }

    /// The quant profile this rung executes at, given the configured one.
    ///
    /// `Economy` steps one rung down the bits-per-weight ladder
    /// (f16 → q8_0 → q4_K_M → q4_0, with q4_1 → q4_0); `q4_0` is already
    /// the coarsest variant and stays put. `Full` and `Floor` run the
    /// configured quant unchanged — `Floor` degrades *selection*, not the
    /// model.
    pub fn quant_for(self, configured: Quant) -> Quant {
        match self {
            ServiceLevel::Full | ServiceLevel::Floor => configured,
            ServiceLevel::Economy => match configured {
                Quant::F16 => Quant::Q8_0,
                Quant::Q8_0 => Quant::Q4KM,
                Quant::Q4KM | Quant::Q4_1 | Quant::Q4_0 => Quant::Q4_0,
            },
        }
    }
}

impl std::fmt::Display for ServiceLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The single runtime actuation surface for changing service level.
///
/// Every actuator — admission shed-path degrade, the energy governor,
/// future thermal/battery/price policies — requests a [`ServiceLevel`]
/// through this trait instead of calling bespoke controller entry points.
pub trait ServicePolicy {
    /// Produces the tool selection that serves a request at `level`.
    ///
    /// `contexts` are the query's `Ẽ` context embeddings (as fed to
    /// `ToolController::select_embedded`); rungs that skip selection
    /// ([`ServiceLevel::Floor`]) ignore them, so callers on the floor path
    /// may pass `&[]` and skip computing them entirely.
    fn actuate(&self, level: ServiceLevel, contexts: &[lim_embed::Embedding]) -> ToolSelection;
}

impl ServicePolicy for ToolController<'_> {
    fn actuate(&self, level: ServiceLevel, contexts: &[lim_embed::Embedding]) -> ToolSelection {
        match level {
            // Full and Economy differ only in execution quant, which the
            // pipeline applies; the selection machinery is identical.
            ServiceLevel::Full | ServiceLevel::Economy => self.select_embedded(contexts),
            // The Level-3 floor: the whole catalog, zero selection work.
            // Under queue pressure a request skips the recommender, the Ẽ
            // embeddings and the k-NN arbitration entirely — the selection
            // stage contributes nothing to a degraded request's latency.
            ServiceLevel::Floor => self.floor_selection(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{ControllerConfig, SearchLevel};
    use crate::levels::SearchLevels;
    use lim_workloads::bfcl;

    #[test]
    fn labels_round_trip() {
        for level in ServiceLevel::LADDER {
            assert_eq!(ServiceLevel::from_label(level.label()), Some(level));
        }
        assert_eq!(ServiceLevel::from_label("turbo"), None);
    }

    #[test]
    fn economy_strictly_reduces_bits_except_at_the_coarsest() {
        for q in Quant::ALL {
            let eco = ServiceLevel::Economy.quant_for(q);
            if q == Quant::Q4_0 {
                assert_eq!(eco, Quant::Q4_0);
            } else {
                assert!(
                    eco.bits_per_weight() < q.bits_per_weight(),
                    "{q} -> {eco} must shed bits"
                );
            }
        }
    }

    #[test]
    fn full_and_floor_keep_the_configured_quant() {
        for q in Quant::ALL {
            assert_eq!(ServiceLevel::Full.quant_for(q), q);
            assert_eq!(ServiceLevel::Floor.quant_for(q), q);
        }
    }

    #[test]
    fn floor_actuation_matches_the_old_downgrade_entry_point() {
        let w = bfcl(1, 30);
        let levels = SearchLevels::build(&w);
        let c = ToolController::new(&levels, ControllerConfig::default());
        #[allow(deprecated)]
        let old = c.downgrade_to_full();
        let new = c.actuate(ServiceLevel::Floor, &[]);
        assert_eq!(old, new);
        assert_eq!(new.level, SearchLevel::Full);
        assert_eq!(new.tool_indices, levels.full_level());
    }

    #[test]
    fn full_and_economy_actuate_the_same_selection() {
        let w = bfcl(2, 30);
        let levels = SearchLevels::build(&w);
        let c = ToolController::new(&levels, ControllerConfig::with_k(3));
        let contexts = vec![levels.embedder().embed_with_context(
            "What's the weather like in Paris right now?",
            "fetches the current weather conditions for a city",
        )];
        let full = c.actuate(ServiceLevel::Full, &contexts);
        let eco = c.actuate(ServiceLevel::Economy, &contexts);
        assert_eq!(full, eco, "economy changes quant, not selection");
        assert_eq!(full, c.select_embedded(&contexts));
    }

    #[test]
    fn floor_ignores_contexts() {
        let w = bfcl(3, 30);
        let levels = SearchLevels::build(&w);
        let c = ToolController::new(&levels, ControllerConfig::default());
        let contexts = vec![levels.embedder().embed_with_context("q", "r")];
        assert_eq!(
            c.actuate(ServiceLevel::Floor, &contexts),
            c.actuate(ServiceLevel::Floor, &[])
        );
    }
}
