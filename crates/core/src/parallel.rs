//! Sharded parallel batch evaluation.
//!
//! Production serving and benchmark sweeps are throughput-bound on query
//! batches, while [`Pipeline::run_query`] is a pure function of
//! `(query, policy, pipeline seed)` — every stochastic draw derives its
//! own seed from those inputs, never from execution order. That purity is
//! what this module exploits: a batch is split into **contiguous shards**,
//! one `std::thread` scope runs each shard, and the per-shard outputs are
//! stitched back together in canonical (input) order. The merged result is
//! therefore **bit-identical** to the sequential run for every thread
//! count — `tests/parallel.rs` and the property test below prove it.
//!
//! No runtime dependency is involved: plain [`std::thread::scope`].
//!
//! # Examples
//!
//! ```
//! use lim_core::{evaluate, evaluate_parallel, Pipeline, Policy, SearchLevels};
//! use lim_llm::{ModelProfile, Quant};
//!
//! let workload = lim_workloads::bfcl(7, 16);
//! let levels = SearchLevels::build(&workload);
//! let model = ModelProfile::by_name("qwen2-7b").expect("model exists");
//! let pipeline = Pipeline::new(&workload, &levels, &model, Quant::Q4KM);
//! let sequential = evaluate(&pipeline, Policy::less_is_more(3));
//! let parallel = evaluate_parallel(&pipeline, Policy::less_is_more(3), 4);
//! assert_eq!(sequential, parallel);
//! ```

use crate::metrics::BatchMetrics;
use crate::pipeline::{Pipeline, Policy, QueryResult};

/// Resolves a requested thread count: `0` means "use the machine's
/// available parallelism", anything else is taken as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Splits `n` items into at most `threads` contiguous shards whose sizes
/// differ by at most one (the first `n % threads` shards are longer).
///
/// For nonzero `threads` the boundaries depend only on `(n, threads)`,
/// making shard assignment reproducible across runs and machines;
/// `threads == 0` resolves to the machine's parallelism first. Either
/// way [`sharded_map`] merges in canonical order, so outputs never
/// depend on the boundary placement.
pub fn shard_bounds(n: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let threads = resolve_threads(threads).min(n.max(1));
    let base = n / threads;
    let extra = n % threads;
    let mut bounds = Vec::with_capacity(threads);
    let mut start = 0;
    for shard in 0..threads {
        let len = base + usize::from(shard < extra);
        if len == 0 {
            break;
        }
        bounds.push(start..start + len);
        start += len;
    }
    bounds
}

/// Applies `f` to every item of `items` across `threads` worker threads
/// and returns the outputs **in input order**.
///
/// `f` receives the item's global index, so seeded work can key off the
/// canonical position rather than the executing thread. Shards are
/// contiguous [`shard_bounds`] slices; the output is the concatenation of
/// shard outputs in shard order, which equals the sequential map.
pub fn sharded_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let bounds = shard_bounds(items.len(), threads);
    // One shard (or a trivial batch): run inline, no thread overhead.
    if bounds.len() <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let mut merged = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|range| {
                let shard = &items[range.clone()];
                let offset = range.start;
                let f = &f;
                scope.spawn(move || {
                    shard
                        .iter()
                        .enumerate()
                        .map(|(i, x)| f(offset + i, x))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        for handle in handles {
            merged.extend(handle.join().expect("shard worker panicked"));
        }
    });
    merged
}

impl Pipeline<'_> {
    /// Runs every evaluation query under `policy` across `threads` worker
    /// threads (0 = available parallelism).
    ///
    /// Returns exactly what [`Pipeline::run_all`] returns, bit for bit:
    /// per-query outcomes depend only on the pipeline seed and the query,
    /// and shard outputs are merged in canonical order.
    pub fn run_all_parallel(&self, policy: Policy, threads: usize) -> Vec<QueryResult> {
        sharded_map(&self.workload().queries, threads, |_, query| {
            self.run_query(query, policy)
        })
    }
}

/// Parallel twin of [`crate::evaluate`]: runs the whole workload under
/// `policy` on `threads` threads (0 = available parallelism) and
/// aggregates. Bit-identical to the sequential evaluation.
pub fn evaluate_parallel(pipeline: &Pipeline<'_>, policy: Policy, threads: usize) -> BatchMetrics {
    BatchMetrics::from_results(&pipeline.run_all_parallel(policy, threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::SearchLevels;
    use crate::metrics::evaluate;
    use lim_llm::{ModelProfile, Quant};
    use proptest::prelude::*;

    #[test]
    fn shard_bounds_partition_exactly() {
        for (n, t) in [(0, 4), (1, 4), (7, 3), (8, 3), (9, 3), (230, 8), (5, 16)] {
            let bounds = shard_bounds(n, t);
            let mut expected_start = 0;
            for b in &bounds {
                assert_eq!(b.start, expected_start, "n={n} t={t}");
                assert!(!b.is_empty(), "empty shard for n={n} t={t}");
                expected_start = b.end;
            }
            assert_eq!(expected_start, n, "n={n} t={t}");
            if n > 0 {
                let sizes: Vec<usize> = bounds.iter().map(std::ops::Range::len).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "unbalanced shards {sizes:?}");
            }
        }
    }

    #[test]
    fn sharded_map_preserves_order() {
        let items: Vec<usize> = (0..103).collect();
        let doubled = sharded_map(&items, 5, |ix, &x| {
            assert_eq!(ix, x, "global index must match item position");
            x * 2
        });
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_resolves_to_machine_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn parallel_results_are_bit_identical_across_thread_counts() {
        let w = lim_workloads::geoengine(21, 30);
        let levels = SearchLevels::build(&w);
        let model = ModelProfile::by_name("llama3.1-8b").expect("model exists");
        let pipeline = Pipeline::new(&w, &levels, &model, Quant::Q4KM).with_seed(77);
        for policy in [
            Policy::Default,
            Policy::Gorilla { k: 3 },
            Policy::less_is_more(3),
        ] {
            let sequential = pipeline.run_all(policy);
            for threads in [1, 2, 3, 8, 64] {
                let parallel = pipeline.run_all_parallel(policy, threads);
                assert_eq!(sequential, parallel, "threads={threads}");
            }
        }
    }

    /// Shared fixture: workload construction and level building dominate
    /// the property test's runtime, and the pipeline seed (not the
    /// workload seed) is what varies per case.
    fn fixture() -> &'static (lim_workloads::Workload, SearchLevels, ModelProfile) {
        use std::sync::OnceLock;
        static FIXTURE: OnceLock<(lim_workloads::Workload, SearchLevels, ModelProfile)> =
            OnceLock::new();
        FIXTURE.get_or_init(|| {
            let w = lim_workloads::bfcl(11, 24);
            let levels = SearchLevels::build(&w);
            let model = ModelProfile::by_name("qwen2-7b").expect("model exists");
            (w, levels, model)
        })
    }

    proptest! {
        /// For random pipeline seeds, policies and thread counts 1–8, the
        /// parallel evaluation equals the sequential one bit for bit.
        #[test]
        fn evaluate_parallel_equals_sequential(
            seed in 0u64..1_000,
            threads in 1usize..9,
            policy_ix in 0usize..3,
            quant_ix in 0usize..5,
        ) {
            let (w, levels, model) = fixture();
            let quant = Quant::ALL[quant_ix];
            let policy = [Policy::Default, Policy::Gorilla { k: 3 }, Policy::less_is_more(3)]
                [policy_ix];
            let pipeline = Pipeline::new(w, levels, model, quant).with_seed(seed);
            let sequential = evaluate(&pipeline, policy);
            let parallel = evaluate_parallel(&pipeline, policy, threads);
            prop_assert_eq!(sequential, parallel);
        }
    }
}
