//! ToolLLM-style DFSDT baseline and its on-board feasibility gate.
//!
//! The paper: "We also attempted to compare against ToolLLM, but its
//! tree-based exploration could not fit on the board" (§IV). ToolLLM's
//! DFSDT (depth-first search decision tree) keeps several live branches,
//! each with its own context state, and re-presents the full tool list at
//! every expansion. This module *plans* such a run — memory footprint,
//! node count, projected latency/energy — so the benchmark harness can
//! demonstrate both failure modes: DRAM exhaustion on smaller boards and
//! an order-of-magnitude cost blow-up where it does fit.

use lim_device::{AllocationError, DeviceProfile, EnergyMeter, MemoryLedger};
use lim_llm::timing::{phases, resident_bytes, InferenceRequest};
use lim_llm::{ModelProfile, Quant};
use lim_workloads::Workload;

/// DFSDT search shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfsdtConfig {
    /// Live branches kept during the search (ToolLLM defaults to a wide
    /// frontier so it can backtrack).
    pub beam_width: usize,
    /// Expansion depth (tool-call decisions per query).
    pub depth: usize,
    /// Context window each branch must hold (full tool list + history).
    pub context_tokens: u32,
}

impl Default for DfsdtConfig {
    fn default() -> Self {
        Self {
            beam_width: 12,
            depth: 3,
            context_tokens: 16_384,
        }
    }
}

/// A feasible DFSDT plan with projected costs.
#[derive(Debug, Clone, PartialEq)]
pub struct DfsdtPlan {
    /// LLM calls the search will issue per query.
    pub nodes_expanded: usize,
    /// Peak DRAM the search needs, bytes.
    pub peak_memory_bytes: u64,
    /// Projected seconds per query.
    pub seconds_per_query: f64,
    /// Projected energy per query, joules.
    pub joules_per_query: f64,
}

/// Plans a DFSDT run of `model` over `workload` on `device`.
///
/// # Errors
///
/// Returns the [`AllocationError`] raised by the memory ledger when the
/// frontier cannot fit — the paper's observed outcome on its board.
pub fn plan_dfsdt(
    workload: &Workload,
    model: &ModelProfile,
    quant: Quant,
    device: &DeviceProfile,
    config: &DfsdtConfig,
) -> Result<DfsdtPlan, AllocationError> {
    // ---- Memory gate: weights once, one full KV allocation per branch.
    let mut ledger = MemoryLedger::new(device.memory_bytes());
    // The OS and runtime own a slice of DRAM on an embedded board.
    ledger.allocate("system-reserved", 4 * 1024 * 1024 * 1024)?;
    let weights = model.arch.weight_bytes(quant) as u64;
    ledger.allocate("weights", weights)?;
    let per_branch =
        (model.arch.kv_bytes_per_token() * f64::from(config.context_tokens)) as u64 + 300_000_000; // per-branch runtime workspace
    for branch in 0..config.beam_width {
        ledger.allocate(format!("branch-{branch}-kv"), per_branch)?;
    }

    // ---- Cost projection: every node re-presents the full tool list.
    let full_tools_chars = workload
        .registry
        .prompt_chars(&(0..workload.registry.len()).collect::<Vec<_>>());
    let prompt_tokens = (full_tools_chars as f64 / 4.0).ceil() as u32 + 200;
    let nodes = config.beam_width * config.depth;
    let mut meter = EnergyMeter::new();
    for _ in 0..nodes {
        let request = InferenceRequest {
            prompt_tokens,
            decode_tokens: model.call_tokens + 40, // thought + call per node
            context_tokens: config.context_tokens,
        };
        for phase in phases(model, quant, &request) {
            meter.record(device.run_phase(&phase));
        }
    }
    let total = meter.total();

    // Consistency check with the simpler resident-size model.
    debug_assert!(
        resident_bytes(model, quant, config.context_tokens) <= ledger.capacity(),
        "single-branch serving should be the easy case"
    );

    Ok(DfsdtPlan {
        nodes_expanded: nodes,
        peak_memory_bytes: ledger.used(),
        seconds_per_query: total.seconds,
        joules_per_query: total.joules,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lim_workloads::geoengine;

    #[test]
    fn dfsdt_overflows_a_32gb_board() {
        // An AGX Orin 32 GB configuration: the frontier cannot fit.
        let device = DeviceProfile::new(
            "jetson-agx-orin-32gb",
            32 * 1024 * 1024 * 1024,
            133.0e9,
            20.0e12,
            9.0,
            1.23e-12,
            60.0e-12,
            267.0e-12,
        );
        let w = geoengine(1, 10);
        let model = ModelProfile::by_name("llama3.1-8b").unwrap();
        let err = plan_dfsdt(&w, &model, Quant::Q4KM, &device, &DfsdtConfig::default());
        assert!(err.is_err(), "DFSDT should not fit on 32 GB");
    }

    #[test]
    fn dfsdt_fits_on_64gb_but_costs_an_order_of_magnitude_more() {
        let device = DeviceProfile::jetson_agx_orin();
        let w = geoengine(1, 10);
        let model = ModelProfile::by_name("llama3.1-8b").unwrap();
        let plan = plan_dfsdt(&w, &model, Quant::Q4KM, &device, &DfsdtConfig::default())
            .expect("fits on 64 GB");
        assert_eq!(plan.nodes_expanded, 36);
        // A default-policy geo query is ~20-30 s; DFSDT must be far worse.
        assert!(
            plan.seconds_per_query > 60.0,
            "DFSDT cost {:.1}s per query",
            plan.seconds_per_query
        );
    }

    #[test]
    fn smaller_beam_reduces_memory() {
        let device = DeviceProfile::jetson_agx_orin();
        let w = geoengine(1, 10);
        let model = ModelProfile::by_name("llama3.1-8b").unwrap();
        let wide = plan_dfsdt(&w, &model, Quant::Q4KM, &device, &DfsdtConfig::default()).unwrap();
        let narrow = plan_dfsdt(
            &w,
            &model,
            Quant::Q4KM,
            &device,
            &DfsdtConfig {
                beam_width: 2,
                ..DfsdtConfig::default()
            },
        )
        .unwrap();
        assert!(narrow.peak_memory_bytes < wide.peak_memory_bytes);
        assert!(narrow.nodes_expanded < wide.nodes_expanded);
    }
}
