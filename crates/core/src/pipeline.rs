//! Per-query execution under a tool-presentation policy.

use lim_device::{DeviceProfile, EnergyMeter, QueryCost};
use lim_llm::{
    agent::CallAttempt,
    recommender::recommend_descriptions,
    timing::{phases, InferenceRequest},
    tokens, ModelProfile, Quant, TaskKind,
};
use lim_vecstore::VectorIndex;
use lim_workloads::{Query, Workload, WorkloadKind};

use crate::controller::{ControllerConfig, SearchLevel, ToolController, ToolSelection};
use crate::levels::SearchLevels;

/// Context window (tokens) for the default all-tools policy (§IV: 16k).
pub const DEFAULT_CONTEXT: u32 = 16_384;
/// Context window for Gorilla and Less-is-More (§IV: reduced to 8k).
pub const REDUCED_CONTEXT: u32 = 8_192;
/// Simulated length (characters) of one upstream step result appended to
/// the prompt of later chain steps.
const HISTORY_CHARS_PER_STEP: usize = 320;

/// A tool-presentation policy under evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Vanilla function calling: all tools, 16k context.
    Default,
    /// Gorilla-style retrieval: top-k tools by *query* embedding against
    /// the whole tool ontology, once per query, 8k context. This "closely
    /// resembles running only Level 1" (§III-C) and cannot adapt to later
    /// chain steps.
    Gorilla {
        /// Number of tools retrieved.
        k: usize,
    },
    /// The paper's method: recommender + controller + fallbacks, 8k
    /// context (16k on Level-3 fallback).
    LessIsMore {
        /// Controller configuration (k, confidence threshold).
        config: ControllerConfig,
    },
}

impl Policy {
    /// Less-is-More with the default confidence threshold and given `k`.
    pub fn less_is_more(k: usize) -> Policy {
        Policy::LessIsMore {
            config: ControllerConfig::with_k(k),
        }
    }

    /// Short display label (`"default"`, `"gorilla"`, `"lim-k3"`, …).
    pub fn label(&self) -> String {
        match self {
            Policy::Default => "default".into(),
            Policy::Gorilla { k } => format!("gorilla-k{k}"),
            Policy::LessIsMore { config } => format!("lim-k{}", config.k),
        }
    }

    fn context_tokens(&self) -> u32 {
        match self {
            Policy::Default => DEFAULT_CONTEXT,
            _ => REDUCED_CONTEXT,
        }
    }

    fn tag(&self) -> u64 {
        match self {
            Policy::Default => 1,
            Policy::Gorilla { .. } => 2,
            Policy::LessIsMore { .. } => 3,
        }
    }
}

/// Outcome and cost of one query under one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Id of the executed query.
    pub query_id: u64,
    /// All steps selected the correct tool *and* passed argument
    /// validation (the paper's Success Rate).
    pub success: bool,
    /// All steps selected the correct tool (the paper's Tool Accuracy).
    pub tool_correct: bool,
    /// Total latency and energy.
    pub cost: QueryCost,
    /// Seconds spent in the recommender step (zero for non-LiM policies).
    pub recommender_seconds: f64,
    /// Search level the controller committed to (None for Default).
    pub level: Option<SearchLevel>,
    /// Number of tools offered to the agent.
    pub offered_tools: usize,
    /// Whether the runtime error fallback to Level 3 fired.
    pub fell_back: bool,
}

/// Executes queries of one workload for one (model, quant) pair.
#[derive(Debug, Clone)]
pub struct Pipeline<'a> {
    workload: &'a Workload,
    levels: &'a SearchLevels,
    model: &'a ModelProfile,
    quant: Quant,
    device: DeviceProfile,
    seed: u64,
    /// Rendered full-catalog payload, cached — it is needed on every
    /// default-policy call and every fallback retry.
    full_json: String,
}

impl<'a> Pipeline<'a> {
    /// Creates a pipeline on the default device (Jetson AGX Orin).
    pub fn new(
        workload: &'a Workload,
        levels: &'a SearchLevels,
        model: &'a ModelProfile,
        quant: Quant,
    ) -> Self {
        Self {
            workload,
            levels,
            model,
            quant,
            device: DeviceProfile::jetson_agx_orin(),
            seed: 0x1E55_1530, // "less is more"
            full_json: workload.registry.render_all().to_string(),
        }
    }

    /// Replaces the device profile.
    pub fn with_device(mut self, device: DeviceProfile) -> Self {
        self.device = device;
        self
    }

    /// Replaces the base seed (experiments vary it across repetitions).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The workload this pipeline evaluates.
    pub fn workload(&self) -> &'a Workload {
        self.workload
    }

    /// The task regime of the underlying workload.
    pub fn task_kind(&self) -> TaskKind {
        match self.workload.kind {
            WorkloadKind::SingleCall => TaskKind::SingleCall,
            WorkloadKind::Sequential => TaskKind::Sequential,
        }
    }

    /// Runs every evaluation query under `policy`.
    pub fn run_all(&self, policy: Policy) -> Vec<QueryResult> {
        self.workload
            .queries
            .iter()
            .map(|q| self.run_query(q, policy))
            .collect()
    }

    /// Runs one query under `policy`.
    pub fn run_query(&self, query: &Query, policy: Policy) -> QueryResult {
        self.run_query_inner(query, policy, &mut None).0
    }

    /// Runs one query and captures a full [`QueryTrace`] — recommender
    /// output, controller decision, per-step attempt records and the
    /// device phase breakdown. Tracing does not change outcomes: the same
    /// seeds drive the same draws as [`Pipeline::run_query`].
    pub fn run_query_traced(&self, query: &Query, policy: Policy) -> (QueryResult, QueryTrace) {
        let mut trace = Some(QueryTrace::new(query.id, policy.label()));
        let (result, _) = self.run_query_inner(query, policy, &mut trace);
        (result, trace.expect("trace was installed"))
    }

    fn run_query_inner(
        &self,
        query: &Query,
        policy: Policy,
        trace: &mut Option<QueryTrace>,
    ) -> (QueryResult, ()) {
        let mut meter = EnergyMeter::new();
        let mut recommender_seconds = 0.0;
        let task = self.task_kind();

        // ---- Tool selection.
        let (selection, level) = match policy {
            Policy::Default => (None, None),
            Policy::Gorilla { k } => {
                let embedding = self.levels.embedder().embed(&query.text);
                let hits = self.levels.tool_index().search(embedding.as_slice(), k);
                let tools: Vec<usize> = hits.iter().map(|h| h.id as usize).collect();
                (
                    Some(ToolSelection {
                        level: SearchLevel::Individual,
                        tool_indices: tools,
                        level1_score: 0.0,
                        level2_score: 0.0,
                    }),
                    Some(SearchLevel::Individual),
                )
            }
            Policy::LessIsMore { config } => {
                // Recommender inference (no tools attached — §III-B).
                let rec_request = self.recommender_request(&query.text);
                for phase in phases(self.model, self.quant, &rec_request) {
                    let cost = self.device.run_phase(&phase);
                    recommender_seconds += cost.seconds;
                    meter.record(cost);
                }
                let gold_descriptions: Vec<String> = query
                    .steps
                    .iter()
                    .filter_map(|s| self.workload.registry.get_by_name(&s.tool))
                    .map(|t| t.description().to_owned())
                    .collect();
                let gold_refs: Vec<&str> = gold_descriptions.iter().map(String::as_str).collect();
                let recs = recommend_descriptions(
                    self.model,
                    self.quant,
                    &query.text,
                    &gold_refs,
                    self.attempt_seed(query.id, 0xEC, 0, policy.tag()),
                );
                if let Some(t) = trace.as_mut() {
                    t.recommendations = recs.clone();
                }
                let controller = ToolController::new(self.levels, config);
                let selection = controller.select(&query.text, &recs);
                let level = selection.level;
                (Some(selection), Some(level))
            }
        };
        if let Some(t) = trace.as_mut() {
            t.selection = selection.clone();
        }

        let offered: Vec<usize> = match &selection {
            Some(s) => s.tool_indices.clone(),
            None => self.levels.full_level(),
        };
        let tools_json = if offered.len() == self.workload.registry.len() {
            self.full_json.clone()
        } else {
            self.workload.registry.render_subset(&offered).to_string()
        };
        let full_json = self.full_json.as_str();
        let context = match &selection {
            // Confidence fallback to Level 3 runs like vanilla calling.
            Some(s) if s.level == SearchLevel::Full => DEFAULT_CONTEXT,
            _ => policy.context_tokens(),
        };

        // ---- Execute the gold chain step by step.
        let mut success = true;
        let mut tool_correct = true;
        let mut fell_back = false;

        for (step_index, step) in query.steps.iter().enumerate() {
            let gold_index = self
                .workload
                .registry
                .index_of(&step.tool)
                .expect("gold tool exists in registry");
            let history = "x".repeat(step_index * HISTORY_CHARS_PER_STEP);
            let prompt_tokens = tokens::agent_prompt_tokens(&query.text, &tools_json, &history);
            let fits = prompt_tokens <= context;
            let gold_offered = offered.contains(&gold_index) && fits;

            let attempt = CallAttempt {
                model: self.model,
                quant: self.quant,
                task,
                offered: offered.len(),
                gold_offered,
                seed: self.attempt_seed(query.id, step_index as u64, 0, policy.tag()),
            };
            let mut outcome = attempt.resolve();
            self.record_call(
                &mut meter,
                prompt_tokens,
                attempt.decode_tokens(outcome),
                context,
            );
            let mut retried = false;

            // Runtime error fallback (§III-C): on a signalled error,
            // Less-is-More retries the step with all tools at the default
            // context ("vanilla" function calling).
            if outcome == lim_llm::AgentOutcome::ErrorSignaled {
                if let Policy::LessIsMore { .. } = policy {
                    fell_back = true;
                    retried = true;
                    let retry = CallAttempt {
                        model: self.model,
                        quant: self.quant,
                        task,
                        offered: self.levels.tool_count(),
                        gold_offered: true,
                        seed: self.attempt_seed(query.id, step_index as u64, 1, policy.tag()),
                    };
                    outcome = retry.resolve();
                    let retry_prompt =
                        tokens::agent_prompt_tokens(&query.text, full_json, &history);
                    self.record_call(
                        &mut meter,
                        retry_prompt,
                        retry.decode_tokens(outcome),
                        DEFAULT_CONTEXT,
                    );
                }
            }

            if let Some(t) = trace.as_mut() {
                t.steps.push(StepTrace {
                    expected_tool: step.tool.clone(),
                    outcome,
                    offered: offered.len(),
                    prompt_tokens,
                    gold_offered,
                    retried,
                });
            }

            tool_correct &= outcome.tool_correct();
            success &= outcome.is_success();

            if outcome == lim_llm::AgentOutcome::ErrorSignaled {
                // The agent gave up; the chain cannot continue.
                break;
            }
        }

        if let Some(t) = trace.as_mut() {
            t.phases = meter.phases().to_vec();
        }

        let result = QueryResult {
            query_id: query.id,
            success,
            tool_correct,
            cost: meter.total(),
            recommender_seconds,
            level,
            offered_tools: offered.len(),
            fell_back,
        };
        (result, ())
    }

    /// Runs one query with a *manually fixed* tool subset and context
    /// window — the paper's Table II protocol, where 46 vs 19 tools and
    /// 16k vs 8k contexts are compared without any selection machinery.
    pub fn run_query_offered(
        &self,
        query: &Query,
        offered: &[usize],
        context_tokens: u32,
    ) -> QueryResult {
        let mut meter = EnergyMeter::new();
        let task = self.task_kind();
        let tools_json = self.workload.registry.render_subset(offered).to_string();
        let mut success = true;
        let mut tool_correct = true;

        for (step_index, step) in query.steps.iter().enumerate() {
            let gold_index = self
                .workload
                .registry
                .index_of(&step.tool)
                .expect("gold tool exists in registry");
            let history = "x".repeat(step_index * HISTORY_CHARS_PER_STEP);
            let prompt_tokens = tokens::agent_prompt_tokens(&query.text, &tools_json, &history);
            let gold_offered = offered.contains(&gold_index) && prompt_tokens <= context_tokens;
            let attempt = CallAttempt {
                model: self.model,
                quant: self.quant,
                task,
                offered: offered.len(),
                gold_offered,
                seed: self.attempt_seed(query.id, step_index as u64, 0, 7),
            };
            let outcome = attempt.resolve();
            self.record_call(
                &mut meter,
                prompt_tokens,
                attempt.decode_tokens(outcome),
                context_tokens,
            );
            tool_correct &= outcome.tool_correct();
            success &= outcome.is_success();
            if outcome == lim_llm::AgentOutcome::ErrorSignaled {
                break;
            }
        }

        QueryResult {
            query_id: query.id,
            success,
            tool_correct,
            cost: meter.total(),
            recommender_seconds: 0.0,
            level: None,
            offered_tools: offered.len(),
            fell_back: false,
        }
    }

    /// The inference request one recommender call issues for `query_text`
    /// (no tools attached, reduced context — §III-B).
    fn recommender_request(&self, query_text: &str) -> InferenceRequest {
        InferenceRequest {
            prompt_tokens: tokens::recommender_prompt_tokens(query_text),
            decode_tokens: self.model.recommend_tokens,
            context_tokens: REDUCED_CONTEXT,
        }
    }

    /// Device cost of one recommender inference for `query_text` — what a
    /// Less-is-More selection pays *before* any agent call. Serving-layer
    /// callers (see `lim-serve`) bill this on tool-selection cache misses.
    pub fn recommender_cost(&self, query_text: &str) -> QueryCost {
        let mut meter = EnergyMeter::new();
        let request = self.recommender_request(query_text);
        for phase in phases(self.model, self.quant, &request) {
            meter.record(self.device.run_phase(&phase));
        }
        meter.total()
    }

    /// See [`Pipeline::run_query_traced`]; this is the helper that builds
    /// the per-call device phases.
    fn record_call(&self, meter: &mut EnergyMeter, prompt: u32, decode: u32, context: u32) {
        let request = InferenceRequest {
            prompt_tokens: prompt,
            decode_tokens: decode,
            context_tokens: context,
        };
        for phase in phases(self.model, self.quant, &request) {
            meter.record(self.device.run_phase(&phase));
        }
    }

    fn attempt_seed(&self, query_id: u64, step: u64, attempt: u64, policy_tag: u64) -> u64 {
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(query_id.wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add(step.wrapping_mul(0x8CB9_2BA7_2F3D_8DD7))
            .wrapping_add(attempt.wrapping_mul(0x2545_F491_4F6C_DD1D))
            .wrapping_add(policy_tag.wrapping_mul(0x9E6D_62D0_6F6A_9A9B))
            // The model/quant identity must decorrelate draws too.
            .wrapping_add(self.model.name.len() as u64 * 0x0001_0000_01b3)
            .wrapping_add(self.model.name.as_bytes()[0] as u64)
            .wrapping_add(self.quant.bits_per_weight().to_bits());
        // SplitMix64 finaliser.
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

/// One agent call recorded by [`Pipeline::run_query_traced`].
#[derive(Debug, Clone, PartialEq)]
pub struct StepTrace {
    /// Gold tool the step was supposed to call.
    pub expected_tool: String,
    /// How the attempt resolved (after any fallback retry).
    pub outcome: lim_llm::AgentOutcome,
    /// Number of tools in the prompt.
    pub offered: usize,
    /// Prompt length in tokens.
    pub prompt_tokens: u32,
    /// Whether the gold tool was among the offered ones.
    pub gold_offered: bool,
    /// Whether the Level-3 error fallback re-ran this step.
    pub retried: bool,
}

/// Full execution record of one query: what the recommender said, what the
/// controller picked, what each step did and what the device billed.
///
/// Serializable via [`QueryTrace::to_json`] for offline analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// Query id.
    pub query_id: u64,
    /// Policy label the query ran under.
    pub policy: String,
    /// Recommender output (empty for non-LiM policies).
    pub recommendations: Vec<String>,
    /// Controller decision (None for the default policy).
    pub selection: Option<ToolSelection>,
    /// Per-step attempt records.
    pub steps: Vec<StepTrace>,
    /// Device phase breakdown, in execution order.
    pub phases: Vec<lim_device::PhaseCost>,
}

impl QueryTrace {
    fn new(query_id: u64, policy: String) -> Self {
        Self {
            query_id,
            policy,
            recommendations: Vec::new(),
            selection: None,
            steps: Vec::new(),
            phases: Vec::new(),
        }
    }

    /// Serializes the trace to JSON for logging or offline analysis.
    pub fn to_json(&self) -> lim_json::Value {
        use lim_json::Value;
        let steps: Value = self
            .steps
            .iter()
            .map(|s| {
                Value::object([
                    ("expected_tool", Value::from(s.expected_tool.as_str())),
                    ("outcome", Value::from(format!("{:?}", s.outcome))),
                    ("offered", Value::from(s.offered)),
                    ("prompt_tokens", Value::from(i64::from(s.prompt_tokens))),
                    ("gold_offered", Value::from(s.gold_offered)),
                    ("retried", Value::from(s.retried)),
                ])
            })
            .collect();
        let phases: Value = self
            .phases
            .iter()
            .map(|p| {
                Value::object([
                    ("label", Value::from(p.label.as_str())),
                    ("seconds", Value::from(p.seconds)),
                    ("watts", Value::from(p.watts)),
                    ("joules", Value::from(p.joules)),
                ])
            })
            .collect();
        let mut doc = lim_json::Value::object([
            ("query_id", Value::from(self.query_id as i64)),
            ("policy", Value::from(self.policy.as_str())),
            (
                "recommendations",
                self.recommendations
                    .iter()
                    .map(|r| Value::from(r.as_str()))
                    .collect(),
            ),
            ("steps", steps),
            ("phases", phases),
        ]);
        if let Some(sel) = &self.selection {
            doc.insert(
                "selection",
                Value::object([
                    ("level", Value::from(sel.level.to_string())),
                    (
                        "tools",
                        sel.tool_indices.iter().map(|t| Value::from(*t)).collect(),
                    ),
                    ("level1_score", Value::from(f64::from(sel.level1_score))),
                    ("level2_score", Value::from(f64::from(sel.level2_score))),
                ]),
            );
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::SearchLevels;
    use lim_workloads::{bfcl, geoengine};

    fn setup(geo: bool) -> (lim_workloads::Workload, SearchLevels, ModelProfile) {
        let w = if geo { geoengine(11, 40) } else { bfcl(11, 40) };
        let levels = SearchLevels::build(&w);
        let model = ModelProfile::by_name("llama3.1-8b").unwrap();
        (w, levels, model)
    }

    #[test]
    fn default_policy_offers_all_tools() {
        let (w, levels, model) = setup(false);
        let p = Pipeline::new(&w, &levels, &model, Quant::Q4KM);
        let r = p.run_query(&w.queries[0], Policy::Default);
        assert_eq!(r.offered_tools, 51);
        assert_eq!(r.level, None);
        assert_eq!(r.recommender_seconds, 0.0);
        assert!(!r.fell_back);
    }

    #[test]
    fn lim_policy_offers_fewer_tools_most_of_the_time() {
        let (w, levels, model) = setup(false);
        let p = Pipeline::new(&w, &levels, &model, Quant::Q4KM);
        let results = p.run_all(Policy::less_is_more(3));
        let avg_offered: f64 =
            results.iter().map(|r| r.offered_tools as f64).sum::<f64>() / results.len() as f64;
        assert!(
            avg_offered < 20.0,
            "LiM offered {avg_offered:.1} tools on average"
        );
    }

    #[test]
    fn lim_is_faster_than_default_on_bfcl() {
        let (w, levels, model) = setup(false);
        let p = Pipeline::new(&w, &levels, &model, Quant::Q4KM);
        let t_default: f64 = p
            .run_all(Policy::Default)
            .iter()
            .map(|r| r.cost.seconds)
            .sum();
        let t_lim: f64 = p
            .run_all(Policy::less_is_more(3))
            .iter()
            .map(|r| r.cost.seconds)
            .sum();
        assert!(
            t_lim < 0.7 * t_default,
            "LiM {t_lim:.1}s vs default {t_default:.1}s"
        );
    }

    #[test]
    fn results_are_deterministic() {
        let (w, levels, model) = setup(true);
        let p = Pipeline::new(&w, &levels, &model, Quant::Q4KM);
        let a = p.run_all(Policy::less_is_more(3));
        let b = p.run_all(Policy::less_is_more(3));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_change_outcomes() {
        let (w, levels, model) = setup(false);
        let a = Pipeline::new(&w, &levels, &model, Quant::Q4KM)
            .with_seed(1)
            .run_all(Policy::Default);
        let b = Pipeline::new(&w, &levels, &model, Quant::Q4KM)
            .with_seed(2)
            .run_all(Policy::Default);
        let succ = |rs: &[QueryResult]| rs.iter().filter(|r| r.success).count();
        // Statistically near-certain to differ on 40 Bernoulli draws.
        assert_ne!(
            (succ(&a), a[0].cost.seconds.to_bits()),
            (succ(&b), b[0].cost.seconds.to_bits())
        );
    }

    #[test]
    fn recommender_time_is_small_fraction_of_default_query() {
        let (w, levels, model) = setup(false);
        let p = Pipeline::new(&w, &levels, &model, Quant::Q4KM);
        let default_avg: f64 = p
            .run_all(Policy::Default)
            .iter()
            .map(|r| r.cost.seconds)
            .sum::<f64>()
            / 40.0;
        let lim = p.run_all(Policy::less_is_more(3));
        let rec_avg: f64 = lim.iter().map(|r| r.recommender_seconds).sum::<f64>() / 40.0;
        assert!(
            rec_avg < 0.5 * default_avg,
            "recommender {rec_avg:.2}s vs default query {default_avg:.2}s"
        );
    }

    #[test]
    fn recommender_cost_matches_pipeline_accounting() {
        let (w, levels, model) = setup(false);
        let p = Pipeline::new(&w, &levels, &model, Quant::Q4KM);
        let q = &w.queries[0];
        let r = p.run_query(q, Policy::less_is_more(3));
        let cost = p.recommender_cost(&q.text);
        assert!((cost.seconds - r.recommender_seconds).abs() < 1e-12);
        assert!(cost.joules > 0.0);
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(Policy::Default.label(), "default");
        assert_eq!(Policy::Gorilla { k: 5 }.label(), "gorilla-k5");
        assert_eq!(Policy::less_is_more(3).label(), "lim-k3");
    }

    #[test]
    fn traced_run_matches_untraced_run() {
        let (w, levels, model) = setup(true);
        let p = Pipeline::new(&w, &levels, &model, Quant::Q4KM);
        for policy in [Policy::Default, Policy::less_is_more(3)] {
            let plain = p.run_query(&w.queries[1], policy);
            let (traced, trace) = p.run_query_traced(&w.queries[1], policy);
            assert_eq!(plain, traced, "tracing must not perturb outcomes");
            assert!(!trace.steps.is_empty());
            assert!(!trace.phases.is_empty());
            let total: f64 = trace.phases.iter().map(|ph| ph.seconds).sum();
            assert!((total - traced.cost.seconds).abs() < 1e-9);
        }
    }

    #[test]
    fn trace_serializes_to_parseable_json() {
        let (w, levels, model) = setup(false);
        let p = Pipeline::new(&w, &levels, &model, Quant::Q8_0);
        let (_, trace) = p.run_query_traced(&w.queries[0], Policy::less_is_more(3));
        let text = trace.to_json().to_string();
        let doc = lim_json::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("policy").and_then(lim_json::Value::as_str),
            Some("lim-k3")
        );
        assert!(doc.get("selection").is_some());
        assert!(doc
            .get("steps")
            .and_then(lim_json::Value::as_array)
            .is_some());
    }

    #[test]
    fn geo_chains_execute_multiple_steps() {
        let (w, levels, model) = setup(true);
        let p = Pipeline::new(&w, &levels, &model, Quant::Q4KM);
        let r = p.run_query(&w.queries[0], Policy::Default);
        // A multi-step default-policy geo query on an 8B q4 model takes
        // tens of seconds (Table II regime).
        assert!(
            r.cost.seconds > 8.0 && r.cost.seconds < 90.0,
            "geo query took {:.1}s",
            r.cost.seconds
        );
    }
}
