//! Recursive-descent JSON parser.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::Value;

/// Error produced when [`parse`] rejects its input.
///
/// Carries the byte offset of the offending character so that failures in
/// generated tool-call payloads can be pinpointed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJsonError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description of what was expected.
    pub message: String,
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl Error for ParseJsonError {}

/// Parses a complete JSON document from `input`.
///
/// Trailing whitespace is permitted; any other trailing content is an error.
///
/// # Errors
///
/// Returns [`ParseJsonError`] with the byte offset of the first construct
/// that is not valid JSON.
///
/// # Examples
///
/// ```
/// use lim_json::parse;
/// # fn main() -> Result<(), lim_json::ParseJsonError> {
/// let v = parse("[1, 2, 3]")?;
/// assert_eq!(v.as_array().map(|a| a.len()), Some(3));
/// assert!(parse("[1, 2,").is_err());
/// # Ok(())
/// # }
/// ```
pub fn parse(input: &str) -> Result<Value, ParseJsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Maximum container nesting accepted by [`parse`].
///
/// The parser is recursive-descent; without a cap, adversarial inputs like
/// one million `[` characters would overflow the stack instead of
/// returning an error.
pub const MAX_DEPTH: usize = 512;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseJsonError {
        ParseJsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseJsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseJsonError> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character '{}'", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn nested(
        &mut self,
        inner: fn(&mut Self) -> Result<Value, ParseJsonError>,
    ) -> Result<Value, ParseJsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        self.depth += 1;
        let result = inner(self);
        self.depth -= 1;
        result
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseJsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected literal '{text}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseJsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseJsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseJsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(byte) if byte < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(byte) if byte < 0x80 => out.push(byte as char),
                Some(byte) => {
                    // Multi-byte UTF-8: re-decode from the original slice.
                    let start = self.pos - 1;
                    let width = utf8_width(byte).ok_or_else(|| self.err("invalid UTF-8"))?;
                    let end = start + width;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseJsonError> {
        let first = self.hex4()?;
        // Handle UTF-16 surrogate pairs for completeness.
        if (0xD800..=0xDBFF).contains(&first) {
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(self.err("expected low surrogate after high surrogate"));
            }
            let second = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&second) {
                return Err(self.err("invalid low surrogate"));
            }
            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))
        } else {
            char::from_u32(first).ok_or_else(|| self.err("invalid unicode escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseJsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            value = value * 16 + digit;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Value, ParseJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        // Fraction.
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // Exponent.
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

fn utf8_width(first_byte: u8) -> Option<usize> {
    match first_byte {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}
