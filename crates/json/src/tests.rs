use crate::{parse, Value};

#[test]
fn parses_scalars() {
    assert_eq!(parse("null").unwrap(), Value::Null);
    assert_eq!(parse("true").unwrap(), Value::Bool(true));
    assert_eq!(parse("false").unwrap(), Value::Bool(false));
    assert_eq!(parse("42").unwrap(), Value::Number(42.0));
    assert_eq!(parse("-3.5").unwrap(), Value::Number(-3.5));
    assert_eq!(parse("1e3").unwrap(), Value::Number(1000.0));
    assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
}

#[test]
fn parses_nested_structures() {
    let v = parse(r#"{"tools": [{"name": "a"}, {"name": "b"}], "k": 3}"#).unwrap();
    assert_eq!(v.pointer("k").and_then(Value::as_i64), Some(3));
    assert_eq!(
        v.get("tools")
            .and_then(|t| t.at(1))
            .and_then(|t| t.get("name"))
            .and_then(Value::as_str),
        Some("b")
    );
}

#[test]
fn parses_empty_containers() {
    assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
    assert_eq!(parse("{}").unwrap(), Value::object::<String, _>([]));
    assert_eq!(parse("  [ ]  ").unwrap(), Value::Array(vec![]));
}

#[test]
fn parses_string_escapes() {
    let v = parse(r#""a\nb\t\"c\" \\ A""#).unwrap();
    assert_eq!(v.as_str(), Some("a\nb\t\"c\" \\ A"));
}

#[test]
fn parses_surrogate_pairs() {
    let v = parse(r#""😀""#).unwrap();
    assert_eq!(v.as_str(), Some("\u{1F600}"));
}

#[test]
fn parses_multibyte_utf8_passthrough() {
    let v = parse("\"caf\u{e9} \u{4e2d}\u{6587}\"").unwrap();
    assert_eq!(v.as_str(), Some("caf\u{e9} \u{4e2d}\u{6587}"));
}

#[test]
fn rejects_malformed_documents() {
    for bad in [
        "",
        "{",
        "[1,",
        "{\"a\" 1}",
        "tru",
        "01",
        "1.",
        "1e",
        "\"unterminated",
        "{\"a\": 1,}",
        "[1 2]",
        "\"bad \\q escape\"",
        "nullx",
        "[] []",
    ] {
        assert!(parse(bad).is_err(), "should reject {bad:?}");
    }
}

#[test]
fn deep_nesting_is_rejected_not_crashed() {
    // Within the cap: fine.
    let ok_depth = 400;
    let ok = format!("{}1{}", "[".repeat(ok_depth), "]".repeat(ok_depth));
    assert!(parse(&ok).is_ok());
    // A pathological million-bracket document returns an error instead of
    // overflowing the parser stack.
    let evil = "[".repeat(1_000_000);
    let err = parse(&evil).unwrap_err();
    assert!(err.to_string().contains("nesting"), "{err}");
    // Mixed object/array nesting counts too.
    let mixed = format!("{}1{}", "{\"a\":[".repeat(600), "]}".repeat(600));
    assert!(parse(&mixed).is_err());
}

#[test]
fn error_reports_offset() {
    let err = parse("[1, 2, x]").unwrap_err();
    assert_eq!(err.offset, 7);
    assert!(err.to_string().contains("byte 7"));
}

#[test]
fn rejects_unescaped_control_chars() {
    assert!(parse("\"a\nb\"").is_err());
}

#[test]
fn compact_roundtrip_preserves_value() {
    let src = r#"{"b":[1,2.5,null,true],"a":{"nested":"x\"y"},"z":"end"}"#;
    let v = parse(src).unwrap();
    let reparsed = parse(&v.to_string()).unwrap();
    assert_eq!(v, reparsed);
}

#[test]
fn compact_output_is_sorted_and_stable() {
    let v = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
    assert_eq!(v.to_string(), r#"{"a":2,"m":3,"z":1}"#);
}

#[test]
fn pretty_output_indents() {
    let v = Value::object([("k", Value::array([Value::from(1)]))]);
    assert_eq!(v.to_pretty_string(), "{\n  \"k\": [\n    1\n  ]\n}");
}

#[test]
fn integers_serialize_without_decimal_point() {
    assert_eq!(Value::from(7).to_string(), "7");
    assert_eq!(Value::from(7.25).to_string(), "7.25");
}

#[test]
fn non_finite_numbers_serialize_as_null() {
    assert_eq!(Value::Number(f64::NAN).to_string(), "null");
    assert_eq!(Value::Number(f64::INFINITY).to_string(), "null");
}

#[test]
fn pointer_walks_paths() {
    let v = parse(r#"{"a":{"b":{"c":1}}}"#).unwrap();
    assert_eq!(v.pointer("a.b.c").and_then(Value::as_i64), Some(1));
    assert!(v.pointer("a.x").is_none());
}

#[test]
fn node_count_counts_all_nodes() {
    let v = parse(r#"{"a":[1,2],"b":null}"#).unwrap();
    // object + array + 1 + 2 + null
    assert_eq!(v.node_count(), 5);
}

#[test]
fn from_impls_produce_expected_variants() {
    assert_eq!(Value::from(true), Value::Bool(true));
    assert_eq!(Value::from(3i32), Value::Number(3.0));
    assert_eq!(Value::from(3usize), Value::Number(3.0));
    assert_eq!(Value::from("s"), Value::String("s".into()));
    let arr: Value = [1, 2, 3].into_iter().collect();
    assert_eq!(arr.as_array().map(|a| a.len()), Some(3));
}

#[test]
fn insert_updates_objects() {
    let mut v = Value::object([("a", Value::from(1))]);
    assert_eq!(v.insert("a", Value::from(2)), Some(Value::from(1)));
    assert_eq!(v.get("a").and_then(Value::as_i64), Some(2));
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            (-1e9f64..1e9f64).prop_map(Value::Number),
            "[a-zA-Z0-9 _\\\\\"\n\t]{0,24}".prop_map(Value::String),
        ];
        leaf.prop_recursive(4, 48, 6, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
                prop::collection::btree_map("[a-z]{1,8}", inner, 0..6).prop_map(Value::Object),
            ]
        })
    }

    proptest! {
        /// Any tree we can build serializes to text that parses back to the
        /// same tree (modulo nothing: numbers stay finite by construction).
        #[test]
        fn roundtrip(v in arb_value()) {
            let text = v.to_string();
            let back = parse(&text).unwrap();
            prop_assert_eq!(&back, &v);
            // Pretty form parses to the same tree too.
            let back_pretty = parse(&v.to_pretty_string()).unwrap();
            prop_assert_eq!(back_pretty, v);
        }

        /// The parser never panics on arbitrary input.
        #[test]
        fn parser_total(s in "\\PC{0,64}") {
            let _ = parse(&s);
        }
    }
}
