//! Compact and pretty JSON writers.

use crate::Value;

/// Serializes `value` with no insignificant whitespace.
///
/// This is the representation token-counted by the LLM simulator, so it must
/// be stable: object keys are emitted in sorted order (guaranteed by the
/// `BTreeMap` in [`Value::Object`]).
pub fn write_compact(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, &mut out, None, 0);
    out
}

/// Serializes `value` with two-space indentation, for logs and examples.
pub fn write_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, &mut out, Some(2), 0);
    out
}

impl Value {
    /// Returns the pretty-printed (2-space indented) representation.
    ///
    /// # Examples
    ///
    /// ```
    /// use lim_json::Value;
    /// let v = Value::object([("a", Value::from(1))]);
    /// assert_eq!(v.to_pretty_string(), "{\n  \"a\": 1\n}");
    /// ```
    pub fn to_pretty_string(&self) -> String {
        write_pretty(self)
    }
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if n.is_nan() || n.is_infinite() {
        // JSON has no NaN/Infinity; fall back to null like JavaScript's
        // JSON.stringify.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
