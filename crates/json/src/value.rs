//! The owned JSON document tree.

use std::collections::BTreeMap;
use std::fmt;

/// An owned JSON value.
///
/// Objects use a [`BTreeMap`] so that serialization order is deterministic —
/// important because rendered tool schemas are token-counted by the
/// simulator, and the whole workspace is reproducible from seeds.
///
/// # Examples
///
/// ```
/// use lim_json::Value;
///
/// let v = Value::object([
///     ("tool", Value::from("plot_captions")),
///     ("k", Value::from(3)),
/// ]);
/// assert_eq!(v.get("k").and_then(Value::as_i64), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// The JSON `null` literal (the default, matching absent members).
    #[default]
    Null,
    /// A JSON boolean.
    Bool(bool),
    /// A JSON number. All numbers are held as `f64`, like JavaScript.
    Number(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object with deterministic (sorted) key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    ///
    /// # Examples
    ///
    /// ```
    /// use lim_json::Value;
    /// let v = Value::object([("a", Value::from(1))]);
    /// assert!(v.is_object());
    /// ```
    pub fn object<K, I>(pairs: I) -> Self
    where
        K: Into<String>,
        I: IntoIterator<Item = (K, Value)>,
    {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from an iterator of values.
    ///
    /// # Examples
    ///
    /// ```
    /// use lim_json::Value;
    /// let v = Value::array([Value::from(1), Value::from(2)]);
    /// assert_eq!(v.as_array().map(|a| a.len()), Some(2));
    /// ```
    pub fn array<I: IntoIterator<Item = Value>>(items: I) -> Self {
        Value::Array(items.into_iter().collect())
    }

    /// Returns `true` if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns `true` if the value is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Returns `true` if the value is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Borrows the value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrows the value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Borrows the value as an `i64`, if it is a number with an integral value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() < i64::MAX as f64 => Some(*n as i64),
            _ => None,
        }
    }

    /// Borrows the value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the value as an object map, if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    ///
    /// Returns `None` when `self` is not an object or the key is absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// Indexes into an array value.
    pub fn at(&self, index: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(index))
    }

    /// Walks a dot-separated path of object keys, e.g. `"args.city"`.
    ///
    /// Array segments are not supported; this is a convenience for the flat
    /// object shapes used by tool calls.
    ///
    /// # Examples
    ///
    /// ```
    /// use lim_json::parse;
    /// # fn main() -> Result<(), lim_json::ParseJsonError> {
    /// let v = parse(r#"{"a": {"b": 3}}"#)?;
    /// assert_eq!(v.pointer("a.b").and_then(|x| x.as_i64()), Some(3));
    /// # Ok(())
    /// # }
    /// ```
    pub fn pointer(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = cur.get(seg)?;
        }
        Some(cur)
    }

    /// Inserts `key = value` into an object value, returning the previous
    /// entry if any.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object; insertion on non-objects is a
    /// programming error in this workspace.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        match self {
            Value::Object(map) => map.insert(key.into(), value),
            other => panic!("insert on non-object JSON value: {other:?}"),
        }
    }

    /// Recursively counts the nodes of the document tree.
    ///
    /// Used by tests and by the prompt-size heuristics in `lim-tools`.
    pub fn node_count(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) | Value::Number(_) | Value::String(_) => 1,
            Value::Array(items) => 1 + items.iter().map(Value::node_count).sum::<usize>(),
            Value::Object(map) => 1 + map.values().map(Value::node_count).sum::<usize>(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::writer::write_compact(self))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i32> for Value {
    fn from(n: i32) -> Self {
        Value::Number(f64::from(n))
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl<V: Into<Value>> FromIterator<V> for Value {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        Value::Array(iter.into_iter().map(Into::into).collect())
    }
}
