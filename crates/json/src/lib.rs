//! Minimal JSON implementation used across the Less-is-More workspace.
//!
//! Tool schemas, recommender outputs and function calls all travel through
//! *real* JSON text so that prompt sizes measured by the simulator are
//! honest byte-for-byte. The workspace deliberately avoids `serde_json`
//! (see `DESIGN.md §3`), so this crate provides the three pieces it needs:
//!
//! * [`Value`] — an owned JSON document tree,
//! * [`parse`] — a recursive-descent parser with precise error positions,
//! * `Value::to_string` (via [`std::fmt::Display`]) and
//!   [`Value::to_pretty_string`] — writers.
//!
//! # Examples
//!
//! ```
//! use lim_json::{parse, Value};
//!
//! # fn main() -> Result<(), lim_json::ParseJsonError> {
//! let doc = parse(r#"{"name": "weather_information", "args": {"city": "NYC"}}"#)?;
//! assert_eq!(doc.get("name").and_then(Value::as_str), Some("weather_information"));
//! assert_eq!(doc.pointer("args.city").and_then(Value::as_str), Some("NYC"));
//! # Ok(())
//! # }
//! ```

mod parser;
mod value;
mod writer;

pub use parser::{parse, ParseJsonError};
pub use value::Value;

#[cfg(test)]
mod tests;
