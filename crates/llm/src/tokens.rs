//! Token estimation and prompt assembly.
//!
//! The simulator needs honest prompt sizes: tool schemas are rendered to
//! real JSON by `lim-tools`, and this module converts text to token counts
//! with the standard ≈4-characters-per-token heuristic used for
//! Llama-family BPE vocabularies.

/// Average characters per token for Llama-style tokenizers.
pub const CHARS_PER_TOKEN: f64 = 4.0;

/// Estimates the token count of `text` (at least 1 for non-empty text).
///
/// # Examples
///
/// ```
/// use lim_llm::tokens::estimate_tokens;
/// assert_eq!(estimate_tokens(""), 0);
/// assert_eq!(estimate_tokens("abcd"), 1);
/// assert_eq!(estimate_tokens("abcdefgh"), 2);
/// ```
pub fn estimate_tokens(text: &str) -> u32 {
    if text.is_empty() {
        return 0;
    }
    ((text.len() as f64 / CHARS_PER_TOKEN).ceil() as u32).max(1)
}

/// The fixed agent system prompt (function-calling instructions including
/// the paper's fallback directive to "signal a failure by returning an
/// error message if the function-calling step fails after retrying").
pub const AGENT_SYSTEM_PROMPT: &str = "You are a function-calling assistant running on an \
edge device. Select the single most appropriate tool from the provided tool list and call it \
with arguments that satisfy its JSON schema exactly. If, after retrying, none of the provided \
tools can complete the request, return a JSON error object {\"error\": \"no_suitable_tool\"} \
instead of guessing.";

/// The recommender system prompt: no tools are attached; the model is asked
/// to describe the ideal tools it would need (§III-B).
pub const RECOMMENDER_SYSTEM_PROMPT: &str = "You are planning how to answer a user request. \
No tools are attached. Reason about which tools you would ideally need and return a JSON list \
of objects, each with a \"name\" and a detailed \"functionality\" description of one ideal \
tool. Do not attempt to answer the request itself.";

/// Builds the agent prompt for one call step and returns its token count.
///
/// `tools_json` is the rendered schema payload from
/// `lim_tools::ToolRegistry::render_subset`; `history` carries the
/// accumulated results of earlier steps in a sequential chain.
pub fn agent_prompt_tokens(query: &str, tools_json: &str, history: &str) -> u32 {
    estimate_tokens(AGENT_SYSTEM_PROMPT)
        + estimate_tokens(query)
        + estimate_tokens(tools_json)
        + estimate_tokens(history)
}

/// Builds the recommender prompt token count (query only — no tools, which
/// is why the paper can claim the step adds negligible overhead).
pub fn recommender_prompt_tokens(query: &str) -> u32 {
    estimate_tokens(RECOMMENDER_SYSTEM_PROMPT) + estimate_tokens(query)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_text_is_zero_tokens() {
        assert_eq!(estimate_tokens(""), 0);
    }

    #[test]
    fn short_text_is_one_token() {
        assert_eq!(estimate_tokens("a"), 1);
        assert_eq!(estimate_tokens("abc"), 1);
    }

    #[test]
    fn tokens_scale_with_length() {
        let short = estimate_tokens(&"x".repeat(100));
        let long = estimate_tokens(&"x".repeat(1000));
        assert_eq!(short, 25);
        assert_eq!(long, 250);
    }

    #[test]
    fn agent_prompt_dominated_by_tools_payload() {
        let small = agent_prompt_tokens("what's the weather?", "[]", "");
        let big_tools = "x".repeat(16_000);
        let big = agent_prompt_tokens("what's the weather?", &big_tools, "");
        assert!(big > small + 3900);
    }

    #[test]
    fn recommender_prompt_is_small() {
        // The recommender never sees tool schemas; its prompt is a couple
        // hundred tokens at most for realistic queries.
        let t = recommender_prompt_tokens("Plot the fmow VQA captions in UK from Fall 2009");
        assert!(t < 200, "recommender prompt {t} tokens");
    }
}
