//! The behavioural model of one function-calling attempt.
//!
//! A call attempt resolves to one of four outcomes with probabilities
//! governed by the model profile, its quantization, the task regime and —
//! the paper's central variable — how many tools were put in front of the
//! model. Resolution is a seeded draw: the same attempt with the same seed
//! always resolves identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::profiles::ModelProfile;
use crate::quant::{Quant, TaskKind};

/// How one function-calling step ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgentOutcome {
    /// Correct tool, valid arguments.
    Success,
    /// The model committed to the wrong tool (no error signalled).
    WrongTool,
    /// Correct tool but arguments violate the schema.
    BadArguments,
    /// The model followed its instructions and returned the explicit
    /// error object — the trigger for the paper's Level-3 fallback.
    ErrorSignaled,
}

impl AgentOutcome {
    /// Whether the step both chose the right tool and used it properly.
    pub fn is_success(self) -> bool {
        self == AgentOutcome::Success
    }

    /// Whether the right tool was selected (the paper's Tool Accuracy
    /// numerator counts these).
    pub fn tool_correct(self) -> bool {
        matches!(self, AgentOutcome::Success | AgentOutcome::BadArguments)
    }
}

/// One function-calling attempt, ready to resolve.
#[derive(Debug, Clone, Copy)]
pub struct CallAttempt<'a> {
    /// Acting model.
    pub model: &'a ModelProfile,
    /// Its quantization.
    pub quant: Quant,
    /// Single-call or sequential regime.
    pub task: TaskKind,
    /// Number of tools offered in the prompt.
    pub offered: usize,
    /// Whether the tool this step actually needs is among them.
    pub gold_offered: bool,
    /// Deterministic seed for this attempt (derive per query/step/policy).
    pub seed: u64,
}

impl CallAttempt<'_> {
    /// Resolves the attempt to an outcome.
    ///
    /// Mechanics:
    /// * If the needed tool is *not* offered, the model signals an error
    ///   with probability `error_awareness` (enabling fallback), otherwise
    ///   it confidently picks a wrong tool.
    /// * Otherwise the tool is chosen correctly with probability
    ///   [`ModelProfile::tool_accuracy`] (decaying with distractor count),
    ///   and given a correct choice the arguments validate with
    ///   probability [`ModelProfile::arg_accuracy`].
    pub fn resolve(&self) -> AgentOutcome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        if !self.gold_offered {
            return if rng.random::<f64>() < self.model.error_awareness {
                AgentOutcome::ErrorSignaled
            } else {
                AgentOutcome::WrongTool
            };
        }
        let distractors = self.offered.saturating_sub(1);
        let p_tool = self.model.tool_accuracy(self.quant, self.task, distractors);
        if rng.random::<f64>() >= p_tool {
            return AgentOutcome::WrongTool;
        }
        let p_args = self.model.arg_accuracy(self.quant, self.task);
        if rng.random::<f64>() >= p_args {
            return AgentOutcome::BadArguments;
        }
        AgentOutcome::Success
    }

    /// Number of tokens the model decodes for this attempt's outcome.
    ///
    /// Clean calls are terse JSON. Confused paths ramble, and the ramble
    /// length scales with how many tools were in front of the model —
    /// a confused model deliberates over its options. This coupling is
    /// the dominant source of the default policy's latency (Table II: the
    /// failing 46-tool run takes 30 s against 20 s with 19 tools) and of
    /// the 70%+ execution-time reductions Less-is-More reports.
    pub fn decode_tokens(&self, outcome: AgentOutcome) -> u32 {
        // 40 offered tools ≈ full-catalog confusion. Sequential failures
        // ramble regardless of catalog size — the model is lost in the
        // chain, not among the tools — which is why the paper's GeoEngine
        // time reductions (−15…40%) are much smaller than BFCL's (−48…80%).
        let mut confusion = (self.offered as f64 / 40.0).min(1.0);
        if self.task == TaskKind::Sequential {
            confusion = confusion.max(0.65);
        }
        match outcome {
            AgentOutcome::Success | AgentOutcome::BadArguments => self.model.call_tokens,
            AgentOutcome::WrongTool => {
                self.model.call_tokens + (f64::from(self.model.ramble_tokens) * confusion) as u32
            }
            AgentOutcome::ErrorSignaled => {
                // The model retried internally before giving up.
                (f64::from(self.model.ramble_tokens) * confusion.max(0.5)) as u32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::catalog;

    fn rate(model: &ModelProfile, offered: usize, gold: bool, n: u64) -> f64 {
        let ok = (0..n)
            .filter(|i| {
                CallAttempt {
                    model,
                    quant: Quant::Q4KM,
                    task: TaskKind::SingleCall,
                    offered,
                    gold_offered: gold,
                    seed: 0xA5A5_0000 + i,
                }
                .resolve()
                .is_success()
            })
            .count();
        ok as f64 / n as f64
    }

    #[test]
    fn resolution_is_deterministic_per_seed() {
        let models = catalog();
        let attempt = CallAttempt {
            model: &models[0],
            quant: Quant::Q4_0,
            task: TaskKind::SingleCall,
            offered: 51,
            gold_offered: true,
            seed: 42,
        };
        assert_eq!(attempt.resolve(), attempt.resolve());
    }

    #[test]
    fn missing_gold_tool_never_succeeds() {
        let models = catalog();
        for i in 0..200 {
            let outcome = CallAttempt {
                model: &models[1],
                quant: Quant::Q8_0,
                task: TaskKind::SingleCall,
                offered: 5,
                gold_offered: false,
                seed: i,
            }
            .resolve();
            assert!(!outcome.is_success());
            assert!(matches!(
                outcome,
                AgentOutcome::ErrorSignaled | AgentOutcome::WrongTool
            ));
        }
    }

    #[test]
    fn fewer_tools_raise_empirical_success() {
        // The Less-is-More hypothesis, measured on the simulator itself.
        let models = catalog();
        let hermes = &models[0];
        let few = rate(hermes, 5, true, 4000);
        let many = rate(hermes, 51, true, 4000);
        assert!(
            few > many + 0.1,
            "few-tools {few:.3} should beat many-tools {many:.3}"
        );
    }

    #[test]
    fn empirical_rate_matches_analytic_probability() {
        let models = catalog();
        let m = &models[1]; // llama
        let expect = m.tool_accuracy(Quant::Q4KM, TaskKind::SingleCall, 50)
            * m.arg_accuracy(Quant::Q4KM, TaskKind::SingleCall);
        let got = rate(m, 51, true, 8000);
        assert!(
            (got - expect).abs() < 0.03,
            "empirical {got:.3} vs analytic {expect:.3}"
        );
    }

    #[test]
    fn error_signal_rate_tracks_awareness() {
        let models = catalog();
        let m = &models[0]; // hermes, awareness 0.65
        let n = 4000u64;
        let errs = (0..n)
            .filter(|i| {
                CallAttempt {
                    model: m,
                    quant: Quant::Q4KM,
                    task: TaskKind::SingleCall,
                    offered: 5,
                    gold_offered: false,
                    seed: 7_000_000 + i,
                }
                .resolve()
                    == AgentOutcome::ErrorSignaled
            })
            .count();
        let r = errs as f64 / n as f64;
        assert!((r - m.error_awareness).abs() < 0.03, "rate {r:.3}");
    }

    #[test]
    fn failure_paths_decode_more_tokens() {
        let models = catalog();
        let attempt = CallAttempt {
            model: &models[2],
            quant: Quant::Q4KM,
            task: TaskKind::SingleCall,
            offered: 10,
            gold_offered: true,
            seed: 1,
        };
        assert!(
            attempt.decode_tokens(AgentOutcome::ErrorSignaled)
                > attempt.decode_tokens(AgentOutcome::Success)
        );
        assert!(
            attempt.decode_tokens(AgentOutcome::WrongTool)
                > attempt.decode_tokens(AgentOutcome::Success)
        );
    }

    #[test]
    fn rambling_scales_with_offered_tools() {
        let models = catalog();
        let attempt_with = |offered| CallAttempt {
            model: &models[1],
            quant: Quant::Q4KM,
            task: TaskKind::SingleCall,
            offered,
            gold_offered: true,
            seed: 1,
        };
        let few = attempt_with(3).decode_tokens(AgentOutcome::WrongTool);
        let many = attempt_with(51).decode_tokens(AgentOutcome::WrongTool);
        assert!(
            many > few * 2,
            "full-catalog confusion should ramble much longer: {many} vs {few}"
        );
        // Success decodes are confusion-independent.
        assert_eq!(
            attempt_with(3).decode_tokens(AgentOutcome::Success),
            attempt_with(51).decode_tokens(AgentOutcome::Success)
        );
    }

    #[test]
    fn sequential_rambling_has_a_floor() {
        let models = catalog();
        let attempt = |task| CallAttempt {
            model: &models[1],
            quant: Quant::Q4KM,
            task,
            offered: 4, // tiny offer: single-call confusion would be ~10%
            gold_offered: true,
            seed: 1,
        };
        let single = attempt(TaskKind::SingleCall).decode_tokens(AgentOutcome::WrongTool);
        let chain = attempt(TaskKind::Sequential).decode_tokens(AgentOutcome::WrongTool);
        assert!(
            chain > single * 3,
            "chain failures ramble regardless of catalog size: {chain} vs {single}"
        );
    }

    #[test]
    fn outcome_helpers_classify_correctly() {
        assert!(AgentOutcome::Success.is_success());
        assert!(AgentOutcome::Success.tool_correct());
        assert!(AgentOutcome::BadArguments.tool_correct());
        assert!(!AgentOutcome::BadArguments.is_success());
        assert!(!AgentOutcome::WrongTool.tool_correct());
        assert!(!AgentOutcome::ErrorSignaled.tool_correct());
    }
}
