//! The Tool-Recommender behavioural model (§III-B).
//!
//! Prompted with *no* tools attached, the LLM describes the "ideal" tools
//! it believes the query needs. We simulate the semantic content of that
//! output: for each tool the query actually needs, the model reproduces a
//! *noisy paraphrase* of its functionality — words are retained with a
//! probability driven by the model's quality and quantization, and
//! anticipation of later steps in a chain is harder than the first step.
//!
//! The noise matters: downstream retrieval consumes these texts through
//! the real embedder, so a weak model's vague description can genuinely
//! pull the wrong tools into the prompt — the same failure mode the paper
//! guards against with its 0.5-confidence fallback.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::profiles::ModelProfile;
use crate::quant::{Quant, TaskKind};

/// Generic filler the model mixes into its descriptions (simulating the
/// boilerplate LLMs produce when unsure).
const FILLER: [&str; 8] = [
    "helper",
    "utility",
    "process",
    "handle",
    "manage",
    "general",
    "information",
    "request",
];

/// Minimum per-word retention even for the weakest configuration: models
/// echo at least the gist of what they plan to do.
const FLOOR_RETENTION: f64 = 0.35;

/// Derives a deterministic recommender seed from the text itself (64-bit
/// FNV-1a).
///
/// Batch evaluation seeds the recommender per *query id*, which is right
/// for statistics but wrong for serving: a cache keyed by the normalized
/// query text must see identical recommender output whenever the same
/// text recurs under a different id or session. Seeding by the text makes
/// [`recommend_descriptions`] a pure function of
/// `(model, quant, text, functionality)` — exactly the property the
/// `lim-serve` selection memo needs to stay bit-identical with and
/// without cache hits.
pub fn stable_text_seed(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in text.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Produces the recommender's "ideal tool" descriptions for a query.
///
/// `needed_functionality` holds one ground-truth functionality string per
/// anticipated call step (the pipeline passes the gold tools' descriptions
/// — the simulator's stand-in for "the model understood the query").
/// Returns one noisy description per step, each blended with query words
/// as the paper's `Ẽ` embedding construction prescribes.
pub fn recommend_descriptions(
    model: &ModelProfile,
    quant: Quant,
    query: &str,
    needed_functionality: &[&str],
    seed: u64,
) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let quant_quality = quant.competence_factor(TaskKind::SingleCall).powf(0.1);
    needed_functionality
        .iter()
        .enumerate()
        .map(|(step, functionality)| {
            // Anticipating later chain steps is harder than the first.
            let anticipation = 1.0 / (1.0 + 0.15 * step as f64);
            let retention = FLOOR_RETENTION
                + (1.0 - FLOOR_RETENTION)
                    * model.recommender_quality
                    * quant_quality
                    * anticipation;
            let mut words: Vec<String> = functionality
                .split_whitespace()
                .filter(|_| rng.random::<f64>() < retention)
                .map(str::to_owned)
                .collect();
            if words.len() < 2 {
                // Degenerate drop-everything case: keep the first words so
                // the output is never empty.
                words = functionality
                    .split_whitespace()
                    .take(3)
                    .map(str::to_owned)
                    .collect();
            }
            // Unsure models pad with generic filler.
            let filler_count = ((1.0 - retention) * 3.0).round() as usize;
            for _ in 0..filler_count {
                let pick = FILLER[rng.random_range(0..FILLER.len())];
                words.push(pick.to_owned());
            }
            format!("{} (for: {})", words.join(" "), query)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::ModelProfile;

    fn hermes() -> ModelProfile {
        ModelProfile::by_name("hermes2-pro-8b").unwrap()
    }

    fn mistral() -> ModelProfile {
        ModelProfile::by_name("mistral-8b").unwrap()
    }

    const FUNC: &str =
        "fetches current weather conditions and forecast data for a given city and date range";

    #[test]
    fn stable_text_seed_is_pure_and_discriminating() {
        assert_eq!(stable_text_seed("weather"), stable_text_seed("weather"));
        assert_ne!(stable_text_seed("weather"), stable_text_seed("Weather"));
        assert_ne!(stable_text_seed(""), stable_text_seed(" "));
    }

    #[test]
    fn output_count_matches_steps() {
        let out = recommend_descriptions(&hermes(), Quant::Q4KM, "q", &[FUNC, FUNC, FUNC], 1);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = recommend_descriptions(&hermes(), Quant::Q4KM, "q", &[FUNC], 9);
        let b = recommend_descriptions(&hermes(), Quant::Q4KM, "q", &[FUNC], 9);
        assert_eq!(a, b);
        let c = recommend_descriptions(&hermes(), Quant::Q4KM, "q", &[FUNC], 10);
        assert_ne!(a, c, "different seeds should perturb the output");
    }

    #[test]
    fn stronger_model_retains_more_signal_words() {
        let signal: Vec<&str> = FUNC.split_whitespace().collect();
        let count_kept = |model: &ModelProfile| -> usize {
            (0..200)
                .map(|s| {
                    let out = recommend_descriptions(model, Quant::Q4KM, "q", &[FUNC], s);
                    let body = out[0].split(" (for:").next().unwrap().to_owned();
                    signal
                        .iter()
                        .filter(|w| body.split_whitespace().any(|x| x == **w))
                        .count()
                })
                .sum()
        };
        let strong = count_kept(&hermes());
        let weak = count_kept(&mistral());
        assert!(strong > weak, "hermes {strong} vs mistral {weak}");
    }

    #[test]
    fn query_context_is_appended() {
        let out = recommend_descriptions(&hermes(), Quant::Q4KM, "weather in Paris", &[FUNC], 3);
        assert!(out[0].contains("weather in Paris"));
    }

    #[test]
    fn never_empty_even_at_worst_quality() {
        let out = recommend_descriptions(&mistral(), Quant::Q4_0, "q", &["a b c d e"], 4);
        assert!(!out[0].trim().is_empty());
    }

    #[test]
    fn later_steps_are_noisier_on_average() {
        let signal: Vec<&str> = FUNC.split_whitespace().collect();
        let kept_at = |step: usize| -> usize {
            (0..300)
                .map(|s| {
                    let needed = vec![FUNC; step + 1];
                    let out = recommend_descriptions(&hermes(), Quant::Q4KM, "q", &needed, s);
                    let body = out[step].split(" (for:").next().unwrap().to_owned();
                    signal
                        .iter()
                        .filter(|w| body.split_whitespace().any(|x| x == **w))
                        .count()
                })
                .sum()
        };
        assert!(
            kept_at(0) > kept_at(3),
            "step 0 {} vs step 3 {}",
            kept_at(0),
            kept_at(3)
        );
    }
}
