//! Decomposition of an inference call into device phases.
//!
//! Two phases per call: a compute-bound **prefill** over the prompt and a
//! bandwidth-bound **decode** over the generated tokens. Decode traffic
//! distinguishes sequential weight streaming from random KV traffic, and —
//! following the Table II finding that a 16k context is measurably slower
//! and hungrier than 8k *for the same prompt* — charges a scan over the
//! *allocated* KV buffer, not just the occupied part (llama.cpp-style
//! attention kernels and cache maintenance touch the whole allocation).

use lim_device::Phase;

use crate::profiles::ModelProfile;
use crate::quant::Quant;

/// Fraction of the allocated KV buffer that decode kernels touch per
/// generated token regardless of occupancy. Calibrated so that the
/// 16k→8k context reduction of Table II yields its reported ~15% latency
/// and ~15% power drop for a q4 8B model.
pub const CTX_SCAN_FRACTION: f64 = 1.0;

/// Tokens processed per weight-streaming pass during prefill (ubatch).
pub const PREFILL_BATCH_TOKENS: f64 = 512.0;

/// One LLM invocation to be costed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceRequest {
    /// Prompt length in tokens (system + query + tools + history).
    pub prompt_tokens: u32,
    /// Number of generated tokens.
    pub decode_tokens: u32,
    /// Allocated context-window length in tokens (e.g. 8192 or 16384).
    pub context_tokens: u32,
}

/// Builds the prefill and decode [`Phase`]s for a request.
///
/// The phases can be fed directly to
/// [`lim_device::DeviceProfile::run_phase`].
pub fn phases(model: &ModelProfile, quant: Quant, request: &InferenceRequest) -> Vec<Phase> {
    let weights = model.arch.weight_bytes(quant);
    let kv_row = model.arch.kv_bytes_per_token();
    let prompt = f64::from(request.prompt_tokens);
    let decode = f64::from(request.decode_tokens);
    let ctx = f64::from(request.context_tokens);

    let mut out = Vec::with_capacity(2);

    if request.prompt_tokens > 0 {
        // Prefill: streams the weights once per ubatch; compute-bound for
        // realistic prompt sizes. KV rows for the prompt are written once.
        let flops = model.arch.flops_per_token() * prompt;
        let seq = weights * (prompt / PREFILL_BATCH_TOKENS).ceil();
        let rand = kv_row * prompt;
        out.push(Phase::new("prefill", flops, seq, rand));
    }

    if request.decode_tokens > 0 {
        // Decode: every token re-streams the weights (sequential) and
        // attends over the occupied KV prefix plus the allocated-buffer
        // scan (random).
        let occupied_avg = prompt + decode / 2.0;
        let flops = model.arch.flops_per_token() * decode;
        let seq = weights * decode;
        let rand = (kv_row * occupied_avg + kv_row * ctx * CTX_SCAN_FRACTION) * decode;
        out.push(Phase::new("decode", flops, seq, rand));
    }

    out
}

/// Resident memory (bytes) of serving this model at the given context
/// length: weights plus the full KV allocation plus a fixed runtime
/// workspace. Used with [`lim_device::MemoryLedger`] to gate
/// configurations that cannot run on the board.
pub fn resident_bytes(model: &ModelProfile, quant: Quant, context_tokens: u32) -> u64 {
    const RUNTIME_WORKSPACE: f64 = 600.0e6;
    let weights = model.arch.weight_bytes(quant);
    let kv = model.arch.kv_bytes_per_token() * f64::from(context_tokens);
    (weights + kv + RUNTIME_WORKSPACE) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::ModelProfile;
    use lim_device::{DeviceProfile, EnergyMeter};

    fn llama() -> ModelProfile {
        ModelProfile::by_name("llama3.1-8b").unwrap()
    }

    fn run(request: &InferenceRequest, quant: Quant) -> (f64, f64) {
        let orin = DeviceProfile::jetson_agx_orin();
        let mut meter = EnergyMeter::new();
        for p in phases(&llama(), quant, request) {
            meter.record(orin.run_phase(&p));
        }
        let t = meter.total();
        (t.seconds, t.avg_watts())
    }

    #[test]
    fn decode_rate_matches_orin_reality() {
        // Llama-8b q4_K_M at 16k context decodes at ~15–25 tok/s on an
        // AGX Orin; the model must land in that band.
        let req = InferenceRequest {
            prompt_tokens: 2000,
            decode_tokens: 100,
            context_tokens: 16384,
        };
        let orin = DeviceProfile::jetson_agx_orin();
        let decode = phases(&llama(), Quant::Q4KM, &req)
            .into_iter()
            .find(|p| p.label() == "decode")
            .unwrap();
        let cost = orin.run_phase(&decode);
        let tok_per_s = 100.0 / cost.seconds;
        assert!(
            (12.0..30.0).contains(&tok_per_s),
            "decode rate {tok_per_s:.1} tok/s"
        );
    }

    #[test]
    fn smaller_context_is_faster_and_cheaper() {
        let at = |ctx| {
            run(
                &InferenceRequest {
                    prompt_tokens: 1900,
                    decode_tokens: 300,
                    context_tokens: ctx,
                },
                Quant::Q4KM,
            )
        };
        let (t16, w16) = at(16384);
        let (t8, w8) = at(8192);
        let time_drop = 1.0 - t8 / t16;
        let power_drop = 1.0 - w8 / w16;
        assert!(time_drop > 0.08, "time drop {time_drop:.3}");
        assert!(power_drop > 0.03, "power drop {power_drop:.3}");
    }

    #[test]
    fn shorter_prompt_is_faster() {
        let at = |prompt| {
            run(
                &InferenceRequest {
                    prompt_tokens: prompt,
                    decode_tokens: 100,
                    context_tokens: 16384,
                },
                Quant::Q4KM,
            )
        };
        let (t_big, _) = at(4600);
        let (t_small, _) = at(900);
        assert!(t_small < t_big * 0.75);
    }

    #[test]
    fn q4_decodes_faster_than_q8_and_f16() {
        let at = |q| {
            run(
                &InferenceRequest {
                    prompt_tokens: 500,
                    decode_tokens: 200,
                    context_tokens: 8192,
                },
                q,
            )
            .0
        };
        assert!(at(Quant::Q4KM) < at(Quant::Q8_0));
        assert!(at(Quant::Q8_0) < at(Quant::F16));
    }

    #[test]
    fn small_model_is_much_faster() {
        let qwen = ModelProfile::by_name("qwen2-1.5b").unwrap();
        let req = InferenceRequest {
            prompt_tokens: 1000,
            decode_tokens: 100,
            context_tokens: 8192,
        };
        let orin = DeviceProfile::jetson_agx_orin();
        let total = |m: &ModelProfile| {
            phases(m, Quant::Q4KM, &req)
                .iter()
                .map(|p| orin.run_phase(p).seconds)
                .sum::<f64>()
        };
        assert!(total(&qwen) < total(&llama()) / 2.5);
    }

    #[test]
    fn empty_requests_produce_no_phases() {
        let req = InferenceRequest {
            prompt_tokens: 0,
            decode_tokens: 0,
            context_tokens: 8192,
        };
        assert!(phases(&llama(), Quant::Q4KM, &req).is_empty());
    }

    #[test]
    fn resident_memory_matches_hand_calculation() {
        // 4.85 GB weights + 2.15 GB KV at 16k + 0.6 GB workspace.
        let bytes = resident_bytes(&llama(), Quant::Q4KM, 16384);
        let expected = 4.85e9 + 131072.0 * 16384.0 + 0.6e9;
        assert!((bytes as f64 - expected).abs() < 1e7);
    }

    #[test]
    fn table2_time_shape() {
        // Table II, Llama3.1-8b-q4_K_M on a sequential query (3 calls):
        // (16k, 46 tools, failing) ≈ 30 s, (16k, 19 tools) ≈ 20 s,
        // (8k, 19 tools) ≈ 17 s. Reproduce the shape within ±25%.
        let run_steps = |tools_tokens: u32, ctx: u32, decode_per_step: u32| {
            let mut total = 0.0;
            for step in 0..3u32 {
                let (t, _) = run(
                    &InferenceRequest {
                        prompt_tokens: 150 + tools_tokens + step * 120,
                        decode_tokens: decode_per_step,
                        context_tokens: ctx,
                    },
                    Quant::Q4KM,
                );
                total += t;
            }
            total
        };
        let fail_16k_46 = run_steps(4400, 16384, 150); // confused rambling
        let ok_16k_19 = run_steps(1800, 16384, 100);
        let ok_8k_19 = run_steps(1800, 8192, 100);
        assert!(
            (fail_16k_46 / 30.0 - 1.0).abs() < 0.25,
            "{fail_16k_46:.1} s vs 30 s"
        );
        assert!(
            (ok_16k_19 / 20.0 - 1.0).abs() < 0.25,
            "{ok_16k_19:.1} s vs 20 s"
        );
        assert!(
            (ok_8k_19 / 17.0 - 1.0).abs() < 0.25,
            "{ok_8k_19:.1} s vs 17 s"
        );
        assert!(ok_8k_19 < ok_16k_19 && ok_16k_19 < fail_16k_46);
    }
}
