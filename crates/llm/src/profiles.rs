//! Architecture and behaviour profiles of the six evaluated models.
//!
//! Architectural numbers (parameters, layers, KV heads) follow the public
//! model cards and drive the *cost* model. Behavioural constants are
//! calibrated against the paper's reported endpoints:
//!
//! * `base_tool_competence`, `distractor_sensitivity`, `arg_fidelity`,
//!   `arg_quant_robustness` — fit so the default policy reproduces Table I
//!   and the Less-is-More policy reproduces the per-model Success-Rate /
//!   Tool-Accuracy levels quoted in §IV for Figure 2;
//! * `geo_*` and `chain_sensitivity` — same for GeoEngine (Figure 3),
//!   including the paper's exclusion of Phi3 and Qwen2-1.5b (their default
//!   GeoEngine success collapses to ≈10%);
//! * token counts — set the decode lengths that, through
//!   [`crate::timing`], land execution times and powers in the measured
//!   bands of Table II.

use crate::quant::{Quant, TaskKind};

/// Mean gold-chain length of the GeoEngine-like workload (see
/// `lim-workloads`); the Sequential calibration de-compounds Table I's
/// query-level ratios with this exponent.
pub const GEO_MEAN_CHAIN: f64 = 3.42;

/// Transformer shape parameters that determine memory and compute cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelArch {
    /// Parameter count in billions.
    pub params_b: f64,
    /// Decoder layer count.
    pub layers: u32,
    /// Grouped-query-attention KV head count.
    pub kv_heads: u32,
    /// Per-head dimension.
    pub head_dim: u32,
}

impl ModelArch {
    /// Weight bytes under a quantization.
    pub fn weight_bytes(&self, quant: Quant) -> f64 {
        self.params_b * 1e9 * quant.bits_per_weight() / 8.0
    }

    /// Bytes of KV cache per cached token position (fp16 K and V).
    pub fn kv_bytes_per_token(&self) -> f64 {
        2.0 * f64::from(self.layers) * f64::from(self.kv_heads) * f64::from(self.head_dim) * 2.0
    }

    /// Dense flops to process one token (the standard `2 × params` rule).
    pub fn flops_per_token(&self) -> f64 {
        2.0 * self.params_b * 1e9
    }
}

/// Full profile of one model: architecture plus calibrated behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// Model name as used in the paper (e.g. `"llama3.1-8b"`).
    pub name: &'static str,
    /// Cost-model shape.
    pub arch: ModelArch,
    /// P(correct tool) with a single candidate, fp16, single-call regime.
    pub base_tool_competence: f64,
    /// Exponential decay rate of tool accuracy per distractor tool
    /// (single-call regime). The "confusion" mechanism of Table II.
    pub distractor_sensitivity: f64,
    /// Distractor decay rate in the sequential regime (per step).
    pub chain_sensitivity: f64,
    /// P(arguments correct | tool correct) at fp16, single-call regime.
    pub arg_fidelity: f64,
    /// How much of the argument fidelity survives quantization (0 = full
    /// quant damage, 1 = immune). Function-calling-tuned models keep their
    /// JSON discipline under quantization far better.
    pub arg_quant_robustness: f64,
    /// Multiplier on tool competence in the sequential (GeoEngine) regime.
    pub geo_competence_scale: f64,
    /// P(arguments correct | tool correct) per step in the sequential
    /// regime (quant-independent; geo call templates are structural).
    pub geo_arg_fidelity: f64,
    /// Fidelity of recommender-produced "ideal tool" descriptions (word
    /// retention probability scale).
    pub recommender_quality: f64,
    /// P(the model signals an explicit error when no offered tool fits),
    /// which is what makes the paper's Level-3 fallback reachable.
    pub error_awareness: f64,
    /// Decode tokens for a clean tool call.
    pub call_tokens: u32,
    /// Decode tokens when the model is confused / failing (rambling).
    pub ramble_tokens: u32,
    /// Decode tokens for the recommender step.
    pub recommend_tokens: u32,
}

impl ModelProfile {
    /// Probability of selecting the correct tool for one call.
    ///
    /// `distractors` is the number of offered tools beyond the needed one.
    /// Returns a probability in `[0, 1]`.
    pub fn tool_accuracy(&self, quant: Quant, task: TaskKind, distractors: usize) -> f64 {
        let factor = quant.competence_factor(task);
        let (base, sens, quant_share) = match task {
            TaskKind::SingleCall => (
                self.base_tool_competence,
                self.distractor_sensitivity,
                // Single-call quantization damage shows up mostly in
                // argument/format corruption, only mildly in tool choice.
                factor.powf(0.1),
            ),
            TaskKind::Sequential => (
                self.base_tool_competence * self.geo_competence_scale,
                self.chain_sensitivity,
                // Sequential damage is losing the thread of the chain:
                // full factor lands on tool choice.
                factor,
            ),
        };
        (base * quant_share * (-sens * distractors as f64).exp()).clamp(0.0, 1.0)
    }

    /// Probability the arguments are correct given the tool was correct.
    pub fn arg_accuracy(&self, quant: Quant, task: TaskKind) -> f64 {
        match task {
            TaskKind::SingleCall => {
                let factor = quant.competence_factor(task);
                let exponent = 0.9 * (1.0 - self.arg_quant_robustness);
                (self.arg_fidelity * factor.powf(exponent)).clamp(0.0, 1.0)
            }
            TaskKind::Sequential => self.geo_arg_fidelity.clamp(0.0, 1.0),
        }
    }

    /// Looks a profile up by name.
    pub fn by_name(name: &str) -> Option<ModelProfile> {
        catalog().into_iter().find(|m| m.name == name)
    }
}

/// The six models evaluated in the paper, in its presentation order.
pub fn catalog() -> Vec<ModelProfile> {
    vec![
        ModelProfile {
            name: "hermes2-pro-8b",
            arch: ModelArch {
                params_b: 8.0,
                layers: 32,
                kv_heads: 8,
                head_dim: 128,
            },
            base_tool_competence: 0.977,
            distractor_sensitivity: 0.011,
            chain_sensitivity: 0.004,
            arg_fidelity: 0.92,
            arg_quant_robustness: 0.75,
            geo_competence_scale: 0.96,
            geo_arg_fidelity: 0.995,
            recommender_quality: 0.90,
            error_awareness: 0.65,
            call_tokens: 45,
            ramble_tokens: 340,
            recommend_tokens: 28,
        },
        ModelProfile {
            name: "llama3.1-8b",
            arch: ModelArch {
                params_b: 8.0,
                layers: 32,
                kv_heads: 8,
                head_dim: 128,
            },
            base_tool_competence: 1.0,
            distractor_sensitivity: 0.0047,
            chain_sensitivity: 0.0012,
            arg_fidelity: 0.80,
            arg_quant_robustness: 0.0,
            geo_competence_scale: 0.974,
            geo_arg_fidelity: 0.95,
            recommender_quality: 0.85,
            error_awareness: 0.50,
            call_tokens: 48,
            ramble_tokens: 340,
            recommend_tokens: 30,
        },
        ModelProfile {
            name: "mistral-8b",
            arch: ModelArch {
                params_b: 7.2,
                layers: 32,
                kv_heads: 8,
                head_dim: 128,
            },
            base_tool_competence: 0.62,
            distractor_sensitivity: 0.0008,
            chain_sensitivity: 0.0008,
            arg_fidelity: 0.65,
            arg_quant_robustness: 0.3,
            geo_competence_scale: 1.35,
            geo_arg_fidelity: 0.99,
            recommender_quality: 0.60,
            error_awareness: 0.35,
            call_tokens: 50,
            ramble_tokens: 420,
            recommend_tokens: 40,
        },
        ModelProfile {
            name: "phi3-8b",
            arch: ModelArch {
                params_b: 7.4,
                layers: 32,
                kv_heads: 8,
                head_dim: 96,
            },
            base_tool_competence: 0.857,
            distractor_sensitivity: 0.008,
            chain_sensitivity: 0.0019,
            arg_fidelity: 0.93,
            arg_quant_robustness: 0.5,
            geo_competence_scale: 0.74,
            geo_arg_fidelity: 0.90,
            recommender_quality: 0.70,
            error_awareness: 0.45,
            call_tokens: 46,
            ramble_tokens: 320,
            recommend_tokens: 32,
        },
        ModelProfile {
            name: "qwen2-1.5b",
            arch: ModelArch {
                params_b: 1.5,
                layers: 28,
                kv_heads: 2,
                head_dim: 128,
            },
            base_tool_competence: 0.835,
            distractor_sensitivity: 0.0095,
            chain_sensitivity: 0.002,
            arg_fidelity: 0.816,
            arg_quant_robustness: 0.2,
            geo_competence_scale: 0.78,
            geo_arg_fidelity: 0.88,
            recommender_quality: 0.65,
            error_awareness: 0.40,
            call_tokens: 44,
            ramble_tokens: 280,
            recommend_tokens: 26,
        },
        ModelProfile {
            name: "qwen2-7b",
            arch: ModelArch {
                params_b: 7.6,
                layers: 28,
                kv_heads: 4,
                head_dim: 128,
            },
            base_tool_competence: 0.955,
            distractor_sensitivity: 0.009,
            chain_sensitivity: 0.003,
            arg_fidelity: 0.954,
            arg_quant_robustness: 0.65,
            geo_competence_scale: 0.89,
            geo_arg_fidelity: 0.95,
            recommender_quality: 0.82,
            error_awareness: 0.55,
            call_tokens: 46,
            ramble_tokens: 330,
            recommend_tokens: 30,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_the_six_paper_models() {
        let names: Vec<&str> = catalog().iter().map(|m| m.name).collect();
        assert_eq!(
            names,
            vec![
                "hermes2-pro-8b",
                "llama3.1-8b",
                "mistral-8b",
                "phi3-8b",
                "qwen2-1.5b",
                "qwen2-7b"
            ]
        );
    }

    #[test]
    fn by_name_roundtrips() {
        for m in catalog() {
            assert_eq!(ModelProfile::by_name(m.name).unwrap().name, m.name);
        }
        assert!(ModelProfile::by_name("gpt-4").is_none());
    }

    #[test]
    fn weight_bytes_scale_with_quant() {
        let arch = catalog()[1].arch;
        let q4 = arch.weight_bytes(Quant::Q4KM);
        let q8 = arch.weight_bytes(Quant::Q8_0);
        let f16 = arch.weight_bytes(Quant::F16);
        assert!((q4 - 4.85e9).abs() < 1e8, "q4_K_M 8B ≈ 4.85 GB, got {q4}");
        assert!(q4 < q8 && q8 < f16);
    }

    #[test]
    fn llama_kv_cache_matches_hand_calculation() {
        // 2 (K and V) × 32 layers × 8 kv heads × 128 dim × 2 bytes.
        let arch = ModelProfile::by_name("llama3.1-8b").unwrap().arch;
        assert_eq!(arch.kv_bytes_per_token(), 131072.0);
    }

    #[test]
    fn table1_llama_bfcl_default_success_rates() {
        // The product tool_accuracy × arg_accuracy with 50 distractors must
        // reproduce Table I row 1 (BFCL) within ~2 points.
        let m = ModelProfile::by_name("llama3.1-8b").unwrap();
        let expected = [
            (Quant::F16, 0.6304),
            (Quant::Q4_0, 0.2043),
            (Quant::Q4_1, 0.3435),
            (Quant::Q4KM, 0.3957),
            (Quant::Q8_0, 0.4435),
        ];
        for (q, target) in expected {
            let p = m.tool_accuracy(q, TaskKind::SingleCall, 50)
                * m.arg_accuracy(q, TaskKind::SingleCall);
            assert!(
                (p - target).abs() < 0.02,
                "{q}: model {p:.4} vs paper {target:.4}"
            );
        }
    }

    #[test]
    fn table1_llama_geo_default_success_rates() {
        // Sequential: per-step success compounded over the mean chain
        // length must land near Table I row 2 (GeoEngine).
        let m = ModelProfile::by_name("llama3.1-8b").unwrap();
        let expected = [
            (Quant::F16, 0.6391),
            (Quant::Q4_0, 0.4304),
            (Quant::Q4_1, 0.5957),
            (Quant::Q4KM, 0.5696),
            (Quant::Q8_0, 0.5304),
        ];
        for (q, target) in expected {
            let per_step = m.tool_accuracy(q, TaskKind::Sequential, 45)
                * m.arg_accuracy(q, TaskKind::Sequential);
            let p = per_step.powf(GEO_MEAN_CHAIN);
            assert!(
                (p - target).abs() < 0.04,
                "{q}: model {p:.4} vs paper {target:.4}"
            );
        }
    }

    #[test]
    fn fewer_distractors_always_helps_or_ties() {
        for m in catalog() {
            for q in Quant::ALL {
                for task in [TaskKind::SingleCall, TaskKind::Sequential] {
                    let few = m.tool_accuracy(q, task, 3);
                    let many = m.tool_accuracy(q, task, 50);
                    assert!(few >= many, "{} {q}", m.name);
                }
            }
        }
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        for m in catalog() {
            for q in Quant::ALL {
                for task in [TaskKind::SingleCall, TaskKind::Sequential] {
                    for d in [0, 1, 10, 100, 1000] {
                        let t = m.tool_accuracy(q, task, d);
                        let a = m.arg_accuracy(q, task);
                        assert!((0.0..=1.0).contains(&t));
                        assert!((0.0..=1.0).contains(&a));
                    }
                }
            }
        }
    }

    #[test]
    fn phi3_and_qwen15_collapse_on_geo_as_paper_reports() {
        // §IV: their default GeoEngine success is ≈10%, which is why the
        // paper excludes them from Figure 3.
        for name in ["phi3-8b", "qwen2-1.5b"] {
            let m = ModelProfile::by_name(name).unwrap();
            let per_step = m.tool_accuracy(Quant::Q4KM, TaskKind::Sequential, 45)
                * m.arg_accuracy(Quant::Q4KM, TaskKind::Sequential);
            let query = per_step.powf(GEO_MEAN_CHAIN);
            assert!(query < 0.2, "{name} geo default = {query:.3}");
        }
    }
}
