//! Calibrated edge-LLM simulator — the Ollama-served-model substitute.
//!
//! The paper runs six open LLMs (Hermes2-Pro-8b, Llama3.1-8b, Mistral-8b,
//! Phi3-8b, Qwen2-1.5b, Qwen2-7b) in four Ollama quantizations on a Jetson
//! board. Its claims are *statistical*: success rates, tool accuracies and
//! time/power deltas between tool-presentation policies. This crate models
//! the causal levers those claims rest on, and nothing more:
//!
//! 1. **Capability** ([`agent`]) — the probability of choosing the right
//!    tool falls with the number of distractor tools offered (the Table II
//!    insight), falls with quantization (Table I), and compounds across
//!    sequential call chains (the GeoEngine regime);
//! 2. **Recommendation** ([`recommender`]) — prompted with *no* tools, the
//!    model emits noisy "ideal tool" descriptions whose fidelity depends on
//!    model quality, so downstream retrieval can genuinely miss;
//! 3. **Cost** ([`timing`]) — prompt length (tool JSON), decode length and
//!    the allocated context window map to roofline phases for
//!    [`lim_device`].
//!
//! Everything is deterministic given a seed: each decision derives its own
//! [`rand::rngs::StdRng`] stream, so full benchmark runs are reproducible
//! bit-for-bit.
//!
//! Calibration constants live in [`profiles`] and are documented against
//! the paper figure/table they were fit to; `EXPERIMENTS.md` records how
//! close the regenerated numbers land.

pub mod agent;
pub mod profiles;
pub mod recommender;
pub mod timing;
pub mod tokens;

mod quant;

pub use agent::{AgentOutcome, CallAttempt};
pub use profiles::{ModelArch, ModelProfile};
pub use quant::{Quant, TaskKind};

#[cfg(test)]
mod tests;
