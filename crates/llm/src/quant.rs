//! Quantization variants and task-style calibration.

/// Which benchmark regime a query belongs to.
///
/// Quantization damage differs by regime (Table I): single-call BFCL-style
/// queries collapse hard under 4-bit quantization, while GeoEngine-style
/// sequential queries — whose prompts carry more structural scaffolding —
/// degrade less (and non-monotonically).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Independent single function calls per query (BFCL-like).
    SingleCall,
    /// Sequential chains where each call consumes the previous result
    /// (GeoEngine-like).
    Sequential,
}

/// Ollama-style weight quantization of a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quant {
    /// Full-precision fp16 (the HuggingFace reference point in Table I).
    F16,
    /// 4-bit, smallest and least accurate.
    Q4_0,
    /// 4-bit with per-block min offset; better accuracy.
    Q4_1,
    /// 4-bit mixed-precision K-quant; the common default.
    Q4KM,
    /// 8-bit; highest fidelity of the quantized set.
    Q8_0,
}

impl Quant {
    /// The four Ollama variants evaluated in Figures 2–3.
    pub const OLLAMA: [Quant; 4] = [Quant::Q4_0, Quant::Q4_1, Quant::Q4KM, Quant::Q8_0];

    /// All variants including full precision (Table I's columns).
    pub const ALL: [Quant; 5] = [
        Quant::F16,
        Quant::Q4_0,
        Quant::Q4_1,
        Quant::Q4KM,
        Quant::Q8_0,
    ];

    /// Effective storage bits per weight (including block scales/offsets).
    pub fn bits_per_weight(self) -> f64 {
        match self {
            Quant::F16 => 16.0,
            Quant::Q4_0 => 4.5,
            Quant::Q4_1 => 5.0,
            Quant::Q4KM => 4.85,
            Quant::Q8_0 => 8.5,
        }
    }

    /// Fraction of full-precision *per-call* competence that survives this
    /// quantization, per task style.
    ///
    /// Calibrated against **Table I** (Llama3.1-8b success-rate ratios to
    /// full precision). For single-call queries the query-level ratio *is*
    /// the per-call ratio: BFCL gives 20.43/63.04 ≈ 0.32, 34.35/63.04 ≈
    /// 0.55, 39.57/63.04 ≈ 0.63, 44.35/63.04 ≈ 0.70. GeoEngine queries in
    /// the reproduction workload chain ~3.42 calls on average, so the
    /// query-level ratios (0.67, 0.93, 0.89, 0.83) are de-compounded as
    /// `r^(1/3.42)` to get the per-call factors below. Note the paper's
    /// non-monotone GeoEngine ordering (q4_1 > q4_K_M > q8_0) is
    /// preserved deliberately.
    pub fn competence_factor(self, task: TaskKind) -> f64 {
        match (self, task) {
            (Quant::F16, _) => 1.0,
            (Quant::Q4_0, TaskKind::SingleCall) => 0.32,
            (Quant::Q4_1, TaskKind::SingleCall) => 0.55,
            (Quant::Q4KM, TaskKind::SingleCall) => 0.63,
            (Quant::Q8_0, TaskKind::SingleCall) => 0.70,
            (Quant::Q4_0, TaskKind::Sequential) => 0.891,
            (Quant::Q4_1, TaskKind::Sequential) => 0.980,
            (Quant::Q4KM, TaskKind::Sequential) => 0.967,
            (Quant::Q8_0, TaskKind::Sequential) => 0.947,
        }
    }

    /// Ollama-style tag, e.g. `"q4_K_M"`.
    pub fn label(self) -> &'static str {
        match self {
            Quant::F16 => "f16",
            Quant::Q4_0 => "q4_0",
            Quant::Q4_1 => "q4_1",
            Quant::Q4KM => "q4_K_M",
            Quant::Q8_0 => "q8_0",
        }
    }
}

impl std::fmt::Display for Quant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_ordering_matches_family() {
        assert!(Quant::Q4_0.bits_per_weight() < Quant::Q4KM.bits_per_weight());
        assert!(Quant::Q4KM.bits_per_weight() < Quant::Q8_0.bits_per_weight());
        assert!(Quant::Q8_0.bits_per_weight() < Quant::F16.bits_per_weight());
    }

    #[test]
    fn single_call_competence_is_monotone_in_fidelity() {
        let t = TaskKind::SingleCall;
        assert!(Quant::Q4_0.competence_factor(t) < Quant::Q4_1.competence_factor(t));
        assert!(Quant::Q4_1.competence_factor(t) < Quant::Q4KM.competence_factor(t));
        assert!(Quant::Q4KM.competence_factor(t) < Quant::Q8_0.competence_factor(t));
        assert!(Quant::Q8_0.competence_factor(t) < Quant::F16.competence_factor(t));
    }

    #[test]
    fn sequential_preserves_papers_non_monotone_ordering() {
        // Table I: q4_1 beats q4_K_M beats q8_0 on GeoEngine.
        let t = TaskKind::Sequential;
        assert!(Quant::Q4_1.competence_factor(t) > Quant::Q4KM.competence_factor(t));
        assert!(Quant::Q4KM.competence_factor(t) > Quant::Q8_0.competence_factor(t));
    }

    #[test]
    fn sequential_degrades_less_than_single_call() {
        for q in Quant::OLLAMA {
            assert!(
                q.competence_factor(TaskKind::Sequential)
                    >= q.competence_factor(TaskKind::SingleCall)
            );
        }
    }

    #[test]
    fn labels_are_ollama_style() {
        assert_eq!(Quant::Q4KM.to_string(), "q4_K_M");
        assert_eq!(Quant::Q8_0.label(), "q8_0");
    }
}
