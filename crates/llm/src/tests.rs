//! Crate-level behaviour and property tests.

use crate::{
    agent::CallAttempt,
    profiles::{catalog, ModelProfile},
    timing::{phases, InferenceRequest},
    Quant, TaskKind,
};
use proptest::prelude::*;

#[test]
fn end_to_end_call_cost_is_realistic() {
    // A default-policy BFCL query on Llama-q4_K_M: 51 tools (~4600-token
    // prompt) and a terse call should take single-digit seconds; the same
    // call with 5 tools should be several times faster.
    let orin = lim_device::DeviceProfile::jetson_agx_orin();
    let llama = ModelProfile::by_name("llama3.1-8b").unwrap();
    let time = |prompt: u32, ctx: u32| {
        phases(
            &llama,
            Quant::Q4KM,
            &InferenceRequest {
                prompt_tokens: prompt,
                decode_tokens: 48,
                context_tokens: ctx,
            },
        )
        .iter()
        .map(|p| orin.run_phase(p).seconds)
        .sum::<f64>()
    };
    let default_policy = time(4600, 16384);
    let lim_policy = time(700, 8192);
    assert!(
        default_policy > 4.0 && default_policy < 15.0,
        "{default_policy}"
    );
    assert!(lim_policy < default_policy * 0.55);
}

#[test]
fn recommender_overhead_is_negligible_vs_default_call() {
    // §IV claims the recommender step introduces negligible overhead
    // compared to full-tool function calling. Verify on the cost model.
    let orin = lim_device::DeviceProfile::jetson_agx_orin();
    let m = ModelProfile::by_name("hermes2-pro-8b").unwrap();
    let run = |req: &InferenceRequest| {
        phases(&m, Quant::Q4KM, req)
            .iter()
            .map(|p| orin.run_phase(p).seconds)
            .sum::<f64>()
    };
    let recommender = run(&InferenceRequest {
        prompt_tokens: 150,
        decode_tokens: m.recommend_tokens,
        context_tokens: 8192,
    });
    let default_call = run(&InferenceRequest {
        prompt_tokens: 4600,
        decode_tokens: 150,
        context_tokens: 16384,
    });
    assert!(
        recommender < 0.45 * default_call,
        "recommender {recommender:.2}s vs default call {default_call:.2}s"
    );
}

proptest! {
    /// Attempt resolution never panics and respects the gold-offered
    /// invariant for every model/quant/task combination.
    #[test]
    fn resolve_total_and_consistent(
        model_ix in 0usize..6,
        quant_ix in 0usize..5,
        task_ix in 0usize..2,
        offered in 1usize..64,
        gold in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let models = catalog();
        let attempt = CallAttempt {
            model: &models[model_ix],
            quant: Quant::ALL[quant_ix],
            task: [TaskKind::SingleCall, TaskKind::Sequential][task_ix],
            offered,
            gold_offered: gold,
            seed,
        };
        let outcome = attempt.resolve();
        if !gold {
            prop_assert!(!outcome.is_success());
        }
        prop_assert!(attempt.decode_tokens(outcome) > 0);
    }

    /// Phase construction is total and produces non-negative quantities
    /// with the documented labels.
    #[test]
    fn phases_well_formed(
        prompt in 0u32..20_000,
        decode in 0u32..2_000,
        ctx_pow in 10u32..16,
    ) {
        let m = &catalog()[1];
        let req = InferenceRequest {
            prompt_tokens: prompt,
            decode_tokens: decode,
            context_tokens: 1 << ctx_pow,
        };
        let ps = phases(m, Quant::Q4KM, &req);
        let expected = usize::from(prompt > 0) + usize::from(decode > 0);
        prop_assert_eq!(ps.len(), expected);
        for p in &ps {
            prop_assert!(p.flops() >= 0.0);
            prop_assert!(p.bytes() >= 0.0);
            prop_assert!(p.label() == "prefill" || p.label() == "decode");
        }
    }

    /// Success rates are monotone: fewer distractors never hurt, in every
    /// configuration (the paper's core monotonicity).
    #[test]
    fn analytic_monotonicity(
        model_ix in 0usize..6,
        quant_ix in 0usize..5,
        d1 in 0usize..100,
        d2 in 0usize..100,
    ) {
        let models = catalog();
        let m = &models[model_ix];
        let q = Quant::ALL[quant_ix];
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        for task in [TaskKind::SingleCall, TaskKind::Sequential] {
            prop_assert!(m.tool_accuracy(q, task, lo) >= m.tool_accuracy(q, task, hi));
        }
    }
}
