//! **Figure 2** — BFCL: Success Rate, Tool Accuracy, Normalized Execution
//! Time and Normalized Power for six models × four quantizations under
//! default, Gorilla, LiM k=3 and LiM k=5.
//!
//! ```sh
//! cargo bench -p lim-bench --bench fig2
//! ```

use lim_bench::experiments::{model_set, quant_mean, run_grid_threads};
use lim_bench::report::{pct, ratio, Table};
use lim_bench::{harness_threads, query_budget, HARNESS_SEED};
use lim_core::{Policy, SearchLevels};
use lim_llm::Quant;

/// One paper endpoint row: (model, success, tool accuracy, time
/// reduction, power reduction) under Less-is-More; `None` where the paper
/// gives no number ("no gain" for Mistral).
type PaperRow = (&'static str, Option<f64>, Option<f64>, f64, f64);

/// Per-model endpoints quoted in §IV for the BFCL figure.
const PAPER: &[PaperRow] = &[
    ("hermes2-pro-8b", Some(0.71), Some(0.89), 0.80, 0.45),
    ("llama3.1-8b", Some(0.442), Some(0.938), 0.72, 0.30),
    ("mistral-8b", None, None, 0.77, 0.18),
    ("phi3-8b", Some(0.55), Some(0.78), 0.55, 0.20),
    ("qwen2-1.5b", Some(0.40), Some(0.76), 0.48, 0.20),
    ("qwen2-7b", Some(0.68), Some(0.87), 0.70, 0.27),
];

fn main() {
    let n = query_budget();
    let workload = lim_workloads::bfcl(HARNESS_SEED, n);
    let levels = SearchLevels::build(&workload);
    let models = model_set(&[
        "hermes2-pro-8b",
        "llama3.1-8b",
        "mistral-8b",
        "phi3-8b",
        "qwen2-1.5b",
        "qwen2-7b",
    ]);
    let policies = [
        Policy::Default,
        Policy::Gorilla { k: 3 },
        Policy::less_is_more(3),
        Policy::less_is_more(5),
    ];
    let cells = run_grid_threads(
        &workload,
        &levels,
        &models,
        &Quant::OLLAMA,
        &policies,
        HARNESS_SEED,
        harness_threads(),
    );

    // ---- Full per-variant grid.
    let mut grid = Table::new(
        &format!("Figure 2 — BFCL, per quant variant ({n} queries)"),
        &[
            "model",
            "quant",
            "policy",
            "success",
            "tool acc",
            "norm time",
            "norm power",
            "tools",
            "fallback",
        ],
    );
    for c in &cells {
        grid.row(&[
            c.model.clone(),
            c.quant.to_string(),
            c.policy.clone(),
            pct(c.metrics.success_rate),
            pct(c.metrics.tool_accuracy),
            ratio(c.norm_time),
            ratio(c.norm_power),
            format!("{:.1}", c.metrics.avg_offered_tools),
            pct(c.metrics.fallback_rate),
        ]);
    }
    grid.print();

    // ---- Per-model summary (mean over quant variants) vs paper.
    let mut summary = Table::new(
        "Figure 2 — per-model summary (mean over q4_0/q4_1/q4_K_M/q8_0)",
        &[
            "model",
            "policy",
            "success",
            "tool acc",
            "norm time",
            "norm power",
            "paper (LiM)",
        ],
    );
    for (model, p_succ, p_acc, p_time, p_power) in PAPER {
        for policy in ["default", "gorilla-k3", "lim-k3", "lim-k5"] {
            let succ = quant_mean(&cells, model, policy, |c| c.metrics.success_rate);
            let acc = quant_mean(&cells, model, policy, |c| c.metrics.tool_accuracy);
            let time = quant_mean(&cells, model, policy, |c| c.norm_time);
            let power = quant_mean(&cells, model, policy, |c| c.norm_power);
            let reference = if policy == "lim-k3" {
                format!(
                    "succ {} acc {} time -{:.0}% power -{:.0}%",
                    p_succ.map_or("flat".into(), pct),
                    p_acc.map_or("flat".into(), pct),
                    100.0 * p_time,
                    100.0 * p_power
                )
            } else {
                String::new()
            };
            summary.row(&[
                (*model).to_owned(),
                policy.to_owned(),
                pct(succ),
                pct(acc),
                ratio(time),
                ratio(power),
                reference,
            ]);
        }
    }
    summary.print();
}
