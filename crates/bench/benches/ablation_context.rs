//! **Ablation A2** — context-window right-sizing (§IV: "we also tested
//! context windows larger than 16k. While there was no significant
//! improvement in success rate, execution time increased noticeably").
//!
//! Sweeps the allocated context of the *default* policy on BFCL.
//!
//! ```sh
//! cargo bench -p lim-bench --bench ablation_context
//! ```

use lim_bench::report::{pct, secs, watts, Table};
use lim_bench::{query_budget, HARNESS_SEED};
use lim_core::{Pipeline, SearchLevels};
use lim_llm::{ModelProfile, Quant};

fn main() {
    let n = query_budget();
    let workload = lim_workloads::bfcl(HARNESS_SEED, n);
    let levels = SearchLevels::build(&workload);
    let model = ModelProfile::by_name("llama3.1-8b").expect("model exists");
    let pipeline = Pipeline::new(&workload, &levels, &model, Quant::Q4KM).with_seed(HARNESS_SEED);
    let all: Vec<usize> = (0..workload.registry.len()).collect();

    let mut table = Table::new(
        &format!("A2 — context sweep, default policy, llama3.1-8b q4_K_M, BFCL ({n} queries)"),
        &["context", "success", "avg time", "avg power", "note"],
    );
    for ctx in [8_192u32, 16_384, 24_576, 32_768] {
        let mut success = 0usize;
        let mut time = 0.0;
        let mut joules = 0.0;
        for q in &workload.queries {
            let r = pipeline.run_query_offered(q, &all, ctx);
            success += usize::from(r.success);
            time += r.cost.seconds;
            joules += r.cost.joules;
        }
        let note = match ctx {
            16_384 => "paper's default choice",
            8_192 => "fits 51 tools but no headroom",
            _ => "larger: no success gain, more time",
        };
        table.row(&[
            format!("{}k", ctx / 1024),
            pct(success as f64 / n as f64),
            secs(time / n as f64),
            watts(joules / time),
            note.to_owned(),
        ]);
    }
    table.print();
}
