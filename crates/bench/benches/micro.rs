//! **M1** — Criterion micro-benchmarks backing the paper's claim that the
//! similarity machinery is "an inexpensive, pretrained embedding
//! tokenizer" path: embedding, k-NN search (at catalog sizes from 46 to
//! 4096), clustering, level construction and the full controller
//! decision, all of which must be negligible next to a single LLM decode
//! step (~50 ms on the Orin).
//!
//! ```sh
//! cargo bench -p lim-bench --bench micro
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lim_core::{ControllerConfig, SearchLevels, ToolController};
use lim_embed::Embedder;
use lim_vecstore::{FlatIndex, IvfIndex, IvfParams, Metric, VectorIndex};

fn bench_embedding(c: &mut Criterion) {
    let embedder = Embedder::new();
    c.bench_function("embed/tool-description", |b| {
        b.iter(|| {
            embedder.embed(black_box(
                "Fetches current weather data and forecast for a given city and date range",
            ))
        })
    });
}

fn bench_knn(c: &mut Criterion) {
    let embedder = Embedder::new();
    let query = embedder.embed("plot the vqa captions of the region on a map");
    let mut group = c.benchmark_group("knn/top3");
    for &size in &[46usize, 256, 1024, 4096] {
        let mut flat = FlatIndex::new(embedder.dim(), Metric::Cosine);
        for i in 0..size {
            let v = embedder.embed(&format!("synthetic tool number {i} doing task {}", i % 17));
            flat.add(i as u64, v.as_slice()).expect("unique ids");
        }
        group.bench_with_input(BenchmarkId::new("flat", size), &flat, |b, idx| {
            b.iter(|| idx.search(black_box(query.as_slice()), 3))
        });
        if size >= 256 {
            let data: Vec<(u64, Vec<f32>)> = flat.iter().map(|(id, v)| (id, v.to_vec())).collect();
            let refs: Vec<(u64, &[f32])> = data.iter().map(|(i, v)| (*i, v.as_slice())).collect();
            let ivf = IvfIndex::train(
                embedder.dim(),
                Metric::Cosine,
                IvfParams {
                    nlist: 16,
                    nprobe: 4,
                    seed: 7,
                },
                &refs,
            )
            .expect("training data is valid");
            group.bench_with_input(BenchmarkId::new("ivf", size), &ivf, |b, idx| {
                b.iter(|| idx.search(black_box(query.as_slice()), 3))
            });
        }
    }
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let embedder = Embedder::builder().dim(128).build();
    let points: Vec<Vec<f32>> = (0..120)
        .map(|i| {
            embedder
                .embed(&format!("query number {i} about topic {}", i % 9))
                .as_slice()
                .to_vec()
        })
        .collect();
    c.bench_function("cluster/agglomerative-120", |b| {
        b.iter(|| {
            lim_cluster::agglomerative_with(
                black_box(&points),
                lim_cluster::Linkage::Average,
                lim_cluster::cosine_distance,
            )
        })
    });
}

fn bench_levels_and_controller(c: &mut Criterion) {
    let workload = lim_workloads::bfcl(1, 60);
    c.bench_function("levels/build-bfcl", |b| {
        b.iter(|| SearchLevels::build(black_box(&workload)))
    });

    let levels = SearchLevels::build(&workload);
    let controller = ToolController::new(&levels, ControllerConfig::with_k(3));
    let recs = vec![
        "converts a monetary amount between currencies".to_string(),
        "fetches the weather forecast of a city".to_string(),
    ];
    c.bench_function("controller/select", |b| {
        b.iter(|| controller.select(black_box("convert 100 USD to EUR"), black_box(&recs)))
    });
}

criterion_group!(
    benches,
    bench_embedding,
    bench_knn,
    bench_clustering,
    bench_levels_and_controller
);
criterion_main!(benches);
