//! **Ablation A5** — sensitivity to the retrieval width `k` (the paper
//! evaluates k = 3 and k = 5; this sweep adds 1, 2 and 8).
//!
//! ```sh
//! cargo bench -p lim-bench --bench ablation_k
//! ```

use lim_bench::report::{pct, ratio, Table};
use lim_bench::{query_budget, HARNESS_SEED};
use lim_core::{evaluate, normalize_against, Pipeline, Policy, SearchLevels};
use lim_llm::{ModelProfile, Quant};

fn main() {
    let n = query_budget();
    let bfcl = lim_workloads::bfcl(HARNESS_SEED, n);
    let geo = lim_workloads::geoengine(HARNESS_SEED, n);
    let bfcl_levels = SearchLevels::build(&bfcl);
    let geo_levels = SearchLevels::build(&geo);
    let model = ModelProfile::by_name("hermes2-pro-8b").expect("model exists");

    for (name, workload, levels) in [
        ("BFCL", &bfcl, &bfcl_levels),
        ("GeoEngine", &geo, &geo_levels),
    ] {
        let pipeline = Pipeline::new(workload, levels, &model, Quant::Q4KM).with_seed(HARNESS_SEED);
        let baseline = evaluate(&pipeline, Policy::Default);
        let mut table = Table::new(
            &format!("A5 — k sweep, {name}, hermes2-pro q4_K_M ({n} queries)"),
            &[
                "k",
                "success",
                "tool acc",
                "avg tools",
                "norm time",
                "norm power",
                "note",
            ],
        );
        table.row(&[
            "all (default)".to_owned(),
            pct(baseline.success_rate),
            pct(baseline.tool_accuracy),
            format!("{:.1}", baseline.avg_offered_tools),
            ratio(1.0),
            ratio(1.0),
            String::new(),
        ]);
        for k in [1usize, 2, 3, 5, 8] {
            let m = evaluate(&pipeline, Policy::less_is_more(k));
            let (time, power) = normalize_against(&baseline, &m);
            let note = match k {
                3 | 5 => "paper setting",
                1 => "narrowest: leans fully on top-1 retrieval",
                8 => "wider: distractors creep back in",
                _ => "",
            };
            table.row(&[
                k.to_string(),
                pct(m.success_rate),
                pct(m.tool_accuracy),
                format!("{:.1}", m.avg_offered_tools),
                ratio(time),
                ratio(power),
                note.to_owned(),
            ]);
        }
        table.print();
    }
}
