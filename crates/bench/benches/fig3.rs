//! **Figure 3** — GeoEngine: Success Rate, Tool Accuracy, Normalized
//! Execution Time and Normalized Power for the four models the paper
//! keeps (Phi3 and Qwen2-1.5b are excluded because their default success
//! collapses to ≈10%).
//!
//! ```sh
//! cargo bench -p lim-bench --bench fig3
//! ```

use lim_bench::experiments::{model_set, quant_mean, run_grid_threads};
use lim_bench::report::{pct, ratio, Table};
use lim_bench::{harness_threads, query_budget, HARNESS_SEED};
use lim_core::{evaluate, Pipeline, Policy, SearchLevels};
use lim_llm::Quant;

/// §IV endpoints for Figure 3: (success, tool accuracy, time reduction,
/// power reduction) under Less-is-More. Mistral's time is *negative*
/// reduction on some variants (+10%).
const PAPER: &[(&str, f64, f64, f64, f64)] = &[
    ("hermes2-pro-8b", 0.63, 0.64, 0.15, 0.06),
    ("llama3.1-8b", 0.56, 0.56, 0.40, 0.12),
    ("mistral-8b", 0.46, 0.47, -0.10, 0.09),
    ("qwen2-7b", 0.35, 0.35, 0.21, 0.13),
];

fn main() {
    let n = query_budget();
    let workload = lim_workloads::geoengine(HARNESS_SEED, n);
    let levels = SearchLevels::build(&workload);

    // ---- The exclusion check the paper reports (§IV).
    let mut exclusion = Table::new(
        "Figure 3 — exclusion check: default success of the small models",
        &["model", "default success (q4_K_M)", "paper"],
    );
    for name in ["phi3-8b", "qwen2-1.5b"] {
        let model = lim_llm::ModelProfile::by_name(name).expect("model exists");
        let pipeline =
            Pipeline::new(&workload, &levels, &model, Quant::Q4KM).with_seed(HARNESS_SEED);
        let metrics = evaluate(&pipeline, Policy::Default);
        exclusion.row(&[
            name.to_owned(),
            pct(metrics.success_rate),
            "≈10% → excluded".to_owned(),
        ]);
    }
    exclusion.print();

    let models = model_set(&["hermes2-pro-8b", "llama3.1-8b", "mistral-8b", "qwen2-7b"]);
    // Gorilla is run at two retrieval widths to show that its sequential
    // failure is structural (one-shot retrieval cannot cover a chain), not
    // an artifact of k.
    let policies = [
        Policy::Default,
        Policy::Gorilla { k: 3 },
        Policy::Gorilla { k: 10 },
        Policy::less_is_more(3),
        Policy::less_is_more(5),
    ];
    let cells = run_grid_threads(
        &workload,
        &levels,
        &models,
        &Quant::OLLAMA,
        &policies,
        HARNESS_SEED,
        harness_threads(),
    );

    let mut grid = Table::new(
        &format!("Figure 3 — GeoEngine, per quant variant ({n} queries)"),
        &[
            "model",
            "quant",
            "policy",
            "success",
            "tool acc",
            "norm time",
            "norm power",
            "tools",
            "fallback",
        ],
    );
    for c in &cells {
        grid.row(&[
            c.model.clone(),
            c.quant.to_string(),
            c.policy.clone(),
            pct(c.metrics.success_rate),
            pct(c.metrics.tool_accuracy),
            ratio(c.norm_time),
            ratio(c.norm_power),
            format!("{:.1}", c.metrics.avg_offered_tools),
            pct(c.metrics.fallback_rate),
        ]);
    }
    grid.print();

    let mut summary = Table::new(
        "Figure 3 — per-model summary (mean over q4_0/q4_1/q4_K_M/q8_0)",
        &[
            "model",
            "policy",
            "success",
            "tool acc",
            "norm time",
            "norm power",
            "paper (LiM)",
        ],
    );
    for (model, p_succ, p_acc, p_time, p_power) in PAPER {
        for policy in ["default", "gorilla-k3", "gorilla-k10", "lim-k3", "lim-k5"] {
            let succ = quant_mean(&cells, model, policy, |c| c.metrics.success_rate);
            let acc = quant_mean(&cells, model, policy, |c| c.metrics.tool_accuracy);
            let time = quant_mean(&cells, model, policy, |c| c.norm_time);
            let power = quant_mean(&cells, model, policy, |c| c.norm_power);
            let reference = if policy == "lim-k3" {
                format!(
                    "succ {} acc {} time {}{:.0}% power -{:.0}%",
                    pct(*p_succ),
                    pct(*p_acc),
                    if *p_time >= 0.0 { "-" } else { "+" },
                    100.0 * p_time.abs(),
                    100.0 * p_power
                )
            } else {
                String::new()
            };
            summary.row(&[
                (*model).to_owned(),
                policy.to_owned(),
                pct(succ),
                pct(acc),
                ratio(time),
                ratio(power),
                reference,
            ]);
        }
    }
    summary.print();
}
