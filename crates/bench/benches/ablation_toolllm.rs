//! **Ablation A4** — why ToolLLM's DFSDT baseline is absent from the
//! paper's figures: "its tree-based exploration could not fit on the
//! board" (§IV). Demonstrates both failure modes: DRAM exhaustion on a
//! 32 GB Orin, and an order-of-magnitude cost blow-up on the 64 GB kit.
//!
//! ```sh
//! cargo bench -p lim-bench --bench ablation_toolllm
//! ```

use lim_bench::report::{secs, Table};
use lim_bench::{query_budget, HARNESS_SEED};
use lim_core::{evaluate, plan_dfsdt, DfsdtConfig, Pipeline, Policy, SearchLevels};
use lim_device::DeviceProfile;
use lim_llm::{ModelProfile, Quant};

fn orin_32gb() -> DeviceProfile {
    DeviceProfile::new(
        "jetson-agx-orin-32gb",
        32 * 1024 * 1024 * 1024,
        133.0e9,
        20.0e12,
        9.0,
        1.23e-12,
        60.0e-12,
        267.0e-12,
    )
}

fn main() {
    let n = query_budget();
    let workload = lim_workloads::geoengine(HARNESS_SEED, n);
    let levels = SearchLevels::build(&workload);
    let model = ModelProfile::by_name("llama3.1-8b").expect("model exists");
    let quant = Quant::Q4KM;

    let mut table = Table::new(
        "A4 — ToolLLM DFSDT feasibility on Jetson boards (llama3.1-8b q4_K_M, GeoEngine)",
        &["board", "outcome", "peak memory", "time/query", "nodes"],
    );
    for device in [orin_32gb(), DeviceProfile::jetson_agx_orin()] {
        match plan_dfsdt(&workload, &model, quant, &device, &DfsdtConfig::default()) {
            Err(e) => table.row(&[
                device.name().to_owned(),
                format!("OOM: {e}"),
                String::new(),
                String::new(),
                String::new(),
            ]),
            Ok(plan) => table.row(&[
                device.name().to_owned(),
                "fits".to_owned(),
                format!("{:.1} GB", plan.peak_memory_bytes as f64 / 1e9),
                secs(plan.seconds_per_query),
                plan.nodes_expanded.to_string(),
            ]),
        }
    }
    table.print();

    // Contrast with the policies that do run.
    let pipeline = Pipeline::new(&workload, &levels, &model, quant).with_seed(HARNESS_SEED);
    let default = evaluate(&pipeline, Policy::Default);
    let lim = evaluate(&pipeline, Policy::less_is_more(3));
    let mut contrast = Table::new(
        &format!("A4 — cost contrast on the 64 GB board ({n} queries)"),
        &["approach", "time/query"],
    );
    let plan = plan_dfsdt(
        &workload,
        &model,
        quant,
        &DeviceProfile::jetson_agx_orin(),
        &DfsdtConfig::default(),
    )
    .expect("fits on 64 GB");
    contrast.row(&["toolllm-dfsdt (projected)", &secs(plan.seconds_per_query)]);
    contrast.row(&["default", &secs(default.avg_seconds)]);
    contrast.row(&["less-is-more k=3", &secs(lim.avg_seconds)]);
    contrast.print();
}
