//! **Ablation A1** — the recommender step's overhead (§IV claims it is
//! negligible because no tool schemas are attached to its prompt).
//!
//! Prints, per model, the mean recommender seconds against the mean total
//! Less-is-More query time and the mean default query time.
//!
//! ```sh
//! cargo bench -p lim-bench --bench ablation_recommender
//! ```

use lim_bench::experiments::model_set;
use lim_bench::report::{pct, secs, Table};
use lim_bench::{query_budget, HARNESS_SEED};
use lim_core::{evaluate, Pipeline, Policy, SearchLevels};
use lim_llm::Quant;

fn main() {
    let n = query_budget();
    let workload = lim_workloads::bfcl(HARNESS_SEED, n);
    let levels = SearchLevels::build(&workload);
    let models = model_set(&[
        "hermes2-pro-8b",
        "llama3.1-8b",
        "mistral-8b",
        "phi3-8b",
        "qwen2-1.5b",
        "qwen2-7b",
    ]);

    let mut table = Table::new(
        &format!("A1 — recommender overhead, BFCL q4_K_M ({n} queries)"),
        &[
            "model",
            "recommender",
            "LiM total",
            "default total",
            "share of LiM",
            "share of default",
        ],
    );
    for model in &models {
        let pipeline =
            Pipeline::new(&workload, &levels, model, Quant::Q4KM).with_seed(HARNESS_SEED);
        let lim = evaluate(&pipeline, Policy::less_is_more(3));
        let default = evaluate(&pipeline, Policy::Default);
        table.row(&[
            model.name.to_owned(),
            secs(lim.avg_recommender_seconds),
            secs(lim.avg_seconds),
            secs(default.avg_seconds),
            pct(lim.avg_recommender_seconds / lim.avg_seconds),
            pct(lim.avg_recommender_seconds / default.avg_seconds),
        ]);
    }
    table.print();
    println!(
        "claim check: the recommender must be a small share of the *default* query cost\n\
         it replaces — §IV calls it negligible compared to subsequent function calling."
    );
}
