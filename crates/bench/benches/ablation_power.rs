//! **Ablation A7** — power-mode extension (beyond the paper): edge boards
//! frequently run in a capped power mode (the Orin's 30 W preset) for
//! thermal or battery reasons. Does Less-is-More keep its advantage under
//! the cap — and can a capped LiM deployment beat an uncapped default one?
//!
//! ```sh
//! cargo bench -p lim-bench --bench ablation_power
//! ```

use lim_bench::report::{pct, secs, watts, Table};
use lim_bench::{query_budget, HARNESS_SEED};
use lim_core::{evaluate, Pipeline, Policy, SearchLevels};
use lim_device::DeviceProfile;
use lim_llm::{ModelProfile, Quant};

fn main() {
    let n = query_budget();
    let workload = lim_workloads::bfcl(HARNESS_SEED, n);
    let levels = SearchLevels::build(&workload);
    let model = ModelProfile::by_name("llama3.1-8b").expect("model exists");

    let mut table = Table::new(
        &format!("A7 — power modes, llama3.1-8b q4_K_M, BFCL ({n} queries)"),
        &[
            "device mode",
            "policy",
            "success",
            "avg time",
            "avg power",
            "energy/query",
        ],
    );
    let mut lim_capped_time = 0.0;
    let mut default_maxn_time = 0.0;
    for device in [
        DeviceProfile::jetson_agx_orin(),
        DeviceProfile::jetson_agx_orin_30w(),
    ] {
        for policy in [Policy::Default, Policy::less_is_more(3)] {
            let pipeline = Pipeline::new(&workload, &levels, &model, Quant::Q4KM)
                .with_device(device.clone())
                .with_seed(HARNESS_SEED);
            let m = evaluate(&pipeline, policy);
            if device.name().ends_with("30w") && policy != Policy::Default {
                lim_capped_time = m.avg_seconds;
            }
            if device.name().ends_with("64gb") && policy == Policy::Default {
                default_maxn_time = m.avg_seconds;
            }
            table.row(&[
                device.name().to_owned(),
                policy.label(),
                pct(m.success_rate),
                secs(m.avg_seconds),
                watts(m.avg_power_w),
                format!("{:.0} J", m.avg_seconds * m.avg_power_w),
            ]);
        }
    }
    table.print();
    println!(
        "headline: Less-is-More under the 30 W cap runs {:.1}x {} than the default\n\
         policy at MAXN — tool reduction buys back the clock cut.",
        (default_maxn_time / lim_capped_time).max(lim_capped_time / default_maxn_time),
        if lim_capped_time < default_maxn_time {
            "faster"
        } else {
            "slower"
        },
    );
}
