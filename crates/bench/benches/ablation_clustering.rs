//! **Ablation A6** — why Level 2 clusters *augmented queries* instead of
//! tool descriptions (§III-A: "a clustering algorithm based on tool (text)
//! descriptions would produce groups that poorly capture tool-usage
//! patterns").
//!
//! Measures, for both benchmarks, the fraction of gold chains fully
//! contained in a single cluster under each construction.
//!
//! ```sh
//! cargo bench -p lim-bench --bench ablation_clustering
//! ```

use lim_bench::report::{pct, Table};
use lim_bench::{query_budget, HARNESS_SEED};
use lim_core::{chain_coverage, SearchLevels};

fn main() {
    let n = query_budget();
    let mut table = Table::new(
        "A6 — gold-chain coverage: co-usage clustering vs lexical clustering",
        &[
            "benchmark",
            "clusters",
            "co-usage coverage",
            "lexical coverage",
        ],
    );
    for (name, workload) in [
        ("BFCL", lim_workloads::bfcl(HARNESS_SEED, n)),
        ("GeoEngine", lim_workloads::geoengine(HARNESS_SEED, n)),
    ] {
        let levels = SearchLevels::build(&workload);
        let lexical = SearchLevels::lexical_clusters(&workload, levels.clusters().len());
        table.row(&[
            name.to_owned(),
            levels.clusters().len().to_string(),
            pct(chain_coverage(&workload, levels.clusters())),
            pct(chain_coverage(&workload, &lexical)),
        ]);
    }
    table.print();
    println!(
        "a chain is covered when one cluster contains every tool of the gold\n\
         workflow — the property that lets a single Level-2 selection carry a\n\
         sequential query. Lexical clusters split workflows across categories."
    );
}
