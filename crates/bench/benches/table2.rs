//! **Table II** — execution of a GeoEngine-style function-calling query
//! with Llama3.1-8b-q4_K_M under three configurations: (16k context, 46
//! tools), (16k, 19 tools), (8k, 19 tools).
//!
//! Paper rows: ✗ 30 s / 27 W, ✓ 20 s / 26 W, ✓ 17 s / 22 W — max drops
//! −43% time, −19% power.
//!
//! ```sh
//! cargo bench -p lim-bench --bench table2
//! ```

use lim_bench::report::{pct, secs, watts, Table};
use lim_bench::{query_budget, HARNESS_SEED};
use lim_core::{ControllerConfig, Pipeline, SearchLevels, ToolController};
use lim_llm::{ModelProfile, Quant};
use lim_vecstore::VectorIndex;

fn main() {
    let n = query_budget();
    let geo = lim_workloads::geoengine(HARNESS_SEED, n);
    let levels = SearchLevels::build(&geo);
    let model = ModelProfile::by_name("llama3.1-8b").expect("model exists");
    let pipeline = Pipeline::new(&geo, &levels, &model, Quant::Q4KM).with_seed(HARNESS_SEED);

    // The paper's protocol passes a manually reduced tool set. Derive the
    // "19 tools" analogue the way an operator would: the Level-2 clusters
    // covering the queries' gold chains (here, via the controller's
    // cluster search seeded with each query's gold tool descriptions).
    let controller = ToolController::new(&levels, ControllerConfig::with_k(5));
    let full: Vec<usize> = (0..geo.registry.len()).collect();

    /// Accumulator per configuration row: label, seconds, watts, successes.
    type Row = (String, Vec<f64>, Vec<f64>, Vec<bool>);

    let mut sum_tools = 0usize;
    let mut rows: Vec<Row> = vec![
        ("16K / 46 tools".into(), vec![], vec![], vec![]),
        ("16K / reduced".into(), vec![], vec![], vec![]),
        ("8K / reduced".into(), vec![], vec![], vec![]),
    ];

    for query in &geo.queries {
        let gold_descs: Vec<String> = query
            .steps
            .iter()
            .filter_map(|s| geo.registry.get_by_name(&s.tool))
            .map(|t| format!("{} {}", t.name().replace('_', " "), t.description()))
            .collect();
        let selection = controller.select(&query.text, &gold_descs);
        let reduced = if selection.tool_indices.len() < geo.registry.len() {
            selection.tool_indices.clone()
        } else {
            // Confidence fallback on a degenerate query: keep gold + a few.
            query
                .steps
                .iter()
                .filter_map(|s| geo.registry.index_of(&s.tool))
                .collect()
        };
        sum_tools += reduced.len();

        for (row, offered, ctx) in [
            (0usize, &full, 16_384u32),
            (1, &reduced, 16_384),
            (2, &reduced, 8_192),
        ] {
            let r = pipeline.run_query_offered(query, offered, ctx);
            rows[row].1.push(r.cost.seconds);
            rows[row].2.push(r.cost.avg_watts());
            rows[row].3.push(r.success);
        }
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let rate = |v: &[bool]| v.iter().filter(|b| **b).count() as f64 / v.len().max(1) as f64;

    let mut table = Table::new(
        &format!(
            "Table II — llama3.1-8b-q4_K_M on GeoEngine-style queries ({n} queries, \
             mean reduced set = {:.1} tools)",
            sum_tools as f64 / n as f64
        ),
        &["context / tools", "success", "exec time", "power", "paper"],
    );
    let paper = ["✗, 30 s, 27 W", "✓, 20 s, 26 W", "✓, 17 s, 22 W"];
    for (i, (label, times, powers, successes)) in rows.iter().enumerate() {
        table.row(&[
            label.clone(),
            pct(rate(successes)),
            secs(avg(times)),
            watts(avg(powers)),
            paper[i].to_owned(),
        ]);
    }
    table.print();

    let t = [avg(&rows[0].1), avg(&rows[1].1), avg(&rows[2].1)];
    let p = [avg(&rows[0].2), avg(&rows[1].2), avg(&rows[2].2)];
    println!(
        "max drop: time {:.0}% (paper 43%), power {:.0}% (paper 19%)",
        100.0 * (1.0 - t[2] / t[0]),
        100.0 * (1.0 - p[2] / p[0]),
    );
    // Keep the unused-import lint honest: the controller needs the trait.
    let _ = levels.tool_index().len();
}
