//! **Ablation A3** — which Search Level the controller picks per
//! benchmark (§III-C / §IV: BFCL favours Level 1, GeoEngine Level 2) and
//! how the confidence-fallback threshold shapes behaviour.
//!
//! ```sh
//! cargo bench -p lim-bench --bench ablation_levels
//! ```

use lim_bench::report::{pct, Table};
use lim_bench::{query_budget, HARNESS_SEED};
use lim_core::{evaluate, ControllerConfig, Pipeline, Policy, SearchLevels};
use lim_llm::{ModelProfile, Quant};

fn main() {
    let n = query_budget();
    let bfcl = lim_workloads::bfcl(HARNESS_SEED, n);
    let geo = lim_workloads::geoengine(HARNESS_SEED, n);
    let bfcl_levels = SearchLevels::build(&bfcl);
    let geo_levels = SearchLevels::build(&geo);
    let model = ModelProfile::by_name("hermes2-pro-8b").expect("model exists");

    // ---- Level preference per benchmark.
    let mut table = Table::new(
        &format!("A3 — level selection shares, LiM k=3, hermes2-pro q4_K_M ({n} queries)"),
        &[
            "benchmark",
            "level-1",
            "level-2",
            "level-3",
            "error fallback",
            "paper",
        ],
    );
    for (name, workload, levels, note) in [
        ("BFCL", &bfcl, &bfcl_levels, "Level 1 favoured"),
        ("GeoEngine", &geo, &geo_levels, "Level 2 favoured"),
    ] {
        let pipeline = Pipeline::new(workload, levels, &model, Quant::Q4KM).with_seed(HARNESS_SEED);
        let m = evaluate(&pipeline, Policy::less_is_more(3));
        table.row(&[
            name.to_owned(),
            pct(m.level1_share),
            pct(m.level2_share),
            pct(m.level3_share),
            pct(m.fallback_rate),
            note.to_owned(),
        ]);
    }
    table.print();

    // ---- Threshold sweep: too high → everything falls back to Level 3
    // (and the method degenerates to the default); too low → low-quality
    // retrievals are never rescued.
    let mut sweep = Table::new(
        "A3 — confidence threshold sweep, GeoEngine, LiM k=3",
        &[
            "threshold",
            "level-3 share",
            "success",
            "tool acc",
            "avg tools",
        ],
    );
    for threshold in [0.10f32, 0.20, 0.30, 0.40, 0.50, 0.60] {
        let policy = Policy::LessIsMore {
            config: ControllerConfig {
                k: 3,
                fallback_threshold: threshold,
            },
        };
        let pipeline =
            Pipeline::new(&geo, &geo_levels, &model, Quant::Q4KM).with_seed(HARNESS_SEED);
        let m = evaluate(&pipeline, policy);
        sweep.row(&[
            format!("{threshold:.2}"),
            pct(m.level3_share),
            pct(m.success_rate),
            pct(m.tool_accuracy),
            format!("{:.1}", m.avg_offered_tools),
        ]);
    }
    sweep.print();
    println!(
        "the paper's threshold (0.5 on MPNet cosine) corresponds to ~0.30 on this\n\
         workspace's hashed encoder, whose cosine scale is lower; see DESIGN.md."
    );
}
