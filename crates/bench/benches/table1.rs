//! **Table I** — Success rate of Llama3.1-8b variants on BFCL and
//! GeoEngine under the default (all tools) policy.
//!
//! Paper row: BFCL 63.04 / 20.43 / 34.35 / 39.57 / 44.35 %, GeoEngine
//! 63.91 / 43.04 / 59.57 / 56.96 / 53.04 % for full precision, q4_0,
//! q4_1, q4_K_M, q8_0.
//!
//! ```sh
//! cargo bench -p lim-bench --bench table1
//! ```

use lim_bench::report::{pct, Table};
use lim_bench::{query_budget, HARNESS_SEED};
use lim_core::{evaluate, Pipeline, Policy, SearchLevels};
use lim_llm::{ModelProfile, Quant};

fn main() {
    let n = query_budget();
    let bfcl = lim_workloads::bfcl(HARNESS_SEED, n);
    let geo = lim_workloads::geoengine(HARNESS_SEED, n);
    let bfcl_levels = SearchLevels::build(&bfcl);
    let geo_levels = SearchLevels::build(&geo);
    let model = ModelProfile::by_name("llama3.1-8b").expect("model exists");

    let paper_bfcl = [0.6304, 0.2043, 0.3435, 0.3957, 0.4435];
    let paper_geo = [0.6391, 0.4304, 0.5957, 0.5696, 0.5304];

    let mut table = Table::new(
        &format!("Table I — success rate of llama3.1-8b variants, default policy ({n} queries)"),
        &[
            "benchmark",
            "metric",
            "full precision",
            "q4_0",
            "q4_1",
            "q4_K_M",
            "q8_0",
        ],
    );

    for (name, workload, levels, paper) in [
        ("BFCL", &bfcl, &bfcl_levels, paper_bfcl),
        ("GeoEngine", &geo, &geo_levels, paper_geo),
    ] {
        let mut measured = vec![name.to_owned(), "measured".to_owned()];
        for quant in Quant::ALL {
            let pipeline = Pipeline::new(workload, levels, &model, quant).with_seed(HARNESS_SEED);
            let metrics = evaluate(&pipeline, Policy::Default);
            measured.push(pct(metrics.success_rate));
        }
        table.row(&measured);
        let mut reference = vec![name.to_owned(), "paper".to_owned()];
        reference.extend(paper.iter().map(|p| pct(*p)));
        table.row(&reference);
    }
    table.print();
    println!(
        "note: quant order in Quant::ALL is f16, q4_0, q4_1, q4_K_M, q8_0; \
         measured values are seeded draws over {n} queries."
    );
}
