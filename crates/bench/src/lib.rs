//! Shared infrastructure for the benchmark harnesses.
//!
//! Every table and figure of the paper has a `[[bench]]` target (with
//! `harness = false`) that prints the regenerated rows next to the paper's
//! reported values. This crate holds the pieces those targets share: an
//! ASCII table renderer ([`report`]), the grid runner that sweeps
//! (model × quant × policy) cells ([`experiments`]), and the baseline
//! comparison behind CI's bench-regression gate ([`compare`]).

pub mod ann;
pub mod compare;
pub mod experiments;
pub mod report;

/// Returns the evaluation batch size: the paper's 230, unless the
/// `LIM_QUERIES` environment variable overrides it (used by smoke tests
/// and CI to keep harness runtimes short).
pub fn query_budget() -> usize {
    std::env::var("LIM_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(230)
}

/// Master seed for all harnesses; change to re-draw every stochastic
/// outcome in the reproduction.
pub const HARNESS_SEED: u64 = 20_250_331;

/// Worker-thread count for harness sweeps: the `LIM_THREADS` environment
/// variable, or every available core. Sharded evaluation is bit-identical
/// to sequential evaluation, so this only changes wall-clock time.
pub fn harness_threads() -> usize {
    std::env::var("LIM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_budget_matches_paper() {
        if std::env::var("LIM_QUERIES").is_err() {
            assert_eq!(super::query_budget(), 230);
        }
    }
}
