//! Grid runner shared by the figure harnesses.

use lim_core::{
    evaluate_parallel, normalize_against, BatchMetrics, Pipeline, Policy, SearchLevels,
};
use lim_device::{DeviceKind, DeviceProfile};
use lim_llm::{ModelProfile, Quant};
use lim_workloads::Workload;

/// One (model, quant, policy) cell of a figure grid.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Model name.
    pub model: String,
    /// Quantization variant.
    pub quant: Quant,
    /// Policy label (see [`Policy::label`]).
    pub policy: String,
    /// The four paper metrics plus diagnostics.
    pub metrics: BatchMetrics,
    /// Execution time normalized to the default policy of the same
    /// (model, quant).
    pub norm_time: f64,
    /// Power normalized likewise.
    pub norm_power: f64,
}

/// Sweeps `models × quants × policies` over a workload, sequentially.
///
/// The `Policy::Default` cell of each (model, quant) is always computed
/// (it is the normalization baseline) and included in the output whether
/// or not it appears in `policies`.
pub fn run_grid(
    workload: &Workload,
    levels: &SearchLevels,
    models: &[ModelProfile],
    quants: &[Quant],
    policies: &[Policy],
    seed: u64,
) -> Vec<GridCell> {
    run_grid_threads(workload, levels, models, quants, policies, seed, 1)
}

/// [`run_grid`] with each cell's query batch sharded across `threads`
/// worker threads (0 = available parallelism).
///
/// Because [`evaluate_parallel`] is bit-identical to [`lim_core::evaluate`], the
/// returned cells match the sequential sweep exactly — harnesses can use
/// all cores without perturbing a single table or figure number.
pub fn run_grid_threads(
    workload: &Workload,
    levels: &SearchLevels,
    models: &[ModelProfile],
    quants: &[Quant],
    policies: &[Policy],
    seed: u64,
    threads: usize,
) -> Vec<GridCell> {
    run_grid_device(
        workload,
        levels,
        models,
        quants,
        policies,
        seed,
        threads,
        DeviceKind::default().profile(),
    )
}

/// [`run_grid_threads`] with every cell's energy model billed on an
/// explicit device profile (the `lim bench --device` path). The paper
/// grids default to the Jetson AGX Orin, so [`run_grid_threads`] stays
/// byte-stable; passing a different profile scales the power and joules
/// columns without perturbing accuracy.
#[allow(clippy::too_many_arguments)]
pub fn run_grid_device(
    workload: &Workload,
    levels: &SearchLevels,
    models: &[ModelProfile],
    quants: &[Quant],
    policies: &[Policy],
    seed: u64,
    threads: usize,
    device: DeviceProfile,
) -> Vec<GridCell> {
    let mut out = Vec::new();
    for model in models {
        for &quant in quants {
            let pipeline = Pipeline::new(workload, levels, model, quant)
                .with_seed(seed)
                .with_device(device.clone());
            let baseline = evaluate_parallel(&pipeline, Policy::Default, threads);
            out.push(GridCell {
                model: model.name.to_owned(),
                quant,
                policy: Policy::Default.label(),
                metrics: baseline,
                norm_time: 1.0,
                norm_power: 1.0,
            });
            for &policy in policies {
                if policy == Policy::Default {
                    continue;
                }
                let metrics = evaluate_parallel(&pipeline, policy, threads);
                let (norm_time, norm_power) = normalize_against(&baseline, &metrics);
                out.push(GridCell {
                    model: model.name.to_owned(),
                    quant,
                    policy: policy.label(),
                    metrics,
                    norm_time,
                    norm_power,
                });
            }
        }
    }
    out
}

/// Mean of a metric over the quant variants of one (model, policy) pair —
/// the level at which §IV quotes its per-model numbers.
pub fn quant_mean<F: Fn(&GridCell) -> f64>(
    cells: &[GridCell],
    model: &str,
    policy: &str,
    metric: F,
) -> f64 {
    let selected: Vec<f64> = cells
        .iter()
        .filter(|c| c.model == model && c.policy == policy)
        .map(metric)
        .collect();
    if selected.is_empty() {
        0.0
    } else {
        selected.iter().sum::<f64>() / selected.len() as f64
    }
}

/// Resolves model profiles by name.
///
/// # Panics
///
/// Panics if a name is unknown — harness configuration bug.
pub fn model_set(names: &[&str]) -> Vec<ModelProfile> {
    names
        .iter()
        .map(|n| ModelProfile::by_name(n).unwrap_or_else(|| panic!("unknown model {n}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lim_workloads::bfcl;

    #[test]
    fn grid_includes_baseline_and_normalizes_it_to_one() {
        let w = bfcl(5, 12);
        let levels = SearchLevels::build(&w);
        let models = model_set(&["llama3.1-8b"]);
        let cells = run_grid(
            &w,
            &levels,
            &models,
            &[Quant::Q4KM],
            &[Policy::less_is_more(3)],
            1,
        );
        assert_eq!(cells.len(), 2);
        let default = cells.iter().find(|c| c.policy == "default").unwrap();
        assert_eq!(default.norm_time, 1.0);
        let lim = cells.iter().find(|c| c.policy == "lim-k3").unwrap();
        assert!(lim.norm_time > 0.0 && lim.norm_time < 1.0);
    }

    #[test]
    fn quant_mean_averages_over_variants() {
        let w = bfcl(6, 8);
        let levels = SearchLevels::build(&w);
        let models = model_set(&["qwen2-1.5b"]);
        let cells = run_grid(&w, &levels, &models, &[Quant::Q4_0, Quant::Q8_0], &[], 1);
        let mean = quant_mean(&cells, "qwen2-1.5b", "default", |c| c.metrics.success_rate);
        let manual: f64 = cells.iter().map(|c| c.metrics.success_rate).sum::<f64>() / 2.0;
        assert!((mean - manual).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn model_set_rejects_unknown_names() {
        let _ = model_set(&["gpt-5"]);
    }

    #[test]
    fn threaded_grid_matches_sequential_grid() {
        let w = bfcl(7, 10);
        let levels = SearchLevels::build(&w);
        let models = model_set(&["llama3.1-8b"]);
        let policies = [Policy::Gorilla { k: 3 }, Policy::less_is_more(3)];
        let sequential = run_grid(&w, &levels, &models, &[Quant::Q4KM], &policies, 2);
        let threaded = run_grid_threads(&w, &levels, &models, &[Quant::Q4KM], &policies, 2, 4);
        assert_eq!(sequential.len(), threaded.len());
        for (s, t) in sequential.iter().zip(&threaded) {
            assert_eq!(s.policy, t.policy);
            assert_eq!(s.metrics, t.metrics, "cell {}", s.policy);
            assert_eq!(s.norm_time.to_bits(), t.norm_time.to_bits());
            assert_eq!(s.norm_power.to_bits(), t.norm_power.to_bits());
        }
    }
}
