//! Plain-text table rendering for harness output.

/// A fixed-width ASCII table with a title and header row.
///
/// # Examples
///
/// ```
/// use lim_bench::report::Table;
/// let mut t = Table::new("Demo", &["model", "success"]);
/// t.row(&["llama3.1-8b", "0.44"]);
/// let text = t.render();
/// assert!(text.contains("llama3.1-8b"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are right-padded with empty cells.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        let mut row: Vec<String> = cells.iter().map(|c| c.as_ref().to_owned()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |sep: char| -> String {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&sep.to_string().repeat(w + 2));
                s.push('+');
            }
            s
        };
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                s.push_str(&format!(" {cell:<w$} |", w = w));
            }
            s
        };
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        out.push_str(&line('-'));
        out.push('\n');
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&line('='));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push_str(&line('-'));
        out.push('\n');
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a probability as a percentage with two decimals (`"63.04%"`).
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Formats a normalized ratio (`"0.28×"`).
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats seconds (`"17.3 s"`).
pub fn secs(x: f64) -> String {
    format!("{x:.1} s")
}

/// Formats watts (`"22.4 W"`).
pub fn watts(x: f64) -> String {
    format!("{x:.1} W")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_cells_and_alignment() {
        let mut t = Table::new("T", &["a", "longheader"]);
        t.row(&["x", "1"]);
        t.row(&["longercell"]);
        let s = t.render();
        assert!(s.contains("== T =="));
        assert!(s.contains("longheader"));
        assert!(s.contains("longercell"));
        // Missing cells padded.
        assert_eq!(s.matches('|').count() % 3, 0);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.6304), "63.04%");
        assert_eq!(ratio(0.28), "0.28x");
        assert_eq!(secs(17.25), "17.2 s");
        assert_eq!(watts(22.0), "22.0 W");
    }
}
