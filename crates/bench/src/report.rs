//! Plain-text table rendering and `BENCH_*.json` serialization for
//! harness output.
//!
//! # The `BENCH_*.json` format
//!
//! `lim bench --out BENCH_2.json` (and [`grid_to_json`] generally) writes
//! one JSON object per sweep:
//!
//! ```json
//! {
//!   "schema": "lim-bench/grid-v1",
//!   "benchmark": "bfcl",
//!   "queries": 230,
//!   "seed": 20250331,
//!   "threads": 8,
//!   "cells": [
//!     {
//!       "model": "llama3.1-8b",
//!       "quant": "q4_K_M",
//!       "policy": "lim-k3",
//!       "queries": 230,
//!       "success_rate": 0.47,
//!       "tool_accuracy": 0.60,
//!       "avg_seconds": 11.2,
//!       "avg_power_w": 21.4,
//!       "norm_time": 0.31,
//!       "norm_power": 0.93,
//!       "avg_offered_tools": 5.1,
//!       "fallback_rate": 0.03,
//!       "level1_share": 0.74,
//!       "level2_share": 0.17,
//!       "level3_share": 0.09,
//!       "avg_recommender_seconds": 0.8
//!     }
//!   ]
//! }
//! ```
//!
//! Cells appear in sweep order (model-major, then quant, then policy,
//! with the `default` baseline first in each model × quant block), and
//! the whole document is deterministic for a given `(benchmark, queries,
//! seed)` triple — `threads` never changes a number, only wall-clock
//! time. `schema` is bumped if a field is ever renamed or removed;
//! additions are backward-compatible.

/// A fixed-width ASCII table with a title and header row.
///
/// # Examples
///
/// ```
/// use lim_bench::report::Table;
/// let mut t = Table::new("Demo", &["model", "success"]);
/// t.row(&["llama3.1-8b", "0.44"]);
/// let text = t.render();
/// assert!(text.contains("llama3.1-8b"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are right-padded with empty cells.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        let mut row: Vec<String> = cells.iter().map(|c| c.as_ref().to_owned()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |sep: char| -> String {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&sep.to_string().repeat(w + 2));
                s.push('+');
            }
            s
        };
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                s.push_str(&format!(" {cell:<w$} |", w = w));
            }
            s
        };
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        out.push_str(&line('-'));
        out.push('\n');
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&line('='));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push_str(&line('-'));
        out.push('\n');
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Serializes one grid cell to the `BENCH_*.json` cell object (see the
/// module docs for the schema).
pub fn cell_to_json(cell: &crate::experiments::GridCell) -> lim_json::Value {
    use lim_json::Value;
    let m = &cell.metrics;
    Value::object([
        ("model", Value::from(cell.model.as_str())),
        ("quant", Value::from(cell.quant.label())),
        ("policy", Value::from(cell.policy.as_str())),
        ("queries", Value::from(m.queries)),
        ("success_rate", Value::from(m.success_rate)),
        ("tool_accuracy", Value::from(m.tool_accuracy)),
        ("avg_seconds", Value::from(m.avg_seconds)),
        ("avg_power_w", Value::from(m.avg_power_w)),
        ("norm_time", Value::from(cell.norm_time)),
        ("norm_power", Value::from(cell.norm_power)),
        ("avg_offered_tools", Value::from(m.avg_offered_tools)),
        ("fallback_rate", Value::from(m.fallback_rate)),
        ("level1_share", Value::from(m.level1_share)),
        ("level2_share", Value::from(m.level2_share)),
        ("level3_share", Value::from(m.level3_share)),
        (
            "avg_recommender_seconds",
            Value::from(m.avg_recommender_seconds),
        ),
    ])
}

/// Serializes a whole sweep to the `BENCH_*.json` document (see the
/// module docs for the schema).
pub fn grid_to_json(
    cells: &[crate::experiments::GridCell],
    benchmark: &str,
    queries: usize,
    seed: u64,
    threads: usize,
) -> lim_json::Value {
    use lim_json::Value;
    Value::object([
        ("schema", Value::from("lim-bench/grid-v1")),
        ("benchmark", Value::from(benchmark)),
        ("queries", Value::from(queries)),
        ("seed", Value::from(seed as i64)),
        ("threads", Value::from(threads)),
        ("cells", cells.iter().map(cell_to_json).collect()),
    ])
}

/// Formats a probability as a percentage with two decimals (`"63.04%"`).
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Formats a normalized ratio (`"0.28×"`).
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats seconds (`"17.3 s"`).
pub fn secs(x: f64) -> String {
    format!("{x:.1} s")
}

/// Formats watts (`"22.4 W"`).
pub fn watts(x: f64) -> String {
    format!("{x:.1} W")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_cells_and_alignment() {
        let mut t = Table::new("T", &["a", "longheader"]);
        t.row(&["x", "1"]);
        t.row(&["longercell"]);
        let s = t.render();
        assert!(s.contains("== T =="));
        assert!(s.contains("longheader"));
        assert!(s.contains("longercell"));
        // Missing cells padded.
        assert_eq!(s.matches('|').count() % 3, 0);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.6304), "63.04%");
        assert_eq!(ratio(0.28), "0.28x");
        assert_eq!(secs(17.25), "17.2 s");
        assert_eq!(watts(22.0), "22.0 W");
    }

    #[test]
    fn grid_json_document_round_trips() {
        use crate::experiments::{model_set, run_grid_threads};
        use lim_core::{Policy, SearchLevels};
        use lim_llm::Quant;

        let w = lim_workloads::bfcl(3, 6);
        let levels = SearchLevels::build(&w);
        let models = model_set(&["qwen2-1.5b"]);
        let cells = run_grid_threads(
            &w,
            &levels,
            &models,
            &[Quant::Q4KM],
            &[Policy::less_is_more(3)],
            1,
            2,
        );
        let doc = grid_to_json(&cells, "bfcl", 6, 1, 2);
        let parsed = lim_json::parse(&doc.to_string()).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(lim_json::Value::as_str),
            Some("lim-bench/grid-v1")
        );
        let rows = parsed
            .get("cells")
            .and_then(lim_json::Value::as_array)
            .expect("cells");
        assert_eq!(rows.len(), cells.len());
        assert_eq!(
            rows[0].get("policy").and_then(lim_json::Value::as_str),
            Some("default")
        );
        assert_eq!(
            rows[0].get("queries").and_then(lim_json::Value::as_i64),
            Some(6)
        );
    }
}
