//! Baseline comparison for CI bench-regression gating.
//!
//! `lim compare --baseline BENCH_baseline.json --current BENCH_pr.json`
//! fails a PR when any *tracked* metric regresses by more than the
//! tolerance (default 10%) against the committed baseline. Two schemas
//! are understood:
//!
//! * `lim-bench/grid-v1` — cells matched by `(model, quant, policy)`;
//!   tracked: `success_rate`↑, `tool_accuracy`↑, `avg_seconds`↓,
//!   `avg_power_w`↓.
//! * `lim-bench/ann-v1` — index-scaling cells matched by
//!   `(backend, catalog)`; tracked: `recall_at_10`↑, `avg_dist_evals`↓
//!   (distance evaluations are the deterministic latency proxy — the
//!   wall-clock fields in the same cells are never tracked).
//! * `lim-serve/report-v1` — one document; tracked: `success_rate`↑,
//!   `tool_accuracy`↑, the two cache `hit_rate`s↑ and the
//!   `latency.p50_s`/`p95_s`/`p99_s` simulated percentiles↓.
//! * `lim-serve/report-v2` — everything v1 tracks plus the admission
//!   metrics: `admission.shed`↓, `admission.degraded`↓,
//!   `admission.max_queue_depth`↓ and the
//!   `admission.queue_wait.p95_s`/`p99_s` percentiles↓. When the
//!   baseline carries the additive `boot` section, `boot.build_skipped`↑
//!   (a boolean gated as 0/1 — a snapshot-boot baseline means "must keep
//!   skipping the level build") and `boot.sim_boot_seconds`↓ join the
//!   set.
//! * `lim-serve/report-v3` — everything v2 tracks plus the live-catalog
//!   counters: `catalog.epoch`↑, `catalog.registered`↑ and
//!   `catalog.retired`↑. On a churned CI trace these are exact seeded
//!   counts, so the gate means "every scheduled mutation was applied" —
//!   a PR that silently drops register/retire events fails; on a static
//!   trace the zero baselines pass trivially.
//! * `lim-serve/report-v4` — the fleet document: everything v3 tracks on
//!   the fleet-wide aggregate, plus per-tenant cells from the `tenants`
//!   array matched by tenant id — tracked per tenant: `success_rate`↑,
//!   `tool_accuracy`↑, the embedding `hit_rate`↑, the latency
//!   percentiles↓ and `admission.shed`/`degraded`↓. A baseline tenant
//!   missing from the current document is a regression (a silently
//!   dropped tenant must not pass CI), and with a calm per-tenant
//!   baseline the shed gate doubles as the isolation gate: a PR that
//!   makes a hot neighbor push a cold tenant into shedding fails.
//! * `lim-serve/report-v5` — everything v3 tracks plus the energy
//!   section: `energy.joules_per_request.p50`/`p95`↓,
//!   `energy.sustained_watts_max`↓ and `energy.gco2_per_1k_requests`↓.
//!   Deterministic for a fixed trace + device profile, so the gate means
//!   "serving never gets more expensive in energy" — and on a capped
//!   baseline the sustained-watts gate pins the governor's ceiling.
//! * `lim-serve/report-v6` — the fleet document over v5: everything v5
//!   tracks on the fleet-wide aggregate plus the v4 per-tenant cells.
//!
//! Version-bump rule: a schema id changes only when a field is renamed,
//! removed or changes meaning (additions keep the id). The two documents
//! must carry the *same* id — `lim compare` never gates across versions,
//! because a tracked metric's denominator may have changed meaning; a
//! bump therefore forces the committed baseline to be regenerated
//! deliberately. The tracked-metric set is selected by the shared id.
//!
//! Wall-clock fields (`wall_seconds`, `requests_per_second`, elapsed
//! sweep time) are never tracked: they vary per runner. Everything
//! tracked is deterministic for a fixed seed, so on an unchanged tree
//! the comparison is exact and the tolerance only absorbs *intentional*
//! model changes.

use lim_json::Value;

/// Whether a metric improves upward or downward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (rates, accuracies).
    HigherIsBetter,
    /// Smaller is better (latency, power).
    LowerIsBetter,
}

/// One tracked metric that moved past the tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Which cell / report the metric belongs to.
    pub context: String,
    /// Dotted metric path (`"latency.p95_s"`).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} regressed {:.4} -> {:.4}",
            self.context, self.metric, self.baseline, self.current
        )
    }
}

/// Tracked metrics for the grid schema.
const GRID_METRICS: &[(&str, Direction)] = &[
    ("success_rate", Direction::HigherIsBetter),
    ("tool_accuracy", Direction::HigherIsBetter),
    ("avg_seconds", Direction::LowerIsBetter),
    ("avg_power_w", Direction::LowerIsBetter),
];

/// Tracked metrics for the ann index-scaling schema.
const ANN_METRICS: &[(&str, Direction)] = &[
    ("recall_at_10", Direction::HigherIsBetter),
    ("avg_dist_evals", Direction::LowerIsBetter),
];

/// Tracked metrics for the serve schema (v1; v2 extends this set).
const SERVE_METRICS: &[(&str, Direction)] = &[
    ("success_rate", Direction::HigherIsBetter),
    ("tool_accuracy", Direction::HigherIsBetter),
    ("caches.embedding.hit_rate", Direction::HigherIsBetter),
    ("caches.selection.hit_rate", Direction::HigherIsBetter),
    ("latency.p50_s", Direction::LowerIsBetter),
    ("latency.p95_s", Direction::LowerIsBetter),
    ("latency.p99_s", Direction::LowerIsBetter),
];

/// Additional tracked metrics for `lim-serve/report-v2`: the admission
/// layer's deterministic counters. With a zero baseline (a calm trace)
/// the relative gate means "must stay zero" — a PR that starts shedding
/// the CI trace fails.
const SERVE_V2_METRICS: &[(&str, Direction)] = &[
    ("admission.shed", Direction::LowerIsBetter),
    ("admission.degraded", Direction::LowerIsBetter),
    ("admission.max_queue_depth", Direction::LowerIsBetter),
    ("admission.queue_wait.p95_s", Direction::LowerIsBetter),
    ("admission.queue_wait.p99_s", Direction::LowerIsBetter),
];

/// Boot metrics, tracked **only when the baseline carries them** (the
/// `boot` section joined `lim-serve/report-v2` additively, so older
/// baselines lack it). Booleans gate as 0/1: a baseline generated from a
/// snapshot boot has `build_skipped = 1`, and a PR that silently falls
/// back to a cold in-process level build regresses it to 0 and fails —
/// the cold/warm-start CI gate. A current document missing a metric the
/// baseline tracks is still an error.
const SERVE_BOOT_METRICS: &[(&str, Direction)] = &[
    ("boot.build_skipped", Direction::HigherIsBetter),
    ("boot.sim_boot_seconds", Direction::LowerIsBetter),
];

/// Additional tracked metrics for `lim-serve/report-v3`: the live-catalog
/// counters. Deterministic for a fixed trace + churn seed, so on a
/// churned CI trace the relative gate means "the same mutations were
/// applied" — an engine that silently drops register/retire events
/// regresses the counts to 0 and fails. Static traces have all-zero
/// baselines, which pass trivially in the upward direction.
const SERVE_V3_METRICS: &[(&str, Direction)] = &[
    ("catalog.epoch", Direction::HigherIsBetter),
    ("catalog.registered", Direction::HigherIsBetter),
    ("catalog.retired", Direction::HigherIsBetter),
];

/// Additional tracked metrics for `lim-serve/report-v5`: the energy
/// section. All deterministic for a fixed trace + device profile.
/// Joules per request and grams of CO₂ gate downward — a PR that makes
/// serving more expensive in energy fails even when latency holds — and
/// sustained watts gates the governor's whole point: the capped CI
/// baseline's peak must never creep back up.
const SERVE_V5_METRICS: &[(&str, Direction)] = &[
    ("energy.joules_per_request.p50", Direction::LowerIsBetter),
    ("energy.joules_per_request.p95", Direction::LowerIsBetter),
    ("energy.sustained_watts_max", Direction::LowerIsBetter),
    ("energy.gco2_per_1k_requests", Direction::LowerIsBetter),
];

/// Per-tenant tracked metrics for the `lim-serve/report-v4` `tenants`
/// cells. All deterministic for a fixed trace; the shed/degraded gates
/// on a calm baseline mean "this tenant must stay unaffected by its
/// neighbors' load" — the comparable half of the QoS isolation
/// guarantee (the structural half, capacity ≥ floor, is asserted by the
/// engine's own tests).
const SERVE_TENANT_METRICS: &[(&str, Direction)] = &[
    ("success_rate", Direction::HigherIsBetter),
    ("tool_accuracy", Direction::HigherIsBetter),
    ("caches.embedding.hit_rate", Direction::HigherIsBetter),
    ("latency.p50_s", Direction::LowerIsBetter),
    ("latency.p95_s", Direction::LowerIsBetter),
    ("latency.p99_s", Direction::LowerIsBetter),
    ("admission.shed", Direction::LowerIsBetter),
    ("admission.degraded", Direction::LowerIsBetter),
];

/// Whether `current` is worse than `baseline` by more than `tolerance`
/// (a relative fraction, e.g. `0.10`).
fn regressed(direction: Direction, baseline: f64, current: f64, tolerance: f64) -> bool {
    match direction {
        Direction::HigherIsBetter => current < baseline * (1.0 - tolerance) - 1e-12,
        Direction::LowerIsBetter => current > baseline * (1.0 + tolerance) + 1e-12,
    }
}

/// Resolves a dotted path (`"latency.p95_s"`) inside a JSON object.
/// Booleans read as 0/1 so flags like `boot.build_skipped` can be gated
/// directionally like any other metric.
fn lookup(doc: &Value, path: &str) -> Option<f64> {
    let mut node = doc;
    for part in path.split('.') {
        node = node.get(part)?;
    }
    node.as_f64()
        .or_else(|| node.as_bool().map(|b| if b { 1.0 } else { 0.0 }))
}

/// Compares two `BENCH_*.json` documents of the same schema.
///
/// Returns the tracked metrics that regressed beyond `tolerance` (empty
/// = gate passes). Baseline cells missing from `current` are reported as
/// regressions — a silently dropped cell must not pass CI. Cells only in
/// `current` are ignored (adding coverage is always allowed).
///
/// # Errors
///
/// Returns a message when the schemas disagree, are unknown, or a
/// tracked metric is missing from a matched document.
pub fn compare_documents(
    baseline: &Value,
    current: &Value,
    tolerance: f64,
) -> Result<Vec<Regression>, String> {
    let schema = |doc: &Value, which: &str| {
        doc.get("schema")
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or(format!("{which} document has no schema field"))
    };
    let base_schema = schema(baseline, "baseline")?;
    let curr_schema = schema(current, "current")?;
    if base_schema != curr_schema {
        return Err(format!(
            "schema mismatch: baseline {base_schema:?} vs current {curr_schema:?}"
        ));
    }
    match base_schema.as_str() {
        "lim-bench/grid-v1" => compare_cells(
            baseline,
            current,
            "cells",
            grid_cell_key,
            GRID_METRICS,
            "model/quant/policy",
            tolerance,
        ),
        "lim-bench/ann-v1" => compare_cells(
            baseline,
            current,
            "cells",
            ann_cell_key,
            ANN_METRICS,
            "backend/catalog",
            tolerance,
        ),
        "lim-serve/report-v1" => {
            compare_tracked(baseline, current, SERVE_METRICS, "serve", tolerance)
        }
        "lim-serve/report-v2" | "lim-serve/report-v3" | "lim-serve/report-v5" => {
            let mut metrics = SERVE_METRICS.to_vec();
            metrics.extend_from_slice(SERVE_V2_METRICS);
            // Additive boot section: gate it only when the baseline has
            // it, so pre-snapshot v2 baselines keep comparing.
            metrics.extend(
                SERVE_BOOT_METRICS
                    .iter()
                    .filter(|(path, _)| lookup(baseline, path).is_some()),
            );
            if base_schema != "lim-serve/report-v2" {
                metrics.extend_from_slice(SERVE_V3_METRICS);
            }
            if base_schema == "lim-serve/report-v5" {
                metrics.extend_from_slice(SERVE_V5_METRICS);
            }
            compare_tracked(baseline, current, &metrics, "serve", tolerance)
        }
        "lim-serve/report-v4" | "lim-serve/report-v6" => {
            // The fleet-wide aggregate carries the full single-engine
            // field set of its generation (v4 over v3, v6 over v5).
            let mut metrics = SERVE_METRICS.to_vec();
            metrics.extend_from_slice(SERVE_V2_METRICS);
            metrics.extend(
                SERVE_BOOT_METRICS
                    .iter()
                    .filter(|(path, _)| lookup(baseline, path).is_some()),
            );
            metrics.extend_from_slice(SERVE_V3_METRICS);
            if base_schema == "lim-serve/report-v6" {
                metrics.extend_from_slice(SERVE_V5_METRICS);
            }
            let mut regressions = compare_tracked(baseline, current, &metrics, "serve", tolerance)?;
            regressions.extend(compare_cells(
                baseline,
                current,
                "tenants",
                tenant_cell_key,
                SERVE_TENANT_METRICS,
                "tenant id",
                tolerance,
            )?);
            Ok(regressions)
        }
        other => Err(format!("unknown schema {other:?}")),
    }
}

fn grid_cell_key(cell: &Value) -> Option<String> {
    Some(format!(
        "{}/{}/{}",
        cell.get("model").and_then(Value::as_str)?,
        cell.get("quant").and_then(Value::as_str)?,
        cell.get("policy").and_then(Value::as_str)?,
    ))
}

fn ann_cell_key(cell: &Value) -> Option<String> {
    Some(format!(
        "{}/{}",
        cell.get("backend").and_then(Value::as_str)?,
        cell.get("catalog").and_then(Value::as_i64)?,
    ))
}

fn tenant_cell_key(cell: &Value) -> Option<String> {
    Some(format!(
        "tenant {}",
        cell.get("tenant").and_then(Value::as_i64)?
    ))
}

fn compare_cells(
    baseline: &Value,
    current: &Value,
    array_field: &str,
    cell_key: fn(&Value) -> Option<String>,
    metrics: &[(&str, Direction)],
    key_desc: &str,
    tolerance: f64,
) -> Result<Vec<Regression>, String> {
    let cells = |doc: &Value, which: &str| {
        doc.get(array_field)
            .and_then(Value::as_array)
            .map(<[Value]>::to_vec)
            .ok_or(format!("{which} document has no {array_field}"))
    };
    let base_cells = cells(baseline, "baseline")?;
    let curr_cells = cells(current, "current")?;
    let mut regressions = Vec::new();
    for base_cell in &base_cells {
        let key = cell_key(base_cell).ok_or(format!("baseline cell missing {key_desc}"))?;
        let Some(curr_cell) = curr_cells
            .iter()
            .find(|c| cell_key(c).as_deref() == Some(key.as_str()))
        else {
            regressions.push(Regression {
                context: key,
                metric: "<cell>".into(),
                baseline: 1.0,
                current: 0.0,
            });
            continue;
        };
        regressions.extend(compare_tracked(
            base_cell, curr_cell, metrics, &key, tolerance,
        )?);
    }
    Ok(regressions)
}

fn compare_tracked(
    baseline: &Value,
    current: &Value,
    metrics: &[(&str, Direction)],
    context: &str,
    tolerance: f64,
) -> Result<Vec<Regression>, String> {
    let mut regressions = Vec::new();
    for (metric, direction) in metrics {
        let base = lookup(baseline, metric)
            .ok_or_else(|| format!("{context}: baseline missing {metric}"))?;
        let curr = lookup(current, metric)
            .ok_or_else(|| format!("{context}: current missing {metric}"))?;
        if regressed(*direction, base, curr, tolerance) {
            regressions.push(Regression {
                context: context.to_owned(),
                metric: (*metric).to_owned(),
                baseline: base,
                current: curr,
            });
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_doc(success: f64, seconds: f64) -> Value {
        lim_json::parse(&format!(
            r#"{{"schema":"lim-bench/grid-v1","cells":[
                {{"model":"m","quant":"q4_K_M","policy":"lim-k3",
                  "success_rate":{success},"tool_accuracy":0.6,
                  "avg_seconds":{seconds},"avg_power_w":21.0}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_grids_pass() {
        let doc = grid_doc(0.5, 10.0);
        assert!(compare_documents(&doc, &doc, 0.10).unwrap().is_empty());
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let base = grid_doc(0.50, 10.0);
        let curr = grid_doc(0.46, 10.8);
        assert!(compare_documents(&base, &curr, 0.10).unwrap().is_empty());
    }

    #[test]
    fn large_regressions_fail_in_both_directions() {
        let base = grid_doc(0.50, 10.0);
        let slower = grid_doc(0.50, 11.5);
        let worse = grid_doc(0.40, 10.0);
        let r = compare_documents(&base, &slower, 0.10).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].metric, "avg_seconds");
        let r = compare_documents(&base, &worse, 0.10).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].metric, "success_rate");
        assert!(r[0].to_string().contains("success_rate"));
    }

    #[test]
    fn improvements_never_fail() {
        let base = grid_doc(0.50, 10.0);
        let better = grid_doc(0.80, 3.0);
        assert!(compare_documents(&base, &better, 0.10).unwrap().is_empty());
    }

    #[test]
    fn dropped_cells_are_regressions() {
        let base = grid_doc(0.5, 10.0);
        let empty = lim_json::parse(r#"{"schema":"lim-bench/grid-v1","cells":[]}"#).unwrap();
        let r = compare_documents(&base, &empty, 0.10).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].metric, "<cell>");
    }

    fn ann_doc(recall: f64, evals: f64) -> Value {
        lim_json::parse(&format!(
            r#"{{"schema":"lim-bench/ann-v1","cells":[
                {{"backend":"hnsw","catalog":10000,
                  "build_seconds":1.0,"query_seconds_mean":0.0001,
                  "avg_dist_evals":{evals},"recall_at_10":{recall}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn ann_documents_gate_recall_and_dist_evals_but_not_wall_clock() {
        let base = ann_doc(0.98, 400.0);
        assert!(compare_documents(&base, &ann_doc(0.98, 400.0), 0.10)
            .unwrap()
            .is_empty());
        // Wall-clock drift alone never fails.
        let mut slow = ann_doc(0.98, 400.0);
        let mut cells = slow.get("cells").unwrap().as_array().unwrap().to_vec();
        cells[0].insert("query_seconds_mean", Value::from(9.9));
        slow.insert("cells", cells.into_iter().collect::<Value>());
        assert!(compare_documents(&base, &slow, 0.10).unwrap().is_empty());
        // Recall drops and eval inflation both fail.
        let r = compare_documents(&base, &ann_doc(0.80, 400.0), 0.10).unwrap();
        assert_eq!(r[0].metric, "recall_at_10");
        let r = compare_documents(&base, &ann_doc(0.98, 900.0), 0.10).unwrap();
        assert_eq!(r[0].metric, "avg_dist_evals");
        // Dropped cells are regressions, mirroring the grid schema.
        let empty = lim_json::parse(r#"{"schema":"lim-bench/ann-v1","cells":[]}"#).unwrap();
        let r = compare_documents(&base, &empty, 0.10).unwrap();
        assert_eq!(r[0].metric, "<cell>");
        assert_eq!(r[0].context, "hnsw/10000");
    }

    #[test]
    fn schema_mismatch_and_missing_metrics_error() {
        let grid = grid_doc(0.5, 10.0);
        let serve = lim_json::parse(r#"{"schema":"lim-serve/report-v1"}"#).unwrap();
        assert!(compare_documents(&grid, &serve, 0.1).is_err());
        assert!(compare_documents(&serve, &serve, 0.1).is_err()); // missing metrics
        let unknown = lim_json::parse(r#"{"schema":"x/y"}"#).unwrap();
        assert!(compare_documents(&unknown, &unknown, 0.1).is_err());
    }

    #[test]
    fn serve_v2_reports_gate_admission_metrics() {
        let mk = |shed: i64, wait_p95: f64| {
            lim_json::parse(&format!(
                r#"{{"schema":"lim-serve/report-v2","success_rate":0.5,
                    "tool_accuracy":0.6,
                    "caches":{{"embedding":{{"hit_rate":0.8}},
                               "selection":{{"hit_rate":0.7}}}},
                    "latency":{{"p50_s":8.0,"p95_s":20.0,"p99_s":30.0}},
                    "admission":{{"shed":{shed},"degraded":0,"max_queue_depth":4,
                                  "queue_wait":{{"p95_s":{wait_p95},"p99_s":5.0}}}}}}"#
            ))
            .unwrap()
        };
        let base = mk(0, 1.0);
        assert!(compare_documents(&base, &mk(0, 1.05), 0.10)
            .unwrap()
            .is_empty());
        // A zero shed baseline means "must stay zero".
        let r = compare_documents(&base, &mk(3, 1.0), 0.10).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].metric, "admission.shed");
        // Waits regress like any LowerIsBetter metric.
        let r = compare_documents(&base, &mk(0, 1.5), 0.10).unwrap();
        assert_eq!(r[0].metric, "admission.queue_wait.p95_s");
        // v1 baselines never compare against v2 documents: the id must
        // match exactly, forcing a deliberate baseline regeneration.
        let v1 = lim_json::parse(
            r#"{"schema":"lim-serve/report-v1","success_rate":0.5,
                "tool_accuracy":0.6,
                "caches":{"embedding":{"hit_rate":0.8},
                           "selection":{"hit_rate":0.7}},
                "latency":{"p50_s":8.0,"p95_s":20.0,"p99_s":30.0}}"#,
        )
        .unwrap();
        assert!(compare_documents(&v1, &base, 0.10)
            .unwrap_err()
            .contains("schema mismatch"));
        // A v2 document missing the admission section is malformed: the
        // tracked admission metrics must be present, never defaulted.
        let mut v2_no_admission = v1.clone();
        v2_no_admission.insert("schema", Value::from("lim-serve/report-v2"));
        let err = compare_documents(&base, &v2_no_admission, 0.10).unwrap_err();
        assert!(err.contains("missing admission.shed"), "{err}");
        // v1 documents still gate on the v1 metric set.
        assert!(compare_documents(&v1, &v1, 0.10).unwrap().is_empty());
    }

    #[test]
    fn serve_v3_reports_gate_catalog_counters() {
        let mk = |epoch: i64, registered: i64, retired: i64| {
            lim_json::parse(&format!(
                r#"{{"schema":"lim-serve/report-v3","success_rate":0.5,
                    "tool_accuracy":0.6,
                    "caches":{{"embedding":{{"hit_rate":0.8}},
                               "selection":{{"hit_rate":0.7}}}},
                    "latency":{{"p50_s":8.0,"p95_s":20.0,"p99_s":30.0}},
                    "admission":{{"shed":0,"degraded":0,"max_queue_depth":0,
                                  "queue_wait":{{"p95_s":0.0,"p99_s":0.0}}}},
                    "catalog":{{"epoch":{epoch},"registered":{registered},
                                "retired":{retired},"tombstones":0,"compactions":0,
                                "cluster_refreshes":0,"memo_invalidations":0}}}}"#
            ))
            .unwrap()
        };
        let churned = mk(8, 4, 4);
        assert!(compare_documents(&churned, &churned, 0.0)
            .unwrap()
            .is_empty());
        // Silently dropping mutations regresses the counters to zero.
        let r = compare_documents(&churned, &mk(0, 0, 0), 0.0).unwrap();
        let metrics: Vec<&str> = r.iter().map(|x| x.metric.as_str()).collect();
        assert!(metrics.contains(&"catalog.epoch"), "{metrics:?}");
        assert!(metrics.contains(&"catalog.registered"), "{metrics:?}");
        assert!(metrics.contains(&"catalog.retired"), "{metrics:?}");
        // A static (all-zero) baseline passes trivially upward.
        assert!(compare_documents(&mk(0, 0, 0), &churned, 0.0)
            .unwrap()
            .is_empty());
        // A v3 document must carry the catalog section.
        let mut no_catalog = churned.clone();
        no_catalog.insert("catalog", lim_json::Value::Null);
        let err = compare_documents(&churned, &no_catalog, 0.0).unwrap_err();
        assert!(err.contains("missing catalog.epoch"), "{err}");
        // v2 baselines never compare against v3 documents.
        let v2 = lim_json::parse(r#"{"schema":"lim-serve/report-v2"}"#).unwrap();
        assert!(compare_documents(&v2, &churned, 0.10)
            .unwrap_err()
            .contains("schema mismatch"));
    }

    #[test]
    fn serve_v4_reports_gate_per_tenant_cells() {
        let tenant = |id: i64, success: f64, shed: i64| {
            format!(
                r#"{{"tenant":{id},"success_rate":{success},"tool_accuracy":0.6,
                    "caches":{{"embedding":{{"hit_rate":0.8,"capacity":64,"floor":16}},
                               "selection":{{"hit_rate":0.7,"capacity":64,"floor":16}}}},
                    "latency":{{"p50_s":8.0,"p95_s":20.0,"p99_s":30.0}},
                    "admission":{{"shed":{shed},"degraded":0,"max_queue_depth":0,
                                  "queue_wait":{{"p95_s":0.0,"p99_s":0.0}}}}}}"#
            )
        };
        let mk = |tenants: &[String]| {
            lim_json::parse(&format!(
                r#"{{"schema":"lim-serve/report-v4","success_rate":0.5,
                    "tool_accuracy":0.6,
                    "caches":{{"embedding":{{"hit_rate":0.8}},
                               "selection":{{"hit_rate":0.7}}}},
                    "latency":{{"p50_s":8.0,"p95_s":20.0,"p99_s":30.0}},
                    "admission":{{"shed":0,"degraded":0,"max_queue_depth":0,
                                  "queue_wait":{{"p95_s":0.0,"p99_s":0.0}}}},
                    "catalog":{{"epoch":0,"registered":0,"retired":0,"tombstones":0,
                                "compactions":0,"cluster_refreshes":0,
                                "memo_invalidations":0}},
                    "tenants":[{}]}}"#,
                tenants.join(",")
            ))
            .unwrap()
        };
        let base = mk(&[tenant(0, 0.5, 0), tenant(1, 0.5, 0)]);
        assert!(compare_documents(&base, &base, 0.0).unwrap().is_empty());
        // A cold tenant starting to shed fails even at tolerance 0 on a
        // calm baseline — the comparable isolation gate.
        let hot_neighbor = mk(&[tenant(0, 0.5, 0), tenant(1, 0.5, 7)]);
        let r = compare_documents(&base, &hot_neighbor, 0.0).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].metric, "admission.shed");
        assert_eq!(r[0].context, "tenant 1");
        // A silently dropped tenant is a regression, like a dropped cell.
        let dropped = mk(&[tenant(0, 0.5, 0)]);
        let r = compare_documents(&base, &dropped, 0.0).unwrap();
        assert_eq!(r[0].metric, "<cell>");
        assert_eq!(r[0].context, "tenant 1");
        // Per-tenant success regressions name the tenant they hit.
        let worse = mk(&[tenant(0, 0.2, 0), tenant(1, 0.5, 0)]);
        let r = compare_documents(&base, &worse, 0.10).unwrap();
        assert_eq!(r[0].metric, "success_rate");
        assert_eq!(r[0].context, "tenant 0");
        // v3 baselines never compare against v4 documents.
        let v3 = lim_json::parse(r#"{"schema":"lim-serve/report-v3"}"#).unwrap();
        assert!(compare_documents(&v3, &base, 0.10)
            .unwrap_err()
            .contains("schema mismatch"));
    }

    #[test]
    fn boot_metrics_gate_only_when_the_baseline_has_them() {
        let mk = |boot: &str| {
            lim_json::parse(&format!(
                r#"{{"schema":"lim-serve/report-v2","success_rate":0.5,
                    "tool_accuracy":0.6,
                    "caches":{{"embedding":{{"hit_rate":0.8}},
                               "selection":{{"hit_rate":0.7}}}},
                    "latency":{{"p50_s":8.0,"p95_s":20.0,"p99_s":30.0}},
                    "admission":{{"shed":0,"degraded":0,"max_queue_depth":0,
                                  "queue_wait":{{"p95_s":0.0,"p99_s":0.0}}}}{boot}}}"#
            ))
            .unwrap()
        };
        let warm = mk(r#","boot":{"build_skipped":true,"sim_boot_seconds":0.001}"#);
        let cold = mk(r#","boot":{"build_skipped":false,"sim_boot_seconds":0.8}"#);
        let bootless = mk("");

        // Warm baseline vs warm current: clean.
        assert!(compare_documents(&warm, &warm, 0.10).unwrap().is_empty());
        // Falling back to a cold in-process build regresses both gated
        // boot metrics (the boolean gates as 1 -> 0).
        let r = compare_documents(&warm, &cold, 0.10).unwrap();
        let metrics: Vec<&str> = r.iter().map(|x| x.metric.as_str()).collect();
        assert!(metrics.contains(&"boot.build_skipped"), "{metrics:?}");
        assert!(metrics.contains(&"boot.sim_boot_seconds"), "{metrics:?}");
        // Pre-snapshot baselines without a boot section still compare.
        assert!(compare_documents(&bootless, &warm, 0.10)
            .unwrap()
            .is_empty());
        // But a baseline that tracks boot requires it in the current doc.
        let err = compare_documents(&warm, &bootless, 0.10).unwrap_err();
        assert!(err.contains("missing boot.build_skipped"), "{err}");
        // A cold baseline never blocks warming up (improvement).
        assert!(compare_documents(&cold, &warm, 0.10).unwrap().is_empty());
    }

    #[test]
    fn serve_reports_compare_nested_paths() {
        let mk = |hit: f64, p95: f64| {
            lim_json::parse(&format!(
                r#"{{"schema":"lim-serve/report-v1","success_rate":0.5,
                    "tool_accuracy":0.6,
                    "caches":{{"embedding":{{"hit_rate":{hit}}},
                               "selection":{{"hit_rate":0.7}}}},
                    "latency":{{"p50_s":8.0,"p95_s":{p95},"p99_s":30.0}}}}"#
            ))
            .unwrap()
        };
        let base = mk(0.70, 20.0);
        assert!(compare_documents(&base, &mk(0.69, 20.0), 0.10)
            .unwrap()
            .is_empty());
        let r = compare_documents(&base, &mk(0.50, 25.0), 0.10).unwrap();
        let metrics: Vec<&str> = r.iter().map(|x| x.metric.as_str()).collect();
        assert!(metrics.contains(&"caches.embedding.hit_rate"));
        assert!(metrics.contains(&"latency.p95_s"));
    }
}
