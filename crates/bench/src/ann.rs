//! The latency-vs-catalog-size curve for the vector-index backends.
//!
//! Sweeps synthetic catalogs (see `lim_workloads::synthetic`) across the
//! Flat / IVF / HNSW backends and reports, per `(backend, catalog)` cell:
//!
//! * `recall_at_10` — overlap with the exact Flat top-10 (tracked ↑);
//! * `avg_dist_evals` — mean vector-distance evaluations per query, the
//!   machine-independent latency proxy (tracked ↓);
//! * `build_seconds` / `query_seconds_mean` — wall-clock, reported for
//!   the curve but **never tracked** (not comparable across runners).
//!
//! Catalog generation, index construction and search are all seeded, so
//! the tracked metrics are bit-reproducible and `lim compare` can gate
//! the committed `BENCH_ann_baseline.json` exactly.

use std::time::Instant;

use lim_json::Value;
use lim_vecstore::{
    FlatIndex, HnswIndex, HnswParams, IvfIndex, IvfParams, Metric, Neighbor, VectorIndex,
};
use lim_workloads::synthetic::{synthetic_catalog, SyntheticCatalog};

/// Schema id written into every ann-curve document.
pub const ANN_SCHEMA: &str = "lim-bench/ann-v1";

/// Vector dimensionality of the synthetic catalogs.
pub const ANN_DIM: usize = 64;

/// Queries per cell.
pub const ANN_QUERIES: usize = 32;

/// Neighbours retrieved per query (recall@10).
pub const ANN_K: usize = 10;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct AnnConfig {
    /// Master seed for catalog generation.
    pub seed: u64,
    /// Catalog sizes to sweep.
    pub catalogs: Vec<usize>,
    /// IVF parameters (`seed` is taken from this struct's field).
    pub ivf: IvfParams,
    /// HNSW parameters.
    pub hnsw: HnswParams,
}

impl Default for AnnConfig {
    fn default() -> Self {
        Self {
            seed: 20_250_331,
            catalogs: vec![1_000, 10_000],
            ivf: IvfParams::default(),
            hnsw: HnswParams::default(),
        }
    }
}

/// One `(backend, catalog)` measurement.
#[derive(Debug, Clone)]
pub struct AnnCell {
    /// Index backend (`"flat"` / `"ivf"` / `"hnsw"`).
    pub backend: &'static str,
    /// Catalog size.
    pub catalog: usize,
    /// Wall-clock index construction time (untracked).
    pub build_seconds: f64,
    /// Wall-clock mean seconds per query (untracked).
    pub query_seconds_mean: f64,
    /// Mean vector-distance evaluations per query (tracked, ↓).
    pub avg_dist_evals: f64,
    /// Mean overlap with the exact top-10 (tracked, ↑).
    pub recall_at_10: f64,
}

/// Runs the full sweep: every backend over every catalog size.
pub fn run_ann(config: &AnnConfig) -> Vec<AnnCell> {
    let mut cells = Vec::new();
    for &size in &config.catalogs {
        cells.extend(run_ann_catalog(config, size));
    }
    cells
}

/// Runs the three backends over one catalog size.
pub fn run_ann_catalog(config: &AnnConfig, size: usize) -> Vec<AnnCell> {
    let catalog = synthetic_catalog(config.seed ^ size as u64, size, ANN_DIM, ANN_QUERIES);
    let items: Vec<(u64, &[f32])> = catalog
        .vectors
        .iter()
        .map(|(id, v)| (*id, v.as_slice()))
        .collect();

    // Exact ground truth from a flat scan (measured as its own cell).
    let build = Instant::now();
    let mut flat = FlatIndex::new(ANN_DIM, Metric::Cosine);
    flat.add_batch(items.iter().copied())
        .expect("synthetic ids are unique");
    let flat_build = build.elapsed().as_secs_f64();
    let truth: Vec<Vec<u64>> = catalog
        .queries
        .iter()
        .map(|q| flat.search(q, ANN_K).iter().map(|n| n.id).collect())
        .collect();

    let build = Instant::now();
    let ivf = IvfIndex::train(ANN_DIM, Metric::Cosine, config.ivf, &items)
        .expect("synthetic catalog trains");
    let ivf_build = build.elapsed().as_secs_f64();

    let build = Instant::now();
    let hnsw = HnswIndex::train(ANN_DIM, Metric::Cosine, config.hnsw, &items)
        .expect("synthetic catalog trains");
    let hnsw_build = build.elapsed().as_secs_f64();

    vec![
        measure("flat", size, flat_build, &catalog, &truth, |q| {
            flat.search_with_stats(q, ANN_K)
        }),
        measure("ivf", size, ivf_build, &catalog, &truth, |q| {
            ivf.search_with_stats(q, ANN_K)
        }),
        measure("hnsw", size, hnsw_build, &catalog, &truth, |q| {
            hnsw.search_with_stats(q, ANN_K)
        }),
    ]
}

fn measure(
    backend: &'static str,
    catalog_size: usize,
    build_seconds: f64,
    catalog: &SyntheticCatalog,
    truth: &[Vec<u64>],
    search: impl Fn(&[f32]) -> (Vec<Neighbor>, usize),
) -> AnnCell {
    let mut total_evals = 0usize;
    let mut total_overlap = 0usize;
    let started = Instant::now();
    for (query, gold) in catalog.queries.iter().zip(truth) {
        let (hits, evals) = search(query);
        total_evals += evals;
        total_overlap += hits.iter().filter(|h| gold.contains(&h.id)).count();
    }
    let elapsed = started.elapsed().as_secs_f64();
    let queries = catalog.queries.len() as f64;
    AnnCell {
        backend,
        catalog: catalog_size,
        build_seconds,
        query_seconds_mean: elapsed / queries,
        avg_dist_evals: total_evals as f64 / queries,
        recall_at_10: total_overlap as f64 / (queries * ANN_K as f64),
    }
}

/// Serializes a sweep into the `lim-bench/ann-v1` document `lim compare`
/// gates (tracked: `recall_at_10`↑, `avg_dist_evals`↓ per cell).
pub fn ann_to_json(config: &AnnConfig, cells: &[AnnCell]) -> Value {
    Value::object([
        ("schema", Value::from(ANN_SCHEMA)),
        ("seed", Value::from(config.seed as i64)),
        ("dim", Value::from(ANN_DIM)),
        ("queries", Value::from(ANN_QUERIES)),
        ("k", Value::from(ANN_K)),
        (
            "cells",
            cells
                .iter()
                .map(|c| {
                    Value::object([
                        ("backend", Value::from(c.backend)),
                        ("catalog", Value::from(c.catalog)),
                        ("build_seconds", Value::from(c.build_seconds)),
                        ("query_seconds_mean", Value::from(c.query_seconds_mean)),
                        ("avg_dist_evals", Value::from(c.avg_dist_evals)),
                        ("recall_at_10", Value::from(c.recall_at_10)),
                    ])
                })
                .collect(),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> AnnConfig {
        AnnConfig {
            catalogs: vec![512],
            ..AnnConfig::default()
        }
    }

    #[test]
    fn sweep_covers_every_backend_and_tracked_metrics_are_deterministic() {
        let config = small_config();
        let a = run_ann(&config);
        let b = run_ann(&config);
        assert_eq!(a.len(), 3);
        let backends: Vec<&str> = a.iter().map(|c| c.backend).collect();
        assert_eq!(backends, vec!["flat", "ivf", "hnsw"]);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.avg_dist_evals.to_bits(), y.avg_dist_evals.to_bits());
            assert_eq!(x.recall_at_10.to_bits(), y.recall_at_10.to_bits());
        }
    }

    #[test]
    fn flat_cell_has_perfect_recall_and_full_scan_cost() {
        let cells = run_ann(&small_config());
        let flat = &cells[0];
        assert_eq!(flat.recall_at_10, 1.0);
        assert_eq!(flat.avg_dist_evals, 512.0);
    }

    #[test]
    fn hnsw_beats_exhaustive_scan_on_dist_evals() {
        let cells = run_ann(&small_config());
        let flat = &cells[0];
        let hnsw = &cells[2];
        assert!(hnsw.avg_dist_evals < flat.avg_dist_evals);
        assert!(hnsw.recall_at_10 >= 0.95, "recall {}", hnsw.recall_at_10);
    }

    #[test]
    fn json_document_is_gateable() {
        let config = small_config();
        let cells = run_ann(&config);
        let doc = ann_to_json(&config, &cells);
        assert_eq!(doc.get("schema").and_then(Value::as_str), Some(ANN_SCHEMA));
        let r = crate::compare::compare_documents(&doc, &doc, 0.0).unwrap();
        assert!(r.is_empty());
    }

    /// The 100k-tool cell — nightly only (`cargo test --release -- --ignored`).
    #[test]
    #[ignore = "100k catalog build is minutes of work; nightly CI runs it"]
    fn ann_100k_hnsw_beats_ivf_by_5x() {
        let config = AnnConfig {
            catalogs: vec![100_000],
            ..AnnConfig::default()
        };
        let cells = run_ann(&config);
        let ivf = &cells[1];
        let hnsw = &cells[2];
        assert!(
            hnsw.avg_dist_evals * 5.0 <= ivf.avg_dist_evals,
            "hnsw {} vs ivf {}",
            hnsw.avg_dist_evals,
            ivf.avg_dist_evals
        );
        assert!(hnsw.recall_at_10 >= 0.95, "recall {}", hnsw.recall_at_10);
    }
}
