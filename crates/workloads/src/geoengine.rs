//! The GeoEngine-like sequential benchmark: 46 geospatial tools.
//!
//! GeoEngine "focuses on geographic applications requiring sequential
//! function calls, where each call depends on the previous result" (§IV).
//! Queries here instantiate *workflow recipes* — fixed tool chains such as
//! `load_fmow_scene → filter_by_region → caption_batch → plot_captions`
//! (the paper's running example "Plot the fmow VQA captions in UK from
//! Fall 2009"). Chain steps after the first consume the previous step's
//! output through their `source` parameter, recorded in gold arguments as
//! the sentinel `"$prev"`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use lim_json::Value;
use std::collections::HashMap;

use crate::catalog::{build_registry, ParamDef, ToolDef};
use crate::pools::Pool;
use crate::query::{GoldStep, Query, Workload, WorkloadKind};

macro_rules! p {
    ($name:literal, $pool:ident, $req:literal, $desc:literal) => {
        ParamDef {
            name: $name,
            pool: Pool::$pool,
            required: $req,
            desc: $desc,
        }
    };
}

/// `source` parameter shared by every chain-consuming tool.
macro_rules! src {
    () => {
        p!(
            "source",
            Phrase,
            true,
            "Handle of the upstream result this step consumes"
        )
    };
}

/// The 46 GeoEngine-like tools.
pub(crate) const TOOLS: &[ToolDef] = &[
    // --------------------------------------------------- imagery (6)
    ToolDef {
        name: "load_satellite_imagery",
        category: "imagery",
        desc: "Loads satellite imagery tiles for a geographic region and year",
        params: &[
            p!("region", Region, true, "Region of interest"),
            p!("year", Year, true, "Acquisition year"),
        ],
        templates: &[],
    },
    ToolDef {
        name: "load_aerial_photo",
        category: "imagery",
        desc: "Loads high-resolution aerial photography for a region",
        params: &[p!("region", Region, true, "Region of interest")],
        templates: &[],
    },
    ToolDef {
        name: "load_fmow_scene",
        category: "imagery",
        desc: "Loads a scene from a remote-sensing dataset such as fmow for a region",
        params: &[
            p!("dataset", Dataset, true, "Dataset name"),
            p!("region", Region, true, "Region of interest"),
        ],
        templates: &[],
    },
    ToolDef {
        name: "image_metadata",
        category: "imagery",
        desc: "Returns acquisition metadata of loaded imagery",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "cloud_mask",
        category: "imagery",
        desc: "Computes a cloud mask over loaded imagery",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "pansharpen_image",
        category: "imagery",
        desc: "Pansharpens multispectral imagery to higher resolution",
        params: &[src!()],
        templates: &[],
    },
    // ------------------------------------------------- filtering (5)
    ToolDef {
        name: "filter_by_region",
        category: "filtering",
        desc: "Filters loaded imagery or detections to a geographic region",
        params: &[src!(), p!("region", Region, true, "Region to keep")],
        templates: &[],
    },
    ToolDef {
        name: "filter_by_daterange",
        category: "filtering",
        desc: "Filters a collection to items acquired between two dates",
        params: &[
            src!(),
            p!("start_date", Date, true, "Range start"),
            p!("end_date", Date, true, "Range end"),
        ],
        templates: &[],
    },
    ToolDef {
        name: "filter_by_season",
        category: "filtering",
        desc: "Filters a collection to items acquired in a season of a year",
        params: &[
            src!(),
            p!("season", Season, true, "Season to keep"),
            p!("year", Year, true, "Year to keep"),
        ],
        templates: &[],
    },
    ToolDef {
        name: "filter_by_sensor",
        category: "filtering",
        desc: "Filters a collection to scenes captured by a given sensor",
        params: &[src!(), p!("sensor", Sensor, true, "Sensor name")],
        templates: &[],
    },
    ToolDef {
        name: "filter_by_cloudcover",
        category: "filtering",
        desc: "Filters a collection to scenes below a cloud-cover percentage",
        params: &[
            src!(),
            p!("max_percent", SmallInt, true, "Maximum cloud cover"),
        ],
        templates: &[],
    },
    // ------------------------------------------------- detection (6)
    ToolDef {
        name: "detect_objects",
        category: "detection",
        desc: "Detects objects of a given class in imagery",
        params: &[
            src!(),
            p!("classes", ObjectClass, true, "Object class to detect"),
        ],
        templates: &[],
    },
    ToolDef {
        name: "detect_buildings",
        category: "detection",
        desc: "Detects building footprints in imagery",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "detect_ships",
        category: "detection",
        desc: "Detects ships and vessels in maritime imagery",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "detect_aircraft",
        category: "detection",
        desc: "Detects aircraft on the ground in imagery",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "segment_landcover",
        category: "detection",
        desc: "Segments imagery into land-cover classes such as forest, water and urban",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "change_detection",
        category: "detection",
        desc: "Detects changes between imagery epochs of the same region",
        params: &[
            src!(),
            p!(
                "baseline_year",
                Year,
                true,
                "Baseline year to compare against"
            ),
        ],
        templates: &[],
    },
    // -------------------------------------------------- analysis (5)
    ToolDef {
        name: "compute_ndvi",
        category: "analysis",
        desc: "Computes the NDVI vegetation index over imagery",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "compute_area",
        category: "analysis",
        desc: "Computes the total area of detections or polygons in square km",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "population_estimate",
        category: "analysis",
        desc: "Estimates the population living within a geocoded area",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "elevation_profile",
        category: "analysis",
        desc: "Computes the elevation profile along a path in a region",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "distance_measure",
        category: "analysis",
        desc: "Measures distances between detected features",
        params: &[src!()],
        templates: &[],
    },
    // ------------------------------------------------------- vqa (4)
    ToolDef {
        name: "answer_visual_question",
        category: "vqa",
        desc: "Answers a natural-language question about a loaded scene",
        params: &[
            src!(),
            p!("question", VisualQuestion, true, "Question about the scene"),
        ],
        templates: &[],
    },
    ToolDef {
        name: "generate_caption",
        category: "vqa",
        desc: "Generates a descriptive caption for one scene",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "caption_batch",
        category: "vqa",
        desc: "Generates VQA captions for every scene in a collection",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "visual_grounding",
        category: "vqa",
        desc: "Locates the image region referred to by a phrase",
        params: &[src!(), p!("phrase", Phrase, true, "Referring phrase")],
        templates: &[],
    },
    // --------------------------------------------------- mapping (6)
    ToolDef {
        name: "plot_on_map",
        category: "mapping",
        desc: "Plots features or results as markers on an interactive map",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "plot_captions",
        category: "mapping",
        desc: "Plots generated captions at their scene locations on a map",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "render_heatmap",
        category: "mapping",
        desc: "Renders values as a heatmap overlay on a map",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "draw_boundaries",
        category: "mapping",
        desc: "Draws administrative boundaries of a region on a map",
        params: &[p!(
            "region",
            Region,
            true,
            "Region whose boundaries to draw"
        )],
        templates: &[],
    },
    ToolDef {
        name: "export_map_image",
        category: "mapping",
        desc: "Exports the current map view as a PNG image",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "add_map_layer",
        category: "mapping",
        desc: "Adds a named layer to the current map",
        params: &[src!(), p!("layer_name", Phrase, true, "Layer label")],
        templates: &[],
    },
    // ------------------------------------------------------ data (5)
    ToolDef {
        name: "query_wiki_knowledge",
        category: "data",
        desc: "Queries encyclopedic knowledge about a place or landmark",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "lookup_landmark",
        category: "data",
        desc: "Identifies the best-known landmark near a location",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "fetch_weather_history",
        category: "data",
        desc: "Fetches historical weather records for a location and year",
        params: &[src!(), p!("year", Year, true, "Year of interest")],
        templates: &[],
    },
    ToolDef {
        name: "dataset_statistics",
        category: "data",
        desc: "Computes summary statistics over a loaded dataset",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "list_available_datasets",
        category: "data",
        desc: "Lists the remote-sensing datasets available on the platform",
        params: &[],
        templates: &[],
    },
    // -------------------------------------------------- document (5)
    ToolDef {
        name: "generate_report",
        category: "document",
        desc: "Generates a written analysis report from results",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "export_geojson",
        category: "document",
        desc: "Exports detections or polygons as a GeoJSON document",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "save_results_csv",
        category: "document",
        desc: "Saves tabular results as a CSV file",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "create_presentation",
        category: "document",
        desc: "Builds a slide presentation from analysis results",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "email_results",
        category: "document",
        desc: "Emails results to a recipient",
        params: &[src!(), p!("recipient", Email, true, "Recipient address")],
        templates: &[],
    },
    // ---------------------------------------------------- search (4)
    ToolDef {
        name: "search_location",
        category: "search",
        desc: "Searches for a location by free-text name",
        params: &[p!("query", Phrase, true, "Location search text")],
        templates: &[],
    },
    ToolDef {
        name: "geocode_address",
        category: "search",
        desc: "Converts a street address into geographic coordinates",
        params: &[p!("address", Address, true, "Street address")],
        templates: &[],
    },
    ToolDef {
        name: "reverse_geocode",
        category: "search",
        desc: "Converts coordinates into the nearest street address",
        params: &[src!()],
        templates: &[],
    },
    ToolDef {
        name: "find_nearby_features",
        category: "search",
        desc: "Finds points of interest near a geocoded location",
        params: &[src!()],
        templates: &[],
    },
];

/// A workflow recipe: a query template and the tool chain that fulfils it.
#[derive(Debug, Clone, Copy)]
struct Recipe {
    category: &'static str,
    template: &'static str,
    chain: &'static [&'static str],
}

/// The workflow recipes queries are drawn from. Their chains define which
/// tools are *co-used* — the structure Search Level 2's clustering must
/// recover from augmented queries.
const RECIPES: &[Recipe] = &[
    Recipe {
        category: "vqa-mapping",
        template: "Plot the {dataset} VQA captions in {region} from {season} {year}",
        chain: &["load_fmow_scene", "filter_by_season", "caption_batch", "plot_captions"],
    },
    Recipe {
        category: "detection-report",
        template: "Generate a report of ship detections in {region} during {year}",
        chain: &["load_satellite_imagery", "filter_by_region", "detect_ships", "generate_report"],
    },
    Recipe {
        category: "vegetation",
        template: "Render an NDVI heatmap for {region} between {start_date} and {end_date}",
        chain: &["load_satellite_imagery", "filter_by_daterange", "compute_ndvi", "render_heatmap"],
    },
    Recipe {
        category: "wiki",
        template: "Tell me what the encyclopedia says about the landmark near {address}",
        chain: &["geocode_address", "lookup_landmark", "query_wiki_knowledge"],
    },
    Recipe {
        category: "change",
        template: "Export a GeoJSON of the changes in {region} since {baseline_year}",
        chain: &["load_satellite_imagery", "change_detection", "export_geojson"],
    },
    Recipe {
        category: "population",
        template: "Map the population estimate around {address}",
        chain: &["geocode_address", "population_estimate", "plot_on_map"],
    },
    Recipe {
        category: "buildings",
        template: "Measure the building footprint area in {region} and save it as CSV",
        chain: &["load_aerial_photo", "detect_buildings", "compute_area", "save_results_csv"],
    },
    Recipe {
        category: "vqa",
        template: "Looking at the {dataset} scene of {region}: {question}",
        chain: &["load_fmow_scene", "answer_visual_question"],
    },
    Recipe {
        category: "climate",
        template: "Render a heatmap of historical weather around {query} in {year}",
        chain: &["search_location", "fetch_weather_history", "render_heatmap"],
    },
    Recipe {
        category: "detection-report",
        template: "Detect aircraft in {sensor} imagery of {region} with under {max_percent}% clouds and email the results to {recipient}",
        chain: &[
            "load_satellite_imagery",
            "filter_by_sensor",
            "filter_by_cloudcover",
            "detect_aircraft",
            "email_results",
        ],
    },
    Recipe {
        category: "landcover",
        template: "Build a presentation of the land cover segmentation of {region}",
        chain: &["load_satellite_imagery", "segment_landcover", "create_presentation"],
    },
    Recipe {
        category: "search",
        template: "Plot the features near {address} on a map",
        chain: &["geocode_address", "find_nearby_features", "plot_on_map"],
    },
];

/// Builds the GeoEngine-like workload: 46 tools, `n_queries` sequential
/// evaluation queries and a 60-query training split for the augmenter.
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics only if the static catalog/recipes are internally inconsistent
/// (covered by tests).
pub fn geoengine(seed: u64, n_queries: usize) -> Workload {
    let registry = build_registry(TOOLS).expect("static GeoEngine catalog is valid");
    let queries = generate(seed, n_queries, 0);
    let train_queries = generate(seed ^ 0x6E0_CAFE, 60, 1_000_000);
    Workload {
        name: "geoengine",
        kind: WorkloadKind::Sequential,
        registry,
        queries,
        train_queries,
    }
}

fn generate(seed: u64, n: usize, id_base: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let recipe = &RECIPES[i % RECIPES.len()];
            let (text, steps) = instantiate_recipe(recipe, &mut rng);
            Query {
                id: id_base + i as u64,
                text,
                category: recipe.category.to_owned(),
                steps,
            }
        })
        .collect()
}

fn tool_def(name: &str) -> &'static ToolDef {
    TOOLS
        .iter()
        .find(|t| t.name == name)
        .unwrap_or_else(|| panic!("recipe references unknown tool {name}"))
}

fn instantiate_recipe(recipe: &Recipe, rng: &mut StdRng) -> (String, Vec<GoldStep>) {
    // Shared slot values: a parameter name appearing in several steps (or
    // in the template) resolves to one consistent value per query.
    let mut slots: HashMap<&'static str, (String, Value)> = HashMap::new();
    let mut steps = Vec::with_capacity(recipe.chain.len());

    for (index, tool_name) in recipe.chain.iter().enumerate() {
        let def = tool_def(tool_name);
        let mut args = Value::object::<&str, _>([]);
        for param in def.params {
            if param.name == "source" {
                if index > 0 {
                    args.insert("source", Value::from("$prev"));
                } else {
                    // A recipe must not start with a consuming tool.
                    panic!(
                        "recipe {} starts with consumer {tool_name}",
                        recipe.template
                    );
                }
                continue;
            }
            if !param.required {
                continue;
            }
            let entry = slots
                .entry(param.name)
                .or_insert_with(|| param.pool.sample(rng));
            args.insert(param.name, entry.1.clone());
        }
        steps.push(GoldStep {
            tool: (*tool_name).to_owned(),
            args,
        });
    }

    let mut text = recipe.template.to_owned();
    for (name, (display, _)) in &slots {
        text = text.replace(&format!("{{{name}}}"), display);
    }
    (text, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_exactly_46_tools() {
        assert_eq!(TOOLS.len(), 46);
    }

    #[test]
    fn catalog_names_are_unique() {
        let mut names: Vec<&str> = TOOLS.iter().map(|t| t.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn recipes_reference_known_tools_and_start_with_producers() {
        for r in RECIPES {
            assert!(r.chain.len() >= 2, "chains are sequential");
            let first = tool_def(r.chain[0]);
            assert!(
                first.params.iter().all(|p| p.name != "source"),
                "recipe {} starts with a consumer",
                r.template
            );
            for t in r.chain.iter().skip(1) {
                let def = tool_def(t);
                assert!(
                    def.params.iter().any(|p| p.name == "source"),
                    "chained tool {t} cannot consume upstream output"
                );
            }
        }
    }

    #[test]
    fn template_placeholders_resolve_to_chain_params() {
        for r in RECIPES {
            let mut rest = r.template;
            while let Some(start) = rest.find('{') {
                let end = rest[start..].find('}').expect("balanced braces") + start;
                let name = &rest[start + 1..end];
                let known = r
                    .chain
                    .iter()
                    .any(|t| tool_def(t).params.iter().any(|p| p.name == name));
                assert!(
                    known,
                    "template {} references unknown slot {name}",
                    r.template
                );
                rest = &rest[end + 1..];
            }
        }
    }

    #[test]
    fn generated_queries_have_valid_sequential_gold() {
        let w = geoengine(1, 230);
        for q in &w.queries {
            assert!(q.steps.len() >= 2);
            for (i, step) in q.steps.iter().enumerate() {
                let spec = w
                    .registry
                    .get_by_name(&step.tool)
                    .expect("gold tool exists");
                let call = lim_tools::ToolCall::new(step.tool.clone(), step.args.clone());
                assert!(
                    spec.validate_call(&call).is_ok(),
                    "gold args invalid for {} in {:?}",
                    step.tool,
                    q.text
                );
                if i > 0 {
                    if let Some(source) = step.args.get("source") {
                        assert_eq!(source.as_str(), Some("$prev"));
                    }
                }
            }
        }
    }

    #[test]
    fn chain_lengths_match_paper_regime() {
        let w = geoengine(2, 230);
        let mean = w.mean_chain_len();
        assert!(
            (2.0..=4.0).contains(&mean),
            "mean chain length {mean} outside the GeoEngine regime"
        );
        assert!(w.queries.iter().all(|q| (2..=5).contains(&q.steps.len())));
    }

    #[test]
    fn query_text_has_no_unfilled_placeholders() {
        let w = geoengine(3, 120);
        for q in &w.queries {
            assert!(!q.text.contains('{'), "{}", q.text);
        }
    }

    #[test]
    fn shared_slots_are_consistent_within_a_query() {
        // filter/load steps in the same query must agree on e.g. region.
        let w = geoengine(4, 230);
        for q in &w.queries {
            let mut seen: HashMap<String, Value> = HashMap::new();
            for step in &q.steps {
                if let Some(obj) = step.args.as_object() {
                    for (k, v) in obj {
                        if k == "source" {
                            continue;
                        }
                        if let Some(prev) = seen.get(k) {
                            assert_eq!(prev, v, "slot {k} inconsistent in {:?}", q.text);
                        }
                        seen.insert(k.clone(), v.clone());
                    }
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(geoengine(9, 40).queries, geoengine(9, 40).queries);
    }

    #[test]
    fn vqa_recipe_matches_paper_example_shape() {
        // The paper's example: "Plot the fmow VQA captions in UK from Fall
        // 2009" — a 4-step chain ending at plot_captions.
        let w = geoengine(1, 230);
        let vqa = w
            .queries
            .iter()
            .find(|q| q.category == "vqa-mapping")
            .expect("vqa-mapping queries exist");
        assert_eq!(vqa.steps.last().unwrap().tool, "plot_captions");
        assert!(vqa.text.contains("VQA captions"));
    }
}
