//! Crate-level behaviour and property tests.

use crate::{bfcl, geoengine, WorkloadKind};
use proptest::prelude::*;

#[test]
fn benchmark_sizes_match_the_paper() {
    // §IV: "mini-batches of 230 queries from each benchmark, along with 51
    // functions from BFCL and 46 functions from GeoEngine".
    let b = bfcl(0, 230);
    let g = geoengine(0, 230);
    assert_eq!(b.registry.len(), 51);
    assert_eq!(g.registry.len(), 46);
    assert_eq!(b.queries.len(), 230);
    assert_eq!(g.queries.len(), 230);
    assert_eq!(b.kind, WorkloadKind::SingleCall);
    assert_eq!(g.kind, WorkloadKind::Sequential);
}

#[test]
fn rendered_catalogs_have_realistic_prompt_sizes() {
    // The full tool payloads must be in the multi-thousand-token range
    // that motivates the paper's context-window discussion.
    let b = bfcl(0, 10);
    let g = geoengine(0, 10);
    let b_chars = b.registry.prompt_chars(&(0..51).collect::<Vec<_>>());
    let g_chars = g.registry.prompt_chars(&(0..46).collect::<Vec<_>>());
    assert!(b_chars > 8_000, "BFCL payload only {b_chars} chars");
    assert!(g_chars > 8_000, "GeoEngine payload only {g_chars} chars");
    assert!(
        b_chars < 80_000 && g_chars < 80_000,
        "payloads implausibly large"
    );
}

#[test]
fn categories_are_multiple_and_stable() {
    let b = bfcl(5, 230);
    let g = geoengine(5, 230);
    assert!(
        b.categories().len() >= 10,
        "BFCL categories {:?}",
        b.categories()
    );
    assert!(
        g.categories().len() >= 8,
        "Geo categories {:?}",
        g.categories()
    );
}

#[test]
fn gold_tools_exist_in_registry() {
    for w in [bfcl(6, 230), geoengine(6, 230)] {
        for q in w.queries.iter().chain(&w.train_queries) {
            for step in &q.steps {
                assert!(
                    w.registry.get_by_name(&step.tool).is_some(),
                    "{} missing from {}",
                    step.tool,
                    w.name
                );
            }
        }
    }
}

proptest! {
    /// Any seed and size yields structurally valid workloads.
    #[test]
    fn workloads_valid_for_any_seed(seed in 0u64..500, n in 1usize..60) {
        let b = bfcl(seed, n);
        prop_assert_eq!(b.queries.len(), n);
        for q in &b.queries {
            prop_assert_eq!(q.steps.len(), 1);
            prop_assert!(!q.text.is_empty());
        }
        let g = geoengine(seed, n);
        prop_assert_eq!(g.queries.len(), n);
        for q in &g.queries {
            prop_assert!(q.steps.len() >= 2);
        }
    }

    /// Gold argument payloads always validate against their tool schemas.
    #[test]
    fn gold_args_always_validate(seed in 0u64..200) {
        for w in [bfcl(seed, 25), geoengine(seed, 25)] {
            for q in &w.queries {
                for step in &q.steps {
                    let spec = w.registry.get_by_name(&step.tool).unwrap();
                    let call = lim_tools::ToolCall::new(step.tool.clone(), step.args.clone());
                    prop_assert!(spec.validate_call(&call).is_ok());
                }
            }
        }
    }
}
