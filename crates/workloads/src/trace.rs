//! Session traces with Zipf-distributed query popularity and timed
//! arrival processes.
//!
//! A deployed edge assistant does not see a cold batch of unique queries:
//! it serves a long-lived stream of *sessions*, and query popularity is
//! heavily skewed — a handful of requests ("what's the weather", "convert
//! currency") dominate the stream. This module turns a [`Workload`]'s
//! evaluation pool into exactly that shape: a [`SessionTrace`] of
//! sessions, each a run of requests whose query indices are drawn from a
//! Zipf distribution over the pool.
//!
//! On top of the *what* (which queries arrive), an [`ArrivalProcess`]
//! decides the *when*: [`ArrivalProcess::BackToBack`] is the original
//! closed-loop replay (each request arrives the moment the engine is
//! ready for it — no queueing ever builds up), while
//! [`ArrivalProcess::Poisson`] and [`ArrivalProcess::Burst`] stamp every
//! request with an open-loop virtual arrival timestamp, which is what the
//! serving engine's admission-control layer (`lim-serve`) simulates queue
//! depth, wait time and shedding against. Timestamps are stored as
//! integer microseconds so JSON round-trips are bit-exact.
//!
//! Everything is deterministic per [`TraceConfig::seed`]: the popularity
//! ranking (a seeded permutation of the pool), the per-session lengths,
//! the per-request draws and the arrival timestamps all derive from one
//! `StdRng` stream, so the same config always produces the same trace —
//! on any machine, for any consumer worker count.
//!
//! # Examples
//!
//! ```
//! use lim_workloads::{bfcl, trace::{zipf_trace, ArrivalProcess, TraceConfig}};
//!
//! let w = bfcl(7, 60);
//! let trace = zipf_trace(&w, &TraceConfig { seed: 1, ..TraceConfig::default() });
//! assert_eq!(trace.sessions.len(), 32);
//! assert!(trace.requests() > 0);
//! let again = zipf_trace(&w, &TraceConfig { seed: 1, ..TraceConfig::default() });
//! assert_eq!(trace, again);
//!
//! // Open-loop Poisson arrivals at 2 requests/second:
//! let timed = zipf_trace(&w, &TraceConfig {
//!     seed: 1,
//!     arrivals: ArrivalProcess::Poisson { rate_rps: 2.0 },
//!     ..TraceConfig::default()
//! });
//! let arrivals = timed.arrival_seconds().expect("timed trace has arrivals");
//! assert_eq!(arrivals.len(), timed.requests());
//! assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "nondecreasing");
//! ```

use lim_json::Value;
use lim_tools::ToolDoc;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::query::Workload;

/// How virtual arrival timestamps are laid onto a trace's requests.
///
/// The process decides *when* requests reach the engine; the Zipf sampler
/// decides *what* they ask. `BackToBack` is the original closed-loop
/// replay semantics (and what every pre-arrival `trace-v1` document
/// means); the other two are open-loop processes that can outrun the
/// engine and make its admission-control layer queue, degrade or shed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Closed loop: each request arrives exactly when the engine finishes
    /// the previous one. Queue depth never grows, nothing is ever shed.
    BackToBack,
    /// Open loop: request inter-arrival gaps are exponential with mean
    /// `1 / rate_rps` — a memoryless stream of `rate_rps` requests per
    /// virtual second.
    Poisson {
        /// Mean arrival rate in requests per virtual second.
        rate_rps: f64,
    },
    /// Open loop, bursty: groups of `burst` requests arrive at the same
    /// instant, with exponential gaps between groups sized so the
    /// long-run rate is still `rate_rps`.
    Burst {
        /// Long-run mean arrival rate in requests per virtual second.
        rate_rps: f64,
        /// Requests per simultaneous burst (≥ 1).
        burst: usize,
    },
}

impl ArrivalProcess {
    /// Canonical textual form (`"back-to-back"`, `"poisson:2"`,
    /// `"burst:8:16"`) — what the CLI accepts and reports echo.
    pub fn label(&self) -> String {
        match self {
            ArrivalProcess::BackToBack => "back-to-back".to_owned(),
            ArrivalProcess::Poisson { rate_rps } => format!("poisson:{rate_rps}"),
            ArrivalProcess::Burst { rate_rps, burst } => format!("burst:{rate_rps}:{burst}"),
        }
    }

    /// Parses the [`ArrivalProcess::label`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed spec: unknown process name,
    /// non-positive/non-finite rate, or zero burst size.
    pub fn parse(text: &str) -> Result<Self, String> {
        let parse_rate = |spec: &str| -> Result<f64, String> {
            let rate: f64 = spec
                .parse()
                .map_err(|_| format!("bad arrival rate {spec:?}"))?;
            if rate > 0.0 && rate.is_finite() {
                Ok(rate)
            } else {
                Err(format!("arrival rate must be positive, got {spec:?}"))
            }
        };
        if text == "back-to-back" {
            return Ok(ArrivalProcess::BackToBack);
        }
        if let Some(rate) = text.strip_prefix("poisson:") {
            return Ok(ArrivalProcess::Poisson {
                rate_rps: parse_rate(rate)?,
            });
        }
        if let Some(rest) = text.strip_prefix("burst:") {
            let (rate, burst) = rest
                .split_once(':')
                .ok_or_else(|| format!("burst needs RATE:SIZE, got {text:?}"))?;
            let burst: usize = burst
                .parse()
                .map_err(|_| format!("bad burst size {burst:?}"))?;
            if burst == 0 {
                return Err("burst size must be at least 1".to_owned());
            }
            return Ok(ArrivalProcess::Burst {
                rate_rps: parse_rate(rate)?,
                burst,
            });
        }
        Err(format!(
            "unknown arrival process {text:?} (back-to-back | poisson:RATE | burst:RATE:SIZE)"
        ))
    }
}

/// Tunables for [`zipf_trace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Seed driving the popularity permutation and every draw.
    pub seed: u64,
    /// Number of sessions to generate.
    pub sessions: usize,
    /// Mean requests per session; actual lengths vary uniformly in
    /// `[max(1, mean/2), mean + mean/2]`.
    pub requests_per_session: usize,
    /// Zipf skew exponent `s`: popularity of the rank-`r` query is
    /// proportional to `1 / r^s`. `0.0` is uniform; `1.0` is the classic
    /// heavy skew observed in production query logs.
    pub zipf_s: f64,
    /// Arrival process stamping virtual timestamps onto the requests.
    pub arrivals: ArrivalProcess,
    /// Number of tenants sessions are spread across. `1` (the default)
    /// generates a single-tenant trace byte-identical to what pre-tenancy
    /// generators produced for the same seed.
    pub tenants: usize,
    /// Zipf skew exponent across tenants: tenant 0 is the hottest, and
    /// the share of sessions landing on tenant `t` is proportional to
    /// `1 / (t+1)^tenant_skew`. Ignored when `tenants == 1`.
    pub tenant_skew: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            seed: 0x21_1FF5,
            sessions: 32,
            requests_per_session: 8,
            zipf_s: 1.0,
            arrivals: ArrivalProcess::BackToBack,
            tenants: 1,
            tenant_skew: 1.0,
        }
    }
}

/// Converts an integer-microsecond arrival stamp into virtual seconds.
///
/// This is the *only* conversion between the wire/trace representation
/// (bit-exact integer micros) and the float timeline the admission
/// simulator runs on. Every consumer — batch replay, incremental
/// decode, the wire protocol — must go through it so a streamed trace
/// and its offline replay sit on bit-identical clocks.
pub fn arrival_us_to_seconds(us: u64) -> f64 {
    us as f64 / 1e6
}

/// One serving session: an ordered run of requests against the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSession {
    /// Stable session id (also the engine's session-state key).
    pub id: u64,
    /// Tenant this session belongs to (`0` in single-tenant traces).
    /// Every request in a session targets the same tenant's catalog.
    pub tenant: u64,
    /// Indices into [`Workload::queries`], in arrival order.
    pub query_indices: Vec<usize>,
    /// Virtual arrival timestamps in integer microseconds, one per
    /// request (empty for back-to-back traces). Integer micros — not
    /// float seconds — so a JSON round trip is bit-exact.
    pub arrival_us: Vec<u64>,
}

/// One live-catalog mutation carried by a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnOp {
    /// Register the tool this portable document describes.
    Register(ToolDoc),
    /// Retire the tool at this registry index.
    Retire(usize),
}

/// A catalog mutation pinned to a position in the canonical
/// (session-major) request order: the engine applies the op after
/// `after_requests` requests have been submitted and before the next
/// one. Pinning to the *global* request count — not a per-session offset
/// or a timestamp — is what keeps churn replays bit-identical across
/// worker counts: the boundary is a property of the deterministic
/// submission order, never of scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnEvent {
    /// How many requests (canonical order) precede this mutation.
    pub after_requests: usize,
    /// Tenant whose catalog the mutation targets (`0` in single-tenant
    /// traces). The position still counts *global* requests across all
    /// tenants — the boundary is a property of the one canonical
    /// submission order, never of per-tenant progress.
    pub tenant: u64,
    /// The mutation itself.
    pub op: ChurnOp,
}

impl ChurnEvent {
    /// Serializes the event for a trace document's `churn` array.
    pub fn to_json(&self) -> Value {
        let mut doc = match &self.op {
            ChurnOp::Register(doc) => Value::object([
                ("after_requests", Value::from(self.after_requests)),
                ("op", Value::from("register")),
                ("tool", doc.to_json()),
            ]),
            ChurnOp::Retire(id) => Value::object([
                ("after_requests", Value::from(self.after_requests)),
                ("op", Value::from("retire")),
                ("id", Value::from(*id)),
            ]),
        };
        // Additive: single-tenant events stay byte-identical to what
        // pre-tenancy writers produced.
        if self.tenant != 0 {
            doc.insert("tenant", Value::from(self.tenant as i64));
        }
        doc
    }

    /// Decodes one `churn` array entry.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field: a negative
    /// position, an op other than `register`/`retire`, a register entry
    /// without a valid tool document or a retire entry without an id.
    pub fn from_json(doc: &Value) -> Result<Self, String> {
        let after_requests = match doc.get("after_requests").and_then(Value::as_i64) {
            Some(x) if x >= 0 => x as usize,
            Some(x) => return Err(format!("churn after_requests is negative ({x})")),
            None => return Err("churn event missing after_requests".to_owned()),
        };
        let tenant = match doc.get("tenant") {
            // Pre-tenancy events: tenant 0.
            None => 0,
            Some(t) => match t.as_i64() {
                Some(t) if t >= 0 => t as u64,
                Some(t) => return Err(format!("churn tenant is negative ({t})")),
                None => return Err("churn tenant is not an integer".to_owned()),
            },
        };
        let op = doc
            .get("op")
            .and_then(Value::as_str)
            .ok_or("churn event missing op")?;
        let op = match op {
            "register" => {
                let tool = doc.get("tool").ok_or("register event missing tool")?;
                ChurnOp::Register(ToolDoc::from_json(tool).map_err(|e| e.to_string())?)
            }
            "retire" => match doc.get("id").and_then(Value::as_i64) {
                Some(id) if id >= 0 => ChurnOp::Retire(id as usize),
                Some(id) => return Err(format!("retire id is negative ({id})")),
                None => return Err("retire event missing id".to_owned()),
            },
            other => return Err(format!("unknown churn op {other:?}")),
        };
        Ok(Self {
            after_requests,
            tenant,
            op,
        })
    }
}

/// A complete load trace: what `lim serve` replays and `lim loadgen`
/// generates.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionTrace {
    /// Name of the workload the indices refer to (`"bfcl"`/`"geoengine"`).
    pub benchmark: String,
    /// Seed the trace was generated from.
    pub seed: u64,
    /// Zipf exponent used for the popularity skew.
    pub zipf_s: f64,
    /// Number of queries in the pool the indices were drawn from.
    pub pool_size: usize,
    /// Arrival process the timestamps were stamped with.
    pub arrivals: ArrivalProcess,
    /// Number of tenants the trace spans. `1` is the classic
    /// single-tenant shape (and what every pre-tenancy document means);
    /// every session's [`TraceSession::tenant`] must lie in
    /// `0..tenants`.
    pub tenants: usize,
    /// The sessions, in arrival order.
    pub sessions: Vec<TraceSession>,
    /// Live-catalog mutations interleaved with the request stream, in
    /// nondecreasing [`ChurnEvent::after_requests`] order. Empty for
    /// static-catalog traces; the JSON field is additive, so documents
    /// without it load with no churn and old readers ignore it.
    pub churn: Vec<ChurnEvent>,
}

impl SessionTrace {
    /// Total number of requests across all sessions.
    pub fn requests(&self) -> usize {
        self.sessions.iter().map(|s| s.query_indices.len()).sum()
    }

    /// Number of distinct queries referenced by the trace.
    pub fn unique_queries(&self) -> usize {
        let mut seen: Vec<usize> = self
            .sessions
            .iter()
            .flat_map(|s| s.query_indices.iter().copied())
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// All arrival timestamps in canonical (session-major) request order,
    /// converted to virtual seconds. `None` for back-to-back traces —
    /// closed-loop replays have no meaningful clock.
    pub fn arrival_seconds(&self) -> Option<Vec<f64>> {
        if self.arrivals == ArrivalProcess::BackToBack {
            return None;
        }
        Some(
            self.sessions
                .iter()
                .flat_map(|s| s.arrival_us.iter().map(|us| arrival_us_to_seconds(*us)))
                .collect(),
        )
    }

    /// Checks the arrival stamps are coherent with the declared process:
    /// back-to-back traces carry none, timed traces carry exactly one per
    /// request and they are nondecreasing in canonical order (sessions
    /// are listed in arrival order, so the global timeline must be too).
    ///
    /// # Errors
    ///
    /// Returns a description of the first incoherent session.
    pub fn validate_arrivals(&self) -> Result<(), String> {
        if self.arrivals == ArrivalProcess::BackToBack {
            if let Some(s) = self.sessions.iter().find(|s| !s.arrival_us.is_empty()) {
                return Err(format!(
                    "session {} carries arrival timestamps but the trace declares \
                     back-to-back arrivals",
                    s.id
                ));
            }
            return Ok(());
        }
        let mut last = 0u64;
        for s in &self.sessions {
            if s.arrival_us.len() != s.query_indices.len() {
                return Err(format!(
                    "session {} has {} requests but {} arrival timestamps",
                    s.id,
                    s.query_indices.len(),
                    s.arrival_us.len()
                ));
            }
            for &us in &s.arrival_us {
                if us < last {
                    return Err(format!(
                        "session {} arrival {us}us precedes an earlier request ({last}us); \
                         canonical order must be nondecreasing",
                        s.id
                    ));
                }
                last = us;
            }
        }
        Ok(())
    }

    /// Checks the tenant topology is coherent: the tenant count is at
    /// least 1, every session's tenant id lies inside `0..tenants`, and
    /// so does every churn event's target tenant.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range tenant.
    pub fn validate_tenants(&self) -> Result<(), String> {
        if self.tenants == 0 {
            return Err("trace declares zero tenants".to_owned());
        }
        for s in &self.sessions {
            if s.tenant >= self.tenants as u64 {
                return Err(format!(
                    "session {} targets tenant {} but the trace declares {} tenant(s)",
                    s.id, s.tenant, self.tenants
                ));
            }
        }
        for (i, event) in self.churn.iter().enumerate() {
            if event.tenant >= self.tenants as u64 {
                return Err(format!(
                    "churn event {i} targets tenant {} but the trace declares {} tenant(s)",
                    event.tenant, self.tenants
                ));
            }
        }
        Ok(())
    }

    /// Extracts one tenant's sessions as a standalone single-tenant
    /// trace (tenant ids reset to 0, arrival stamps preserved — a
    /// subsequence of a nondecreasing timeline is still nondecreasing).
    /// Churn is dropped: event positions count *global* requests, which
    /// have no meaning inside one tenant's sub-stream. This is the
    /// "same sub-trace" a single-tenant isolation baseline replays.
    #[must_use]
    pub fn tenant_subtrace(&self, tenant: u64) -> SessionTrace {
        SessionTrace {
            benchmark: self.benchmark.clone(),
            seed: self.seed,
            zipf_s: self.zipf_s,
            pool_size: self.pool_size,
            arrivals: self.arrivals,
            tenants: 1,
            sessions: self
                .sessions
                .iter()
                .filter(|s| s.tenant == tenant)
                .map(|s| TraceSession {
                    id: s.id,
                    tenant: 0,
                    query_indices: s.query_indices.clone(),
                    arrival_us: s.arrival_us.clone(),
                })
                .collect(),
            churn: Vec::new(),
        }
    }

    /// Checks the churn events are coherent with the request stream:
    /// positions are nondecreasing (the engine applies them in listed
    /// order while walking the canonical request sequence) and never
    /// point past the end of the trace, and every register document
    /// satisfies the [`ToolDoc::validate`] invariants. Retire indices
    /// are *not* bounds-checked here — the trace does not know the
    /// catalog size; the engine rejects an out-of-range retire when the
    /// event is applied.
    ///
    /// # Errors
    ///
    /// Returns a description of the first incoherent event.
    pub fn validate_churn(&self) -> Result<(), String> {
        let total = self.requests();
        let mut last = 0usize;
        for (i, event) in self.churn.iter().enumerate() {
            if event.after_requests < last {
                return Err(format!(
                    "churn event {i} at position {} precedes event {} at {last}; \
                     events must be listed in nondecreasing request order",
                    event.after_requests,
                    i - 1
                ));
            }
            if event.after_requests > total {
                return Err(format!(
                    "churn event {i} at position {} lies past the {total}-request trace",
                    event.after_requests
                ));
            }
            last = event.after_requests;
            if let ChurnOp::Register(doc) = &event.op {
                doc.validate()
                    .map_err(|e| format!("churn event {i}: {e}"))?;
            }
        }
        Ok(())
    }

    /// Re-stamps the trace with a different arrival process, deriving the
    /// draws deterministically from the trace seed (so replaying a v1
    /// trace with `lim serve --arrivals poisson:R` is reproducible).
    /// Query content is untouched; `BackToBack` strips all timestamps.
    ///
    /// Requesting the process the trace already carries is a no-op that
    /// keeps the existing timestamps: the re-stamp RNG is salted
    /// differently from the generation stream, so re-stamping an
    /// identical config would silently produce different timelines and
    /// make two reports with identical `arrivals` labels
    /// non-comparable.
    #[must_use]
    pub fn with_arrivals(mut self, process: ArrivalProcess) -> SessionTrace {
        if process == self.arrivals {
            return self;
        }
        // Salted so the arrival stream never aliases the generation draws.
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x0000_A441_7A1A_u64);
        stamp_arrivals(&mut self.sessions, process, &mut rng);
        self.arrivals = process;
        self
    }

    /// Serializes the trace to the `lim-workloads/trace-v1` JSON document.
    ///
    /// Arrival fields are *additive*: documents written before arrival
    /// processes existed parse as back-to-back, and old readers ignore
    /// the new fields — the schema id is unchanged.
    pub fn to_json(&self) -> Value {
        let arrivals = match self.arrivals {
            ArrivalProcess::BackToBack => Value::object([("process", Value::from("back-to-back"))]),
            ArrivalProcess::Poisson { rate_rps } => Value::object([
                ("process", Value::from("poisson")),
                ("rate_rps", Value::from(rate_rps)),
            ]),
            ArrivalProcess::Burst { rate_rps, burst } => Value::object([
                ("process", Value::from("burst")),
                ("rate_rps", Value::from(rate_rps)),
                ("burst", Value::from(burst)),
            ]),
        };
        let mut doc = Value::object([
            ("schema", Value::from("lim-workloads/trace-v1")),
            ("benchmark", Value::from(self.benchmark.as_str())),
            ("seed", Value::from(self.seed as i64)),
            ("zipf_s", Value::from(self.zipf_s)),
            ("pool_size", Value::from(self.pool_size)),
            ("arrivals", arrivals),
            (
                "sessions",
                self.sessions
                    .iter()
                    .map(|s| {
                        let mut session = Value::object([
                            ("id", Value::from(s.id as i64)),
                            (
                                "queries",
                                s.query_indices.iter().map(|q| Value::from(*q)).collect(),
                            ),
                        ]);
                        // Additive, like arrivals: tenant-0 sessions are
                        // byte-identical to pre-tenancy documents.
                        if s.tenant != 0 {
                            session.insert("tenant", Value::from(s.tenant as i64));
                        }
                        if !s.arrival_us.is_empty() {
                            session.insert(
                                "arrivals_us",
                                s.arrival_us
                                    .iter()
                                    .map(|us| Value::from(*us as i64))
                                    .collect(),
                            );
                        }
                        session
                    })
                    .collect(),
            ),
        ]);
        // Additive: single-tenant documents omit the tenant count, so
        // they stay byte-identical to what pre-tenancy writers produced.
        if self.tenants > 1 {
            doc.insert("tenants", Value::from(self.tenants));
        }
        // Additive, like the arrival fields: static-catalog documents
        // stay byte-identical to what pre-churn writers produced.
        if !self.churn.is_empty() {
            doc.insert(
                "churn",
                self.churn.iter().map(ChurnEvent::to_json).collect(),
            );
        }
        doc
    }

    /// Largest query pool a trace document may declare — a sanity bound
    /// so a corrupt `pool_size` cannot drive callers into generating a
    /// near-unbounded workload.
    pub const MAX_POOL_SIZE: usize = 1_000_000;

    /// Parses a `lim-workloads/trace-v1` document.
    ///
    /// Documents written before arrival processes existed (no `arrivals`
    /// object, no per-session `arrivals_us`) load as back-to-back traces
    /// — the closed-loop semantics they were generated under.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field;
    /// negative counts/ids/indices and pool sizes beyond
    /// [`SessionTrace::MAX_POOL_SIZE`] are malformed, every query index
    /// must lie inside the declared pool, and arrival timestamps must be
    /// coherent with the declared process (see
    /// [`SessionTrace::validate_arrivals`]).
    pub fn from_json(doc: &Value) -> Result<Self, String> {
        let schema = doc
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema")?;
        if schema != "lim-workloads/trace-v1" {
            return Err(format!("unsupported trace schema {schema:?}"));
        }
        let non_negative = |field: &'static str, v: Option<i64>| -> Result<u64, String> {
            match v {
                Some(x) if x >= 0 => Ok(x as u64),
                Some(x) => Err(format!("{field} is negative ({x})")),
                None => Err(format!("missing {field}")),
            }
        };
        let benchmark = doc
            .get("benchmark")
            .and_then(Value::as_str)
            .ok_or("missing benchmark")?
            .to_owned();
        let seed = non_negative("seed", doc.get("seed").and_then(Value::as_i64))?;
        let zipf_s = doc
            .get("zipf_s")
            .and_then(Value::as_f64)
            .ok_or("missing zipf_s")?;
        let pool_size =
            non_negative("pool_size", doc.get("pool_size").and_then(Value::as_i64))? as usize;
        if pool_size > Self::MAX_POOL_SIZE {
            return Err(format!(
                "pool_size {pool_size} exceeds the {} sanity bound",
                Self::MAX_POOL_SIZE
            ));
        }
        let arrivals = match doc.get("arrivals") {
            // Pre-arrival documents: closed-loop replay.
            None => ArrivalProcess::BackToBack,
            Some(spec) => {
                let process = spec
                    .get("process")
                    .and_then(Value::as_str)
                    .ok_or("arrivals object missing process")?;
                let rate = || -> Result<f64, String> {
                    let rate = spec
                        .get("rate_rps")
                        .and_then(Value::as_f64)
                        .ok_or("arrivals missing rate_rps")?;
                    if rate > 0.0 && rate.is_finite() {
                        Ok(rate)
                    } else {
                        Err(format!("arrival rate_rps must be positive, got {rate}"))
                    }
                };
                match process {
                    "back-to-back" => ArrivalProcess::BackToBack,
                    "poisson" => ArrivalProcess::Poisson { rate_rps: rate()? },
                    "burst" => {
                        let burst =
                            non_negative("burst", spec.get("burst").and_then(Value::as_i64))?
                                as usize;
                        if burst == 0 {
                            return Err("burst size must be at least 1".to_owned());
                        }
                        ArrivalProcess::Burst {
                            rate_rps: rate()?,
                            burst,
                        }
                    }
                    other => return Err(format!("unknown arrival process {other:?}")),
                }
            }
        };
        let sessions = doc
            .get("sessions")
            .and_then(Value::as_array)
            .ok_or("missing sessions")?
            .iter()
            .map(|s| {
                let id = non_negative("session id", s.get("id").and_then(Value::as_i64))?;
                let tenant = match s.get("tenant") {
                    // Pre-tenancy sessions: tenant 0.
                    None => 0,
                    Some(t) => non_negative("session tenant", t.as_i64())?,
                };
                let query_indices = s
                    .get("queries")
                    .and_then(Value::as_array)
                    .ok_or("missing session queries")?
                    .iter()
                    .map(|q| {
                        let index = non_negative("query index", q.as_i64())? as usize;
                        if index >= pool_size {
                            return Err(format!(
                                "query index {index} outside the {pool_size}-query pool"
                            ));
                        }
                        Ok(index)
                    })
                    .collect::<Result<Vec<usize>, String>>()?;
                let arrival_us = match s.get("arrivals_us") {
                    None => Vec::new(),
                    Some(list) => list
                        .as_array()
                        .ok_or("session arrivals_us is not an array")?
                        .iter()
                        .map(|us| non_negative("arrival timestamp", us.as_i64()))
                        .collect::<Result<Vec<u64>, String>>()?,
                };
                Ok(TraceSession {
                    id,
                    tenant,
                    query_indices,
                    arrival_us,
                })
            })
            .collect::<Result<Vec<TraceSession>, String>>()?;
        let churn = match doc.get("churn") {
            // Pre-churn documents: static catalog.
            None => Vec::new(),
            Some(list) => list
                .as_array()
                .ok_or("churn is not an array")?
                .iter()
                .map(ChurnEvent::from_json)
                .collect::<Result<Vec<ChurnEvent>, String>>()?,
        };
        let tenants = match doc.get("tenants") {
            // Pre-tenancy documents: one tenant.
            None => 1,
            Some(t) => {
                let t = non_negative("tenants", t.as_i64())? as usize;
                if t == 0 {
                    return Err("trace declares zero tenants".to_owned());
                }
                t
            }
        };
        let trace = Self {
            benchmark,
            seed,
            zipf_s,
            pool_size,
            arrivals,
            tenants,
            sessions,
            churn,
        };
        trace.validate_tenants()?;
        trace.validate_arrivals()?;
        trace.validate_churn()?;
        Ok(trace)
    }
}

/// Incremental [`SessionTrace`] assembly: the streaming counterpart of
/// [`SessionTrace::from_json`].
///
/// A batch decoder needs the whole document before it can validate
/// anything; an ingestion front-end sees a header first and then one
/// request at a time. `TraceBuilder` accepts exactly that shape — the
/// header fields up front, then [`TraceBuilder::push`] per arriving
/// request — and enforces the same invariants `from_json` does, at the
/// moment they become checkable: pool bounds and arrival coherence per
/// push, so a malformed stream is rejected on the offending request
/// instead of at the end.
///
/// Requests for the same session id extend the current session while it
/// is the *most recent* one; a request for any other id starts a new
/// session. This matches canonical session-major trace order, where each
/// session is one contiguous run.
///
/// # Examples
///
/// ```
/// use lim_workloads::trace::{ArrivalProcess, TraceBuilder};
///
/// let mut b = TraceBuilder::new("bfcl", 7, 1.0, 60, ArrivalProcess::BackToBack).unwrap();
/// b.push(0, 3, None).unwrap();
/// b.push(0, 5, None).unwrap();
/// b.push(1, 3, None).unwrap();
/// let trace = b.finish();
/// assert_eq!(trace.sessions.len(), 2);
/// assert_eq!(trace.requests(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    trace: SessionTrace,
    last_us: u64,
}

impl TraceBuilder {
    /// Starts a trace from its header fields.
    ///
    /// # Errors
    ///
    /// Rejects a `pool_size` beyond [`SessionTrace::MAX_POOL_SIZE`] —
    /// the same sanity bound `from_json` applies.
    pub fn new(
        benchmark: &str,
        seed: u64,
        zipf_s: f64,
        pool_size: usize,
        arrivals: ArrivalProcess,
    ) -> Result<Self, String> {
        if pool_size > SessionTrace::MAX_POOL_SIZE {
            return Err(format!(
                "pool_size {pool_size} exceeds the {} sanity bound",
                SessionTrace::MAX_POOL_SIZE
            ));
        }
        Ok(Self {
            trace: SessionTrace {
                benchmark: benchmark.to_owned(),
                seed,
                zipf_s,
                pool_size,
                arrivals,
                tenants: 1,
                sessions: Vec::new(),
                churn: Vec::new(),
            },
            last_us: 0,
        })
    }

    /// Declares the tenant count for a multi-tenant stream. Requests
    /// pushed with [`TraceBuilder::push_for`] must target tenants in
    /// `0..tenants`.
    ///
    /// # Errors
    ///
    /// Rejects a zero tenant count.
    pub fn with_tenants(mut self, tenants: usize) -> Result<Self, String> {
        if tenants == 0 {
            return Err("trace needs at least one tenant".to_owned());
        }
        self.trace.tenants = tenants;
        Ok(self)
    }

    /// Appends one request to the trace under assembly.
    ///
    /// # Errors
    ///
    /// Rejects a query index outside the declared pool, an arrival
    /// timestamp on a back-to-back trace, a missing timestamp on a timed
    /// trace, and a timestamp that decreases below an earlier request's
    /// — the per-request forms of the [`SessionTrace::validate_arrivals`]
    /// invariants.
    pub fn push(
        &mut self,
        session: u64,
        query_index: usize,
        arrival_us: Option<u64>,
    ) -> Result<(), String> {
        self.push_for(0, session, query_index, arrival_us)
    }

    /// Appends one request for a specific tenant — the multi-tenant form
    /// of [`TraceBuilder::push`]. A request extends the most recent
    /// session only when both the session id *and* the tenant match;
    /// anything else starts a new session run.
    ///
    /// # Errors
    ///
    /// Everything [`TraceBuilder::push`] rejects, plus a tenant id at or
    /// beyond the declared tenant count.
    pub fn push_for(
        &mut self,
        tenant: u64,
        session: u64,
        query_index: usize,
        arrival_us: Option<u64>,
    ) -> Result<(), String> {
        if tenant >= self.trace.tenants as u64 {
            return Err(format!(
                "request targets tenant {tenant} but the trace declares {} tenant(s)",
                self.trace.tenants
            ));
        }
        if query_index >= self.trace.pool_size {
            return Err(format!(
                "query index {query_index} outside the {}-query pool",
                self.trace.pool_size
            ));
        }
        let open_loop = self.trace.arrivals != ArrivalProcess::BackToBack;
        let us = match (open_loop, arrival_us) {
            (false, None) => None,
            (false, Some(us)) => {
                return Err(format!(
                    "request carries arrival timestamp {us}us but the trace declares \
                     back-to-back arrivals"
                ));
            }
            (true, None) => {
                return Err(format!(
                    "trace declares {} arrivals but the request carries no timestamp",
                    self.trace.arrivals.label()
                ));
            }
            (true, Some(us)) => {
                if us < self.last_us {
                    return Err(format!(
                        "arrival {us}us precedes an earlier request ({}us); \
                         canonical order must be nondecreasing",
                        self.last_us
                    ));
                }
                self.last_us = us;
                Some(us)
            }
        };
        match self.trace.sessions.last_mut() {
            Some(current) if current.id == session && current.tenant == tenant => {
                current.query_indices.push(query_index);
                current.arrival_us.extend(us);
            }
            _ => self.trace.sessions.push(TraceSession {
                id: session,
                tenant,
                query_indices: vec![query_index],
                arrival_us: us.into_iter().collect(),
            }),
        }
        Ok(())
    }

    /// Records a live tool registration at the current stream position:
    /// the engine will apply it after every request pushed so far and
    /// before the next one. Positions are nondecreasing by construction,
    /// so the result always satisfies [`SessionTrace::validate_churn`].
    ///
    /// # Errors
    ///
    /// Rejects a document violating [`ToolDoc::validate`] — the same
    /// check the batch decoder applies per `churn` entry.
    pub fn push_register(&mut self, doc: ToolDoc) -> Result<(), String> {
        self.push_register_for(0, doc)
    }

    /// Records a live tool registration against a specific tenant's
    /// catalog — the multi-tenant form of
    /// [`TraceBuilder::push_register`].
    ///
    /// # Errors
    ///
    /// Rejects an out-of-range tenant or a document violating
    /// [`ToolDoc::validate`].
    pub fn push_register_for(&mut self, tenant: u64, doc: ToolDoc) -> Result<(), String> {
        if tenant >= self.trace.tenants as u64 {
            return Err(format!(
                "register targets tenant {tenant} but the trace declares {} tenant(s)",
                self.trace.tenants
            ));
        }
        doc.validate().map_err(|e| e.to_string())?;
        self.trace.churn.push(ChurnEvent {
            after_requests: self.trace.requests(),
            tenant,
            op: ChurnOp::Register(doc),
        });
        Ok(())
    }

    /// Records a live tool retirement at the current stream position.
    /// The index is not bounds-checked here — the builder does not know
    /// the catalog size (see [`SessionTrace::validate_churn`]); the
    /// engine rejects an out-of-range retire when the event is applied.
    pub fn push_retire(&mut self, index: usize) {
        self.trace.churn.push(ChurnEvent {
            after_requests: self.trace.requests(),
            tenant: 0,
            op: ChurnOp::Retire(index),
        });
    }

    /// Records a live tool retirement against a specific tenant's
    /// catalog — the multi-tenant form of [`TraceBuilder::push_retire`].
    ///
    /// # Errors
    ///
    /// Rejects an out-of-range tenant.
    pub fn push_retire_for(&mut self, tenant: u64, index: usize) -> Result<(), String> {
        if tenant >= self.trace.tenants as u64 {
            return Err(format!(
                "retire targets tenant {tenant} but the trace declares {} tenant(s)",
                self.trace.tenants
            ));
        }
        self.trace.churn.push(ChurnEvent {
            after_requests: self.trace.requests(),
            tenant,
            op: ChurnOp::Retire(index),
        });
        Ok(())
    }

    /// Total requests pushed so far.
    pub fn requests(&self) -> usize {
        self.trace.requests()
    }

    /// Finishes assembly. Every invariant was enforced per push, so this
    /// cannot fail; the result satisfies
    /// [`SessionTrace::validate_arrivals`] by construction.
    pub fn finish(self) -> SessionTrace {
        debug_assert!(self.trace.validate_tenants().is_ok());
        debug_assert!(self.trace.validate_arrivals().is_ok());
        debug_assert!(self.trace.validate_churn().is_ok());
        self.trace
    }
}

/// Draws ranks `0..n` with probability proportional to `1/(rank+1)^s`.
///
/// The cumulative weight table is precomputed, so a draw is one uniform
/// sample plus a binary search — O(log n) per request.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s` (`s == 0` is
    /// uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf sampler needs a non-empty pool");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be finite");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Self { cumulative }
    }

    /// Samples one rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty pool");
        let x = rng.random::<f64>() * total;
        // First rank whose cumulative weight exceeds the draw. The clamp
        // covers the one-in-2^53 draw where `x` rounds up to exactly
        // `total` and the partition point lands one past the last rank.
        self.cumulative
            .partition_point(|c| *c <= x)
            .min(self.cumulative.len() - 1)
    }
}

/// One exponential inter-arrival gap with mean `1 / rate` (inverse-CDF;
/// `1 - u` lies in `(0, 1]` so the log stays finite).
fn exp_gap(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.random();
    -(1.0 - u).ln() / rate
}

/// Stamps `process` arrival timestamps onto `sessions` in canonical
/// (session-major) order. Timestamps are accumulated in f64 seconds and
/// rounded to integer microseconds, so the stored sequence stays
/// nondecreasing. `BackToBack` strips all timestamps.
fn stamp_arrivals(sessions: &mut [TraceSession], process: ArrivalProcess, rng: &mut StdRng) {
    let total: usize = sessions.iter().map(|s| s.query_indices.len()).sum();
    let mut times = Vec::with_capacity(total);
    match process {
        ArrivalProcess::BackToBack => {
            for s in sessions {
                s.arrival_us.clear();
            }
            return;
        }
        ArrivalProcess::Poisson { rate_rps } => {
            let mut t = 0.0f64;
            for _ in 0..total {
                t += exp_gap(rng, rate_rps);
                times.push(t);
            }
        }
        ArrivalProcess::Burst { rate_rps, burst } => {
            let burst = burst.max(1);
            let mut t = 0.0f64;
            while times.len() < total {
                // Group gaps at rate/burst keep the long-run rate.
                t += exp_gap(rng, rate_rps / burst as f64);
                for _ in 0..burst.min(total - times.len()) {
                    times.push(t);
                }
            }
        }
    }
    let mut it = times.into_iter();
    for s in sessions {
        s.arrival_us = s
            .query_indices
            .iter()
            .map(|_| (it.next().expect("one timestamp per request") * 1e6).round() as u64)
            .collect();
    }
}

/// Salt decoupling the tenant-assignment RNG stream from the content
/// draws: single-tenant generation never touches it, so `tenants: 1`
/// traces stay byte-identical to what pre-tenancy generators produced.
const TENANT_STREAM_SALT: u64 = 0x0000_7E4A_4E57;

/// Generates a Zipf-skewed session trace over `workload.queries`.
///
/// Popularity rank is decoupled from query id by a seeded permutation, so
/// the "hot" queries are a stable but arbitrary subset of the pool rather
/// than always the first few indices. Arrival timestamps (if the config
/// asks for an open-loop process) are drawn *after* all content draws,
/// so the same seed yields identical query sequences under every arrival
/// process — timed and closed-loop replays stay comparable.
///
/// With `tenants > 1` each session lands on a tenant drawn from a
/// second Zipf distribution (`tenant_skew`; tenant 0 is the hottest) on
/// a *salted* RNG stream, and each tenant's hot set is rotated through
/// the pool so distinct tenants favour distinct queries — Zipf across
/// tenants × Zipf within tenant. `tenants == 1` draws nothing extra:
/// the trace is byte-identical to the single-tenant output for the same
/// seed.
///
/// # Panics
///
/// Panics if the workload has no evaluation queries or the config asks
/// for zero sessions or zero tenants.
pub fn zipf_trace(workload: &Workload, config: &TraceConfig) -> SessionTrace {
    let pool = workload.queries.len();
    assert!(pool > 0, "workload has no queries to trace");
    assert!(config.sessions > 0, "trace needs at least one session");
    assert!(config.tenants > 0, "trace needs at least one tenant");
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Seeded Fisher–Yates permutation: rank -> query index.
    let mut rank_to_query: Vec<usize> = (0..pool).collect();
    for i in (1..pool).rev() {
        let j = rng.random_range(0..=i);
        rank_to_query.swap(i, j);
    }

    let sampler = ZipfSampler::new(pool, config.zipf_s);
    let mean = config.requests_per_session.max(1);
    let lo = (mean / 2).max(1);
    let hi = mean + mean / 2;
    let mut sessions: Vec<TraceSession> = (0..config.sessions as u64)
        .map(|id| {
            let len = rng.random_range(lo..=hi);
            let query_indices = (0..len)
                .map(|_| rank_to_query[sampler.sample(&mut rng)])
                .collect();
            TraceSession {
                id,
                tenant: 0,
                query_indices,
                arrival_us: Vec::new(),
            }
        })
        .collect();
    if config.tenants > 1 {
        // Tenant draws come from their own salted stream, applied after
        // all content draws: adding tenants re-colours and rotates the
        // same underlying session content instead of reshuffling it.
        let mut tenant_rng = StdRng::seed_from_u64(config.seed ^ TENANT_STREAM_SALT);
        let tenant_sampler = ZipfSampler::new(config.tenants, config.tenant_skew);
        // Rotating each tenant's indices through the pool gives every
        // tenant its own hot set, so per-tenant cache behaviour is
        // genuinely disjoint rather than N copies of one working set.
        let stride = (pool / config.tenants).max(1);
        for s in &mut sessions {
            let tenant = tenant_sampler.sample(&mut tenant_rng) as u64;
            s.tenant = tenant;
            for q in &mut s.query_indices {
                *q = (*q + tenant as usize * stride) % pool;
            }
        }
    }
    stamp_arrivals(&mut sessions, config.arrivals, &mut rng);
    SessionTrace {
        benchmark: workload.name.to_owned(),
        seed: config.seed,
        zipf_s: config.zipf_s,
        pool_size: pool,
        arrivals: config.arrivals,
        tenants: config.tenants,
        sessions,
        churn: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfcl;

    #[test]
    fn trace_is_deterministic_per_seed() {
        let w = bfcl(3, 50);
        let config = TraceConfig {
            seed: 11,
            ..TraceConfig::default()
        };
        assert_eq!(zipf_trace(&w, &config), zipf_trace(&w, &config));
        let other = zipf_trace(&w, &TraceConfig { seed: 12, ..config });
        assert_ne!(zipf_trace(&w, &config), other);
    }

    #[test]
    fn session_lengths_bracket_the_mean() {
        let w = bfcl(4, 40);
        let config = TraceConfig {
            seed: 5,
            sessions: 40,
            requests_per_session: 8,
            ..TraceConfig::default()
        };
        let trace = zipf_trace(&w, &config);
        assert_eq!(trace.sessions.len(), 40);
        for s in &trace.sessions {
            assert!((4..=12).contains(&s.query_indices.len()));
        }
        for s in &trace.sessions {
            for q in &s.query_indices {
                assert!(*q < w.queries.len());
            }
        }
    }

    #[test]
    fn zipf_skew_concentrates_mass_on_few_queries() {
        let w = bfcl(6, 100);
        let skewed = zipf_trace(
            &w,
            &TraceConfig {
                seed: 9,
                sessions: 64,
                requests_per_session: 8,
                zipf_s: 1.2,
                ..TraceConfig::default()
            },
        );
        let uniform = zipf_trace(
            &w,
            &TraceConfig {
                seed: 9,
                sessions: 64,
                requests_per_session: 8,
                zipf_s: 0.0,
                ..TraceConfig::default()
            },
        );
        assert!(
            skewed.unique_queries() < uniform.unique_queries(),
            "skewed {} vs uniform {}",
            skewed.unique_queries(),
            uniform.unique_queries()
        );
    }

    #[test]
    fn zipf_sampler_rank_zero_is_most_popular() {
        let sampler = ZipfSampler::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 50];
        for _ in 0..5_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let max = counts.iter().copied().max().unwrap();
        assert_eq!(counts[0], max, "rank 0 must dominate: {counts:?}");
        assert!(counts[0] > 5 * counts[40].max(1));
    }

    #[test]
    fn json_round_trip_preserves_the_trace() {
        let w = bfcl(8, 30);
        let trace = zipf_trace(
            &w,
            &TraceConfig {
                seed: 21,
                sessions: 6,
                requests_per_session: 4,
                ..TraceConfig::default()
            },
        );
        let text = trace.to_json().to_string();
        let doc = lim_json::parse(&text).expect("valid JSON");
        let back = SessionTrace::from_json(&doc).expect("well-formed trace");
        assert_eq!(trace, back);
    }

    #[test]
    fn malformed_trace_documents_are_rejected() {
        let doc = lim_json::parse(r#"{"schema":"lim-workloads/trace-v9"}"#).unwrap();
        assert!(SessionTrace::from_json(&doc).is_err());
        let doc = lim_json::parse(r#"{"schema":"lim-workloads/trace-v1"}"#).unwrap();
        assert!(SessionTrace::from_json(&doc).is_err());
    }

    /// Satellite regression: a v1 document written before arrival
    /// processes existed (no `arrivals` object, no `arrivals_us`) must
    /// still load — as a back-to-back trace — and survive a round trip.
    #[test]
    fn pre_arrival_v1_documents_load_as_back_to_back() {
        let text = r#"{"schema":"lim-workloads/trace-v1","benchmark":"bfcl","seed":3,
                       "zipf_s":1.0,"pool_size":10,
                       "sessions":[{"id":0,"queries":[1,2]},{"id":1,"queries":[3]}]}"#;
        let trace = SessionTrace::from_json(&lim_json::parse(text).unwrap()).expect("v1 loads");
        assert_eq!(trace.arrivals, ArrivalProcess::BackToBack);
        assert!(trace.sessions.iter().all(|s| s.arrival_us.is_empty()));
        assert!(trace.arrival_seconds().is_none());
        // Round trip through the writer (which now emits the arrivals
        // object explicitly) preserves the trace.
        let doc = lim_json::parse(&trace.to_json().to_string()).unwrap();
        assert_eq!(SessionTrace::from_json(&doc).unwrap(), trace);
    }

    #[test]
    fn timed_traces_round_trip_bit_exactly() {
        let w = bfcl(8, 30);
        for arrivals in [
            ArrivalProcess::Poisson { rate_rps: 2.5 },
            ArrivalProcess::Burst {
                rate_rps: 8.0,
                burst: 4,
            },
        ] {
            let trace = zipf_trace(
                &w,
                &TraceConfig {
                    seed: 21,
                    sessions: 6,
                    requests_per_session: 4,
                    zipf_s: 1.0,
                    arrivals,
                    ..TraceConfig::default()
                },
            );
            assert_eq!(trace.arrivals, arrivals);
            trace
                .validate_arrivals()
                .expect("generator stamps coherently");
            let doc = lim_json::parse(&trace.to_json().to_string()).expect("valid JSON");
            assert_eq!(SessionTrace::from_json(&doc).expect("parses"), trace);
        }
    }

    #[test]
    fn poisson_arrivals_match_the_requested_rate() {
        let w = bfcl(2, 80);
        let rate = 4.0;
        let trace = zipf_trace(
            &w,
            &TraceConfig {
                seed: 5,
                sessions: 64,
                requests_per_session: 8,
                zipf_s: 0.0,
                arrivals: ArrivalProcess::Poisson { rate_rps: rate },
                ..TraceConfig::default()
            },
        );
        let arrivals = trace.arrival_seconds().expect("timed");
        let n = arrivals.len();
        let empirical = n as f64 / arrivals.last().copied().unwrap_or(1.0);
        assert!(
            (empirical / rate - 1.0).abs() < 0.25,
            "empirical rate {empirical:.2} vs requested {rate}"
        );
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn burst_arrivals_share_timestamps_within_a_group() {
        let w = bfcl(2, 40);
        let trace = zipf_trace(
            &w,
            &TraceConfig {
                seed: 6,
                sessions: 16,
                requests_per_session: 8,
                zipf_s: 0.0,
                arrivals: ArrivalProcess::Burst {
                    rate_rps: 10.0,
                    burst: 8,
                },
                ..TraceConfig::default()
            },
        );
        let arrivals: Vec<u64> = trace
            .sessions
            .iter()
            .flat_map(|s| s.arrival_us.iter().copied())
            .collect();
        // Bursts of 8 share a timestamp: distinct timestamps ≈ total / 8.
        let mut distinct = arrivals.clone();
        distinct.dedup();
        assert!(
            distinct.len() <= arrivals.len() / 4,
            "{} distinct timestamps over {} requests is not bursty",
            distinct.len(),
            arrivals.len()
        );
    }

    #[test]
    fn with_arrivals_restamps_deterministically_and_strips() {
        let w = bfcl(4, 30);
        let base = zipf_trace(&w, &TraceConfig::default());
        let timed = base
            .clone()
            .with_arrivals(ArrivalProcess::Poisson { rate_rps: 3.0 });
        assert_eq!(
            timed,
            base.clone()
                .with_arrivals(ArrivalProcess::Poisson { rate_rps: 3.0 })
        );
        // Content untouched; only timestamps differ.
        for (a, b) in base.sessions.iter().zip(&timed.sessions) {
            assert_eq!(a.query_indices, b.query_indices);
        }
        timed.validate_arrivals().expect("coherent");
        let stripped = timed.clone().with_arrivals(ArrivalProcess::BackToBack);
        assert_eq!(stripped, base);
        // Requesting the process already carried keeps the existing
        // timestamps (the re-stamp RNG differs from the generation
        // stream, so anything else would silently change the timeline).
        let generated = zipf_trace(
            &w,
            &TraceConfig {
                arrivals: ArrivalProcess::Poisson { rate_rps: 3.0 },
                ..TraceConfig::default()
            },
        );
        assert_eq!(
            generated
                .clone()
                .with_arrivals(ArrivalProcess::Poisson { rate_rps: 3.0 }),
            generated
        );
    }

    #[test]
    fn incoherent_arrival_stamps_are_rejected() {
        let w = bfcl(4, 30);
        let timed = zipf_trace(
            &w,
            &TraceConfig {
                arrivals: ArrivalProcess::Poisson { rate_rps: 2.0 },
                ..TraceConfig::default()
            },
        );
        // Count mismatch.
        let mut short = timed.clone();
        short.sessions[0].arrival_us.pop();
        assert!(short.validate_arrivals().unwrap_err().contains("requests"));
        // Non-monotone canonical order.
        let mut unordered = timed.clone();
        let last = unordered.sessions.len() - 1;
        unordered.sessions[last].arrival_us[0] = 0;
        assert!(unordered
            .validate_arrivals()
            .unwrap_err()
            .contains("nondecreasing"));
        // Timestamps on a back-to-back trace.
        let mut phantom = zipf_trace(&w, &TraceConfig::default());
        phantom.sessions[0].arrival_us = vec![1; phantom.sessions[0].query_indices.len()];
        assert!(phantom
            .validate_arrivals()
            .unwrap_err()
            .contains("back-to-back"));
        // The parser applies the same validation.
        let doc = lim_json::parse(&short.to_json().to_string()).unwrap();
        assert!(SessionTrace::from_json(&doc).is_err());
    }

    #[test]
    fn arrival_specs_parse_and_label_round_trip() {
        for spec in ["back-to-back", "poisson:2.5", "burst:8:16"] {
            let process = ArrivalProcess::parse(spec).expect("valid spec");
            assert_eq!(process.label(), spec);
        }
        for bad in [
            "poisson",
            "poisson:0",
            "poisson:-1",
            "poisson:abc",
            "burst:2",
            "burst:2:0",
            "burst:0:4",
            "uniform:3",
        ] {
            assert!(ArrivalProcess::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn malformed_arrival_documents_are_rejected() {
        let base = r#"{"schema":"lim-workloads/trace-v1","benchmark":"bfcl","seed":1,
                       "zipf_s":1.0,"pool_size":10,"arrivals":ARR,
                       "sessions":[{"id":0,"queries":[3],"arrivals_us":[5]}]}"#;
        let parse = |arr: &str| {
            let text = base.replace("ARR", arr);
            SessionTrace::from_json(&lim_json::parse(&text).unwrap())
        };
        assert!(parse(r#"{"process":"poisson","rate_rps":2.0}"#).is_ok());
        assert!(parse(r#"{"process":"warp"}"#)
            .unwrap_err()
            .contains("unknown"));
        assert!(parse(r#"{"process":"poisson"}"#)
            .unwrap_err()
            .contains("rate_rps"));
        assert!(parse(r#"{"process":"poisson","rate_rps":-2.0}"#)
            .unwrap_err()
            .contains("positive"));
        assert!(parse(r#"{"process":"burst","rate_rps":2.0}"#)
            .unwrap_err()
            .contains("burst"));
        assert!(parse(r#"{"process":"burst","rate_rps":2.0,"burst":0}"#)
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn corrupt_numeric_fields_are_rejected() {
        let base = r#"{"schema":"lim-workloads/trace-v1","benchmark":"bfcl","seed":1,
                       "zipf_s":1.0,"pool_size":POOL,
                       "sessions":[{"id":ID,"queries":[Q]}]}"#;
        let parse = |pool: &str, id: &str, q: &str| {
            let text = base.replace("POOL", pool).replace("ID", id).replace("Q", q);
            SessionTrace::from_json(&lim_json::parse(&text).unwrap())
        };
        assert!(parse("10", "0", "3").is_ok());
        let negative_pool = parse("-1", "0", "3").unwrap_err();
        assert!(negative_pool.contains("negative"), "{negative_pool}");
        assert!(parse("99999999999", "0", "3")
            .unwrap_err()
            .contains("sanity bound"));
        assert!(parse("10", "-4", "3").unwrap_err().contains("negative"));
        assert!(parse("10", "0", "-2").unwrap_err().contains("negative"));
        // Out-of-pool indices are caught at parse time, before any
        // workload is built from the declared pool size.
        assert!(parse("10", "0", "10").unwrap_err().contains("outside"));
    }

    fn live_doc(n: usize) -> ToolDoc {
        ToolDoc::new(
            format!("live_probe_{n}"),
            "live",
            format!("synthetic live-catalog probe number {n}"),
        )
    }

    #[test]
    fn churn_round_trips_through_json() {
        let w = bfcl(3, 40);
        let mut trace = zipf_trace(
            &w,
            &TraceConfig {
                seed: 9,
                ..TraceConfig::default()
            },
        );
        trace.churn = vec![
            ChurnEvent {
                after_requests: 0,
                tenant: 0,
                op: ChurnOp::Register(live_doc(0)),
            },
            ChurnEvent {
                after_requests: 3,
                tenant: 0,
                op: ChurnOp::Retire(7),
            },
            ChurnEvent {
                after_requests: 3,
                tenant: 0,
                op: ChurnOp::Register(live_doc(1)),
            },
        ];
        let text = trace.to_json().to_string();
        let back = SessionTrace::from_json(&lim_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, trace);
        // Static-catalog traces carry no churn member at all.
        trace.churn.clear();
        assert!(trace.to_json().get("churn").is_none());
    }

    #[test]
    fn malformed_churn_is_rejected() {
        let w = bfcl(3, 40);
        let base = zipf_trace(
            &w,
            &TraceConfig {
                seed: 9,
                ..TraceConfig::default()
            },
        );
        let reject = |churn: Vec<ChurnEvent>, needle: &str| {
            let mut t = base.clone();
            t.churn = churn;
            let doc = t.to_json();
            let err = SessionTrace::from_json(&doc).unwrap_err();
            assert!(err.contains(needle), "{err}");
        };
        // Events listed out of canonical order.
        reject(
            vec![
                ChurnEvent {
                    after_requests: 5,
                    tenant: 0,
                    op: ChurnOp::Retire(0),
                },
                ChurnEvent {
                    after_requests: 2,
                    tenant: 0,
                    op: ChurnOp::Retire(1),
                },
            ],
            "nondecreasing",
        );
        // An event past the end of the request stream.
        reject(
            vec![ChurnEvent {
                after_requests: base.requests() + 1,
                tenant: 0,
                op: ChurnOp::Retire(0),
            }],
            "past",
        );
        // Structurally corrupt event documents.
        let corrupt = [
            r#"{"op":"register","tool":{"name":"x","category":"c","description":"d","params":[]}}"#,
            r#"{"after_requests":1,"op":"rename","id":3}"#,
            r#"{"after_requests":1,"op":"retire","id":-3}"#,
            r#"{"after_requests":1,"op":"retire"}"#,
            r#"{"after_requests":1,"op":"register"}"#,
            r#"{"after_requests":1,"op":"register","tool":{"name":""}}"#,
        ];
        for text in corrupt {
            let doc = lim_json::parse(text).unwrap();
            assert!(ChurnEvent::from_json(&doc).is_err(), "{text}");
        }
    }

    #[test]
    fn single_tenant_traces_are_unchanged_by_the_tenant_axis() {
        let w = bfcl(3, 50);
        let config = TraceConfig {
            seed: 11,
            ..TraceConfig::default()
        };
        let trace = zipf_trace(&w, &config);
        assert_eq!(trace.tenants, 1);
        assert!(trace.sessions.iter().all(|s| s.tenant == 0));
        // Explicit `tenants: 1` draws nothing from the tenant stream, so
        // the trace (and its JSON) is identical to the default.
        let explicit = zipf_trace(
            &w,
            &TraceConfig {
                tenants: 1,
                ..config
            },
        );
        assert_eq!(trace, explicit);
        let text = trace.to_json().to_string();
        assert!(!text.contains("tenant"), "single-tenant JSON stays clean");
    }

    #[test]
    fn tenant_assignment_is_skewed_rotated_and_deterministic() {
        let w = bfcl(6, 100);
        let config = TraceConfig {
            seed: 9,
            sessions: 64,
            tenants: 8,
            tenant_skew: 1.2,
            ..TraceConfig::default()
        };
        let trace = zipf_trace(&w, &config);
        assert_eq!(trace, zipf_trace(&w, &config));
        assert_eq!(trace.tenants, 8);
        trace.validate_tenants().expect("generator stays in range");
        // Tenant 0 is the hottest rank of the cross-tenant Zipf.
        let sessions_of = |t: u64| trace.sessions.iter().filter(|s| s.tenant == t).count();
        let max = (0..8).map(sessions_of).max().unwrap();
        assert_eq!(sessions_of(0), max, "tenant 0 must dominate");
        // Adding tenants re-colours and rotates the same content: the
        // single-tenant trace's sessions have the same lengths.
        let single = zipf_trace(
            &w,
            &TraceConfig {
                tenants: 1,
                ..config
            },
        );
        for (a, b) in trace.sessions.iter().zip(&single.sessions) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.query_indices.len(), b.query_indices.len());
        }
        // Distinct tenants favour distinct hot sets (rotation applied).
        let hot = |t: u64| -> Vec<usize> {
            let mut qs: Vec<usize> = trace
                .sessions
                .iter()
                .filter(|s| s.tenant == t)
                .flat_map(|s| s.query_indices.iter().copied())
                .collect();
            qs.sort_unstable();
            qs.dedup();
            qs
        };
        assert_ne!(hot(0), hot(1), "tenants must not share one hot set");
    }

    #[test]
    fn multi_tenant_traces_round_trip_and_validate() {
        let w = bfcl(6, 60);
        let mut trace = zipf_trace(
            &w,
            &TraceConfig {
                seed: 4,
                sessions: 12,
                tenants: 3,
                tenant_skew: 1.0,
                arrivals: ArrivalProcess::Poisson { rate_rps: 5.0 },
                ..TraceConfig::default()
            },
        );
        trace.churn = vec![ChurnEvent {
            after_requests: 2,
            tenant: 2,
            op: ChurnOp::Register(live_doc(0)),
        }];
        let doc = lim_json::parse(&trace.to_json().to_string()).unwrap();
        assert_eq!(SessionTrace::from_json(&doc).unwrap(), trace);
        // Out-of-range session tenant is rejected by the parser.
        let mut bad = trace.clone();
        bad.sessions[0].tenant = 3;
        let err = SessionTrace::from_json(&bad.to_json()).unwrap_err();
        assert!(err.contains("tenant"), "{err}");
        // Out-of-range churn tenant likewise.
        let mut bad = trace.clone();
        bad.churn[0].tenant = 9;
        let err = SessionTrace::from_json(&bad.to_json()).unwrap_err();
        assert!(err.contains("tenant"), "{err}");
        // A zero tenant count is malformed outright.
        let mut doc = trace.to_json();
        doc.insert("tenants", lim_json::Value::from(0));
        assert!(SessionTrace::from_json(&doc)
            .unwrap_err()
            .contains("zero tenants"));
    }

    #[test]
    fn tenant_subtrace_extracts_one_tenant_coherently() {
        let w = bfcl(6, 60);
        let trace = zipf_trace(
            &w,
            &TraceConfig {
                seed: 13,
                sessions: 24,
                tenants: 4,
                tenant_skew: 1.2,
                arrivals: ArrivalProcess::Poisson { rate_rps: 8.0 },
                ..TraceConfig::default()
            },
        );
        let sub = trace.tenant_subtrace(1);
        assert_eq!(sub.tenants, 1);
        assert!(sub.sessions.iter().all(|s| s.tenant == 0));
        assert_eq!(
            sub.sessions.len(),
            trace.sessions.iter().filter(|s| s.tenant == 1).count()
        );
        sub.validate_arrivals().expect("subsequence stays ordered");
        sub.validate_tenants().expect("reset to tenant 0");
    }

    #[test]
    fn builder_enforces_tenant_bounds() {
        let b = TraceBuilder::new("bfcl", 7, 1.0, 60, ArrivalProcess::BackToBack).unwrap();
        let mut b = b.with_tenants(2).unwrap();
        b.push_for(1, 5, 3, None).unwrap();
        b.push_for(1, 5, 4, None).unwrap();
        // Same session id under a different tenant starts a new run.
        b.push_for(0, 5, 3, None).unwrap();
        assert!(b.push_for(2, 6, 3, None).is_err());
        b.push_register_for(1, live_doc(0)).unwrap();
        assert!(b.push_register_for(7, live_doc(1)).is_err());
        b.push_retire_for(0, 4).unwrap();
        assert!(b.push_retire_for(3, 4).is_err());
        let trace = b.finish();
        assert_eq!(trace.sessions.len(), 2);
        assert_eq!(trace.sessions[0].tenant, 1);
        assert_eq!(trace.sessions[0].query_indices.len(), 2);
        assert_eq!(trace.sessions[1].tenant, 0);
        assert_eq!(trace.churn.len(), 2);
        assert_eq!(trace.churn[0].tenant, 1);
        assert!(
            TraceBuilder::new("bfcl", 7, 1.0, 60, ArrivalProcess::BackToBack)
                .unwrap()
                .with_tenants(0)
                .is_err()
        );
    }

    #[test]
    fn builder_records_churn_at_the_current_position() {
        let mut b = TraceBuilder::new("bfcl", 7, 1.0, 60, ArrivalProcess::BackToBack).unwrap();
        b.push_register(live_doc(0)).unwrap();
        b.push(0, 3, None).unwrap();
        b.push(0, 5, None).unwrap();
        b.push_retire(4);
        b.push(1, 3, None).unwrap();
        let trace = b.finish();
        assert_eq!(trace.churn.len(), 2);
        assert_eq!(trace.churn[0].after_requests, 0);
        assert_eq!(trace.churn[1].after_requests, 2);
        assert!(trace.validate_churn().is_ok());
        // An invalid document is rejected at push time.
        let mut b = TraceBuilder::new("bfcl", 7, 1.0, 60, ArrivalProcess::BackToBack).unwrap();
        assert!(b.push_register(ToolDoc::new("", "c", "d")).is_err());
    }
}
