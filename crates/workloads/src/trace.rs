//! Session traces with Zipf-distributed query popularity.
//!
//! A deployed edge assistant does not see a cold batch of unique queries:
//! it serves a long-lived stream of *sessions*, and query popularity is
//! heavily skewed — a handful of requests ("what's the weather", "convert
//! currency") dominate the stream. This module turns a [`Workload`]'s
//! evaluation pool into exactly that shape: a [`SessionTrace`] of
//! sessions, each a run of requests whose query indices are drawn from a
//! Zipf distribution over the pool.
//!
//! Everything is deterministic per [`TraceConfig::seed`]: the popularity
//! ranking (a seeded permutation of the pool), the per-session lengths and
//! the per-request draws all derive from one `StdRng` stream, so the same
//! config always produces the same trace — on any machine, for any
//! consumer worker count.
//!
//! # Examples
//!
//! ```
//! use lim_workloads::{bfcl, trace::{zipf_trace, TraceConfig}};
//!
//! let w = bfcl(7, 60);
//! let trace = zipf_trace(&w, &TraceConfig { seed: 1, ..TraceConfig::default() });
//! assert_eq!(trace.sessions.len(), 32);
//! assert!(trace.requests() > 0);
//! let again = zipf_trace(&w, &TraceConfig { seed: 1, ..TraceConfig::default() });
//! assert_eq!(trace, again);
//! ```

use lim_json::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::query::Workload;

/// Tunables for [`zipf_trace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Seed driving the popularity permutation and every draw.
    pub seed: u64,
    /// Number of sessions to generate.
    pub sessions: usize,
    /// Mean requests per session; actual lengths vary uniformly in
    /// `[max(1, mean/2), mean + mean/2]`.
    pub requests_per_session: usize,
    /// Zipf skew exponent `s`: popularity of the rank-`r` query is
    /// proportional to `1 / r^s`. `0.0` is uniform; `1.0` is the classic
    /// heavy skew observed in production query logs.
    pub zipf_s: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            seed: 0x21_1FF5,
            sessions: 32,
            requests_per_session: 8,
            zipf_s: 1.0,
        }
    }
}

/// One serving session: an ordered run of requests against the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSession {
    /// Stable session id (also the engine's session-state key).
    pub id: u64,
    /// Indices into [`Workload::queries`], in arrival order.
    pub query_indices: Vec<usize>,
}

/// A complete load trace: what `lim serve` replays and `lim loadgen`
/// generates.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionTrace {
    /// Name of the workload the indices refer to (`"bfcl"`/`"geoengine"`).
    pub benchmark: String,
    /// Seed the trace was generated from.
    pub seed: u64,
    /// Zipf exponent used for the popularity skew.
    pub zipf_s: f64,
    /// Number of queries in the pool the indices were drawn from.
    pub pool_size: usize,
    /// The sessions, in arrival order.
    pub sessions: Vec<TraceSession>,
}

impl SessionTrace {
    /// Total number of requests across all sessions.
    pub fn requests(&self) -> usize {
        self.sessions.iter().map(|s| s.query_indices.len()).sum()
    }

    /// Number of distinct queries referenced by the trace.
    pub fn unique_queries(&self) -> usize {
        let mut seen: Vec<usize> = self
            .sessions
            .iter()
            .flat_map(|s| s.query_indices.iter().copied())
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Serializes the trace to the `lim-workloads/trace-v1` JSON document.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("schema", Value::from("lim-workloads/trace-v1")),
            ("benchmark", Value::from(self.benchmark.as_str())),
            ("seed", Value::from(self.seed as i64)),
            ("zipf_s", Value::from(self.zipf_s)),
            ("pool_size", Value::from(self.pool_size)),
            (
                "sessions",
                self.sessions
                    .iter()
                    .map(|s| {
                        Value::object([
                            ("id", Value::from(s.id as i64)),
                            (
                                "queries",
                                s.query_indices.iter().map(|q| Value::from(*q)).collect(),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ])
    }

    /// Largest query pool a trace document may declare — a sanity bound
    /// so a corrupt `pool_size` cannot drive callers into generating a
    /// near-unbounded workload.
    pub const MAX_POOL_SIZE: usize = 1_000_000;

    /// Parses a `lim-workloads/trace-v1` document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field;
    /// negative counts/ids/indices and pool sizes beyond
    /// [`SessionTrace::MAX_POOL_SIZE`] are malformed, and every query
    /// index must lie inside the declared pool.
    pub fn from_json(doc: &Value) -> Result<Self, String> {
        let schema = doc
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema")?;
        if schema != "lim-workloads/trace-v1" {
            return Err(format!("unsupported trace schema {schema:?}"));
        }
        let non_negative = |field: &'static str, v: Option<i64>| -> Result<u64, String> {
            match v {
                Some(x) if x >= 0 => Ok(x as u64),
                Some(x) => Err(format!("{field} is negative ({x})")),
                None => Err(format!("missing {field}")),
            }
        };
        let benchmark = doc
            .get("benchmark")
            .and_then(Value::as_str)
            .ok_or("missing benchmark")?
            .to_owned();
        let seed = non_negative("seed", doc.get("seed").and_then(Value::as_i64))?;
        let zipf_s = doc
            .get("zipf_s")
            .and_then(Value::as_f64)
            .ok_or("missing zipf_s")?;
        let pool_size =
            non_negative("pool_size", doc.get("pool_size").and_then(Value::as_i64))? as usize;
        if pool_size > Self::MAX_POOL_SIZE {
            return Err(format!(
                "pool_size {pool_size} exceeds the {} sanity bound",
                Self::MAX_POOL_SIZE
            ));
        }
        let sessions = doc
            .get("sessions")
            .and_then(Value::as_array)
            .ok_or("missing sessions")?
            .iter()
            .map(|s| {
                let id = non_negative("session id", s.get("id").and_then(Value::as_i64))?;
                let query_indices = s
                    .get("queries")
                    .and_then(Value::as_array)
                    .ok_or("missing session queries")?
                    .iter()
                    .map(|q| {
                        let index = non_negative("query index", q.as_i64())? as usize;
                        if index >= pool_size {
                            return Err(format!(
                                "query index {index} outside the {pool_size}-query pool"
                            ));
                        }
                        Ok(index)
                    })
                    .collect::<Result<Vec<usize>, String>>()?;
                Ok(TraceSession { id, query_indices })
            })
            .collect::<Result<Vec<TraceSession>, String>>()?;
        Ok(Self {
            benchmark,
            seed,
            zipf_s,
            pool_size,
            sessions,
        })
    }
}

/// Draws ranks `0..n` with probability proportional to `1/(rank+1)^s`.
///
/// The cumulative weight table is precomputed, so a draw is one uniform
/// sample plus a binary search — O(log n) per request.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s` (`s == 0` is
    /// uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf sampler needs a non-empty pool");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be finite");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Self { cumulative }
    }

    /// Samples one rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty pool");
        let x = rng.random::<f64>() * total;
        // First rank whose cumulative weight exceeds the draw. The clamp
        // covers the one-in-2^53 draw where `x` rounds up to exactly
        // `total` and the partition point lands one past the last rank.
        self.cumulative
            .partition_point(|c| *c <= x)
            .min(self.cumulative.len() - 1)
    }
}

/// Generates a Zipf-skewed session trace over `workload.queries`.
///
/// Popularity rank is decoupled from query id by a seeded permutation, so
/// the "hot" queries are a stable but arbitrary subset of the pool rather
/// than always the first few indices.
///
/// # Panics
///
/// Panics if the workload has no evaluation queries or the config asks
/// for zero sessions.
pub fn zipf_trace(workload: &Workload, config: &TraceConfig) -> SessionTrace {
    let pool = workload.queries.len();
    assert!(pool > 0, "workload has no queries to trace");
    assert!(config.sessions > 0, "trace needs at least one session");
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Seeded Fisher–Yates permutation: rank -> query index.
    let mut rank_to_query: Vec<usize> = (0..pool).collect();
    for i in (1..pool).rev() {
        let j = rng.random_range(0..=i);
        rank_to_query.swap(i, j);
    }

    let sampler = ZipfSampler::new(pool, config.zipf_s);
    let mean = config.requests_per_session.max(1);
    let lo = (mean / 2).max(1);
    let hi = mean + mean / 2;
    let sessions = (0..config.sessions as u64)
        .map(|id| {
            let len = rng.random_range(lo..=hi);
            let query_indices = (0..len)
                .map(|_| rank_to_query[sampler.sample(&mut rng)])
                .collect();
            TraceSession { id, query_indices }
        })
        .collect();
    SessionTrace {
        benchmark: workload.name.to_owned(),
        seed: config.seed,
        zipf_s: config.zipf_s,
        pool_size: pool,
        sessions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfcl;

    #[test]
    fn trace_is_deterministic_per_seed() {
        let w = bfcl(3, 50);
        let config = TraceConfig {
            seed: 11,
            ..TraceConfig::default()
        };
        assert_eq!(zipf_trace(&w, &config), zipf_trace(&w, &config));
        let other = zipf_trace(&w, &TraceConfig { seed: 12, ..config });
        assert_ne!(zipf_trace(&w, &config), other);
    }

    #[test]
    fn session_lengths_bracket_the_mean() {
        let w = bfcl(4, 40);
        let config = TraceConfig {
            seed: 5,
            sessions: 40,
            requests_per_session: 8,
            zipf_s: 1.0,
        };
        let trace = zipf_trace(&w, &config);
        assert_eq!(trace.sessions.len(), 40);
        for s in &trace.sessions {
            assert!((4..=12).contains(&s.query_indices.len()));
        }
        for s in &trace.sessions {
            for q in &s.query_indices {
                assert!(*q < w.queries.len());
            }
        }
    }

    #[test]
    fn zipf_skew_concentrates_mass_on_few_queries() {
        let w = bfcl(6, 100);
        let skewed = zipf_trace(
            &w,
            &TraceConfig {
                seed: 9,
                sessions: 64,
                requests_per_session: 8,
                zipf_s: 1.2,
            },
        );
        let uniform = zipf_trace(
            &w,
            &TraceConfig {
                seed: 9,
                sessions: 64,
                requests_per_session: 8,
                zipf_s: 0.0,
            },
        );
        assert!(
            skewed.unique_queries() < uniform.unique_queries(),
            "skewed {} vs uniform {}",
            skewed.unique_queries(),
            uniform.unique_queries()
        );
    }

    #[test]
    fn zipf_sampler_rank_zero_is_most_popular() {
        let sampler = ZipfSampler::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 50];
        for _ in 0..5_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let max = counts.iter().copied().max().unwrap();
        assert_eq!(counts[0], max, "rank 0 must dominate: {counts:?}");
        assert!(counts[0] > 5 * counts[40].max(1));
    }

    #[test]
    fn json_round_trip_preserves_the_trace() {
        let w = bfcl(8, 30);
        let trace = zipf_trace(
            &w,
            &TraceConfig {
                seed: 21,
                sessions: 6,
                requests_per_session: 4,
                zipf_s: 1.0,
            },
        );
        let text = trace.to_json().to_string();
        let doc = lim_json::parse(&text).expect("valid JSON");
        let back = SessionTrace::from_json(&doc).expect("well-formed trace");
        assert_eq!(trace, back);
    }

    #[test]
    fn malformed_trace_documents_are_rejected() {
        let doc = lim_json::parse(r#"{"schema":"lim-workloads/trace-v9"}"#).unwrap();
        assert!(SessionTrace::from_json(&doc).is_err());
        let doc = lim_json::parse(r#"{"schema":"lim-workloads/trace-v1"}"#).unwrap();
        assert!(SessionTrace::from_json(&doc).is_err());
    }

    #[test]
    fn corrupt_numeric_fields_are_rejected() {
        let base = r#"{"schema":"lim-workloads/trace-v1","benchmark":"bfcl","seed":1,
                       "zipf_s":1.0,"pool_size":POOL,
                       "sessions":[{"id":ID,"queries":[Q]}]}"#;
        let parse = |pool: &str, id: &str, q: &str| {
            let text = base.replace("POOL", pool).replace("ID", id).replace("Q", q);
            SessionTrace::from_json(&lim_json::parse(&text).unwrap())
        };
        assert!(parse("10", "0", "3").is_ok());
        let negative_pool = parse("-1", "0", "3").unwrap_err();
        assert!(negative_pool.contains("negative"), "{negative_pool}");
        assert!(parse("99999999999", "0", "3")
            .unwrap_err()
            .contains("sanity bound"));
        assert!(parse("10", "-4", "3").unwrap_err().contains("negative"));
        assert!(parse("10", "0", "-2").unwrap_err().contains("negative"));
        // Out-of-pool indices are caught at parse time, before any
        // workload is built from the declared pool size.
        assert!(parse("10", "0", "10").unwrap_err().contains("outside"));
    }
}
