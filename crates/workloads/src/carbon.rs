//! Seeded deterministic carbon-intensity traces.
//!
//! CarbonCall-style serving (PAPERS.md, arxiv 2504.20348) modulates
//! service decisions by the *carbon intensity* of the grid powering the
//! device — grams of CO₂ emitted per kWh drawn, which swings over a day
//! as the generation mix shifts. Real intensity feeds are neither
//! reproducible nor available offline, so serving experiments use this
//! synthetic substitute: a day-long (86 400 s) profile built from a
//! typical diurnal template — overnight trough, morning ramp, midday
//! solar dip, evening peak — sampled at five-minute resolution with
//! seeded multiplicative jitter.
//!
//! Everything is deterministic: the same seed yields the same trace, and
//! sampling uses only piecewise-linear interpolation and an integer hash
//! (no trigonometry, no floating-point library variance), so
//! [`CarbonTrace::intensity_at`] is bit-stable across platforms and
//! worker counts. Traces are sampled at **virtual** time and wrap modulo
//! the day length.

/// Seconds in one trace day.
pub const DAY_SECONDS: f64 = 86_400.0;

/// Five-minute sample slots per day.
const SLOTS: usize = 288;

/// Seconds per sample slot.
const SLOT_SECONDS: f64 = DAY_SECONDS / SLOTS as f64;

/// Hourly template of grid carbon intensity, g CO₂ / kWh. A composite of
/// published European day curves: wind-heavy trough after midnight, a
/// steep morning ramp as demand outpaces renewables, a solar-driven
/// midday dip, and the evening peak when solar drops out before demand
/// does.
const HOURLY_TEMPLATE: [f64; 24] = [
    320.0, 305.0, 295.0, 290.0, 292.0, 310.0, // 00–05: overnight trough
    345.0, 390.0, 420.0, 405.0, 370.0, 330.0, // 06–11: morning ramp, solar rising
    300.0, 285.0, 280.0, 290.0, 315.0, 360.0, // 12–17: midday dip, afternoon climb
    430.0, 465.0, 450.0, 415.0, 375.0, 340.0, // 18–23: evening peak, wind-down
];

/// Fractional jitter amplitude applied per slot (±10%).
const JITTER: f64 = 0.10;

/// Converts g CO₂ / kWh to g CO₂ / J (1 kWh = 3.6 MJ).
pub const GRAMS_PER_KWH_TO_GRAMS_PER_JOULE: f64 = 1.0 / 3.6e6;

/// A day-long, seeded, five-minute-resolution carbon-intensity profile.
#[derive(Debug, Clone, PartialEq)]
pub struct CarbonTrace {
    seed: u64,
    slots: Vec<f64>,
}

impl CarbonTrace {
    /// Builds the trace for `seed`.
    ///
    /// Each five-minute slot takes the piecewise-linear interpolation of
    /// the hourly template at the slot midpoint, scaled by a seeded
    /// multiplicative jitter in `[1 − 0.1, 1 + 0.1)`.
    pub fn new(seed: u64) -> Self {
        let slots = (0..SLOTS)
            .map(|slot| {
                let midpoint_h = (slot as f64 + 0.5) * SLOT_SECONDS / 3600.0;
                let base = interpolate_template(midpoint_h);
                let unit = splitmix64(seed ^ (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                // Map the hash to [-1, 1) deterministically.
                let centered = (unit >> 11) as f64 / (1u64 << 52) as f64 - 1.0;
                base * (1.0 + JITTER * centered)
            })
            .collect();
        Self { seed, slots }
    }

    /// The seed this trace was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Grid carbon intensity at virtual time `t_s` seconds, g CO₂ / kWh.
    ///
    /// Time wraps modulo the day; negative or non-finite times read slot
    /// zero.
    pub fn intensity_at(&self, t_s: f64) -> f64 {
        if !t_s.is_finite() || t_s < 0.0 {
            return self.slots[0];
        }
        let wrapped = t_s % DAY_SECONDS;
        let slot = ((wrapped / SLOT_SECONDS) as usize).min(SLOTS - 1);
        self.slots[slot]
    }

    /// Grid carbon intensity at `t_s`, in g CO₂ per **joule** — the unit
    /// energy accounting multiplies request joules by.
    pub fn grams_per_joule_at(&self, t_s: f64) -> f64 {
        self.intensity_at(t_s) * GRAMS_PER_KWH_TO_GRAMS_PER_JOULE
    }
}

/// Piecewise-linear interpolation of [`HOURLY_TEMPLATE`] at hour `h`
/// (wrapping hour 23 back to hour 0).
fn interpolate_template(h: f64) -> f64 {
    let lo = (h as usize) % 24;
    let hi = (lo + 1) % 24;
    let frac = h - h.floor();
    HOURLY_TEMPLATE[lo] * (1.0 - frac) + HOURLY_TEMPLATE[hi] * frac
}

/// SplitMix64 finaliser — the workspace's standard seeded hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_is_bitwise_identical() {
        let a = CarbonTrace::new(7);
        let b = CarbonTrace::new(7);
        for t in [0.0, 1.5, 3600.0, 43_200.0, 86_399.9, 200_000.0] {
            assert_eq!(
                a.intensity_at(t).to_bits(),
                b.intensity_at(t).to_bits(),
                "t = {t}"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = CarbonTrace::new(1);
        let b = CarbonTrace::new(2);
        assert!((0..288).any(|s| {
            let t = s as f64 * 300.0;
            a.intensity_at(t) != b.intensity_at(t)
        }));
    }

    #[test]
    fn intensity_stays_within_jittered_template_band() {
        let trace = CarbonTrace::new(42);
        for slot in 0..288 {
            let v = trace.intensity_at(slot as f64 * 300.0);
            assert!((280.0 * 0.9..=465.0 * 1.1).contains(&v), "slot {slot}: {v}");
        }
    }

    #[test]
    fn evening_peak_exceeds_overnight_trough() {
        let trace = CarbonTrace::new(0);
        let trough = trace.intensity_at(3.5 * 3600.0); // 03:30
        let peak = trace.intensity_at(19.5 * 3600.0); // 19:30
        assert!(peak > 1.2 * trough, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn time_wraps_modulo_the_day() {
        let trace = CarbonTrace::new(9);
        assert_eq!(
            trace.intensity_at(1234.0).to_bits(),
            trace.intensity_at(1234.0 + DAY_SECONDS).to_bits()
        );
    }

    #[test]
    fn degenerate_times_read_slot_zero() {
        let trace = CarbonTrace::new(3);
        let slot0 = trace.intensity_at(0.0);
        assert_eq!(trace.intensity_at(-5.0).to_bits(), slot0.to_bits());
        assert_eq!(trace.intensity_at(f64::NAN).to_bits(), slot0.to_bits());
        assert_eq!(trace.intensity_at(f64::INFINITY).to_bits(), slot0.to_bits());
    }

    #[test]
    fn grams_per_joule_is_the_kwh_conversion() {
        let trace = CarbonTrace::new(5);
        let t = 7.0 * 3600.0;
        let expected = trace.intensity_at(t) / 3.6e6;
        assert!((trace.grams_per_joule_at(t) - expected).abs() < 1e-18);
    }
}
