//! Value pools that fill query-template slots with realistic data.
//!
//! Each pool draws a display string plus the JSON value a gold call should
//! carry for that slot, keeping query text and gold arguments consistent.

use lim_json::Value;
use rand::rngs::StdRng;
use rand::Rng;

/// A typed source of slot values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pool {
    /// World cities.
    City,
    /// Countries.
    Country,
    /// Geographic regions used by the GeoEngine-style tools.
    Region,
    /// Years 1990–2023.
    Year,
    /// Seasons.
    Season,
    /// ISO-ish dates.
    Date,
    /// Monetary amounts.
    Amount,
    /// Small positive integers (1–30).
    SmallInt,
    /// ISO currency codes.
    CurrencyCode,
    /// Natural languages.
    Language,
    /// Short free-text phrases (for translation/sentiment inputs).
    Phrase,
    /// Stock tickers.
    Ticker,
    /// Sports teams.
    Team,
    /// Athlete names.
    Player,
    /// Length units.
    LengthUnit,
    /// Mass units.
    MassUnit,
    /// Temperature units.
    TempUnit,
    /// Chemical formulas.
    Molecule,
    /// Planet names.
    Planet,
    /// Gene symbols.
    Gene,
    /// URLs.
    Url,
    /// Street addresses.
    Address,
    /// Satellite sensors.
    Sensor,
    /// Remote-sensing dataset names.
    Dataset,
    /// Email addresses.
    Email,
    /// Visual questions for VQA tools.
    VisualQuestion,
    /// Object classes detectable in imagery.
    ObjectClass,
}

macro_rules! pick {
    ($rng:expr, $options:expr) => {{
        let opts = $options;
        opts[$rng.random_range(0..opts.len())]
    }};
}

impl Pool {
    /// Draws `(display_text, json_value)` from the pool.
    pub fn sample(self, rng: &mut StdRng) -> (String, Value) {
        match self {
            Pool::City => str_sample(
                rng,
                &[
                    "London", "Paris", "New York", "Tokyo", "Berlin", "Madrid", "Chicago",
                    "Toronto", "Sydney", "Mumbai", "Cairo", "Seoul",
                ],
            ),
            Pool::Country => str_sample(
                rng,
                &[
                    "France", "Japan", "Brazil", "Canada", "Kenya", "Norway", "India", "Mexico",
                    "Italy", "Egypt",
                ],
            ),
            Pool::Region => str_sample(
                rng,
                &[
                    "UK",
                    "California",
                    "Bavaria",
                    "Normandy",
                    "Kyushu",
                    "Patagonia",
                    "Sahel",
                    "Great Lakes",
                    "Nile Delta",
                    "Po Valley",
                ],
            ),
            Pool::Year => {
                let y = rng.random_range(1990..=2023);
                (y.to_string(), Value::from(y as i64))
            }
            Pool::Season => str_sample(rng, &["Spring", "Summer", "Fall", "Winter"]),
            Pool::Date => {
                let y = rng.random_range(2015..=2024);
                let m = rng.random_range(1..=12);
                let d = rng.random_range(1..=28);
                let s = format!("{y:04}-{m:02}-{d:02}");
                (s.clone(), Value::from(s))
            }
            Pool::Amount => {
                let a = f64::from(rng.random_range(5..=5000));
                (format!("{a:.0}"), Value::from(a))
            }
            Pool::SmallInt => {
                let n = rng.random_range(1..=30);
                (n.to_string(), Value::from(n as i64))
            }
            Pool::CurrencyCode => str_sample(rng, &["USD", "EUR", "GBP", "JPY", "CHF", "INR"]),
            Pool::Language => str_sample(
                rng,
                &[
                    "French",
                    "German",
                    "Spanish",
                    "Japanese",
                    "Arabic",
                    "Portuguese",
                ],
            ),
            Pool::Phrase => str_sample(
                rng,
                &[
                    "the shipment arrives on Tuesday",
                    "this product exceeded my expectations",
                    "the meeting was postponed again",
                    "what a wonderful performance",
                    "the service was disappointingly slow",
                ],
            ),
            Pool::Ticker => str_sample(rng, &["AAPL", "MSFT", "NVDA", "TSLA", "AMZN", "GOOG"]),
            Pool::Team => str_sample(
                rng,
                &[
                    "Lakers",
                    "Warriors",
                    "Yankees",
                    "Liverpool",
                    "Ajax",
                    "Packers",
                ],
            ),
            Pool::Player => str_sample(
                rng,
                &[
                    "Jordan Alvarez",
                    "Mia Chen",
                    "Luka Petrov",
                    "Sara Haddad",
                    "Kenji Mori",
                ],
            ),
            Pool::LengthUnit => str_sample(rng, &["meters", "feet", "miles", "kilometers"]),
            Pool::MassUnit => str_sample(rng, &["kilograms", "pounds", "ounces", "grams"]),
            Pool::TempUnit => str_sample(rng, &["celsius", "fahrenheit", "kelvin"]),
            Pool::Molecule => str_sample(rng, &["H2O", "C6H12O6", "NaCl", "CO2", "CH4"]),
            Pool::Planet => str_sample(rng, &["Mars", "Venus", "Jupiter", "Saturn", "Neptune"]),
            Pool::Gene => str_sample(rng, &["BRCA1", "TP53", "EGFR", "MYC", "KRAS"]),
            Pool::Url => str_sample(
                rng,
                &[
                    "https://example.com/research/paper",
                    "https://data.example.org/catalog",
                    "https://news.example.net/article/42",
                ],
            ),
            Pool::Address => str_sample(
                rng,
                &[
                    "221B Baker Street, London",
                    "1600 Amphitheatre Parkway, Mountain View",
                    "4 Rue de Rivoli, Paris",
                ],
            ),
            Pool::Sensor => str_sample(rng, &["Sentinel-2", "Landsat-8", "MODIS", "WorldView-3"]),
            Pool::Dataset => str_sample(rng, &["fmow", "xView", "SpaceNet", "BigEarthNet"]),
            Pool::Email => str_sample(
                rng,
                &[
                    "analyst@example.com",
                    "ops-team@example.org",
                    "report@example.net",
                ],
            ),
            Pool::VisualQuestion => str_sample(
                rng,
                &[
                    "how many vehicles are visible",
                    "is there a runway in the scene",
                    "what type of crops are growing",
                    "are the buildings residential or industrial",
                ],
            ),
            Pool::ObjectClass => str_sample(
                rng,
                &[
                    "ships",
                    "aircraft",
                    "vehicles",
                    "buildings",
                    "storage tanks",
                ],
            ),
        }
    }
}

fn str_sample(rng: &mut StdRng, options: &[&str]) -> (String, Value) {
    let s = pick!(rng, options);
    (s.to_owned(), Value::from(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for pool in [Pool::City, Pool::Year, Pool::Amount, Pool::Date] {
            assert_eq!(pool.sample(&mut a), pool.sample(&mut b));
        }
    }

    #[test]
    fn display_and_value_agree_for_strings() {
        let mut rng = StdRng::seed_from_u64(3);
        let (display, value) = Pool::City.sample(&mut rng);
        assert_eq!(value.as_str(), Some(display.as_str()));
    }

    #[test]
    fn numeric_pools_produce_numbers() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(Pool::Year.sample(&mut rng).1.as_i64().is_some());
        assert!(Pool::Amount.sample(&mut rng).1.as_f64().is_some());
        assert!(Pool::SmallInt.sample(&mut rng).1.as_i64().is_some());
    }

    #[test]
    fn year_range_is_plausible() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let y = Pool::Year.sample(&mut rng).1.as_i64().unwrap();
            assert!((1990..=2023).contains(&y));
        }
    }
}
