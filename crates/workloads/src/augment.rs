//! Query augmentation — the GPT-4 Turbo substitute (§III-A).
//!
//! The paper follows ToolQA: sample ~10 training queries per benchmark
//! category and ask GPT-4 to "generate queries with contextually proximate
//! tasks and their respective solutions" — e.g. a query that *opened* a
//! document becomes one that *prints* it. Factual correctness is
//! explicitly unimportant; the generated queries are "noisy" material
//! whose only job is to make co-used tools co-occur, and their quality is
//! gated by a ROUGE similarity score.
//!
//! This module reproduces that pipeline with three deterministic
//! permutation operators (paraphrase, slot mutation, tail-tool swap) and
//! the same ROUGE-L acceptance band: too similar means redundant, too
//! different means off-topic — both are rejected.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lim_cluster::rouge::rouge_l;

use crate::query::{Query, Workload};

/// One augmented ("noisy") query, carrying the tool chain of its solution.
#[derive(Debug, Clone, PartialEq)]
pub struct AugmentedQuery {
    /// Generated query text (embedded into the augmented latent space Ã).
    pub text: String,
    /// Tools of the generated solution — the co-usage signal clustering
    /// must recover.
    pub tools: Vec<String>,
    /// Id of the training query this variant was derived from.
    pub source_id: u64,
}

/// Configuration of the augmentation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmentConfig {
    /// Training queries sampled per category (the paper uses 10).
    pub per_category: usize,
    /// Candidate variants generated per sampled query.
    pub variants_per_query: usize,
    /// Minimum ROUGE-L F1 versus the source (below = off-topic, rejected).
    pub rouge_min: f64,
    /// Maximum ROUGE-L F1 versus the source (above = redundant, rejected).
    pub rouge_max: f64,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        Self {
            per_category: 10,
            variants_per_query: 3,
            rouge_min: 0.2,
            rouge_max: 0.92,
            seed: 0xA06_5EED,
        }
    }
}

/// Verb/phrase paraphrase table applied word-wise (GPT's lexical drift).
const SYNONYMS: &[(&str, &str)] = &[
    ("plot", "draw"),
    ("generate", "produce"),
    ("render", "draw"),
    ("measure", "compute"),
    ("find", "locate"),
    ("convert", "change"),
    ("detect", "spot"),
    ("map", "chart"),
    ("email", "send"),
    ("build", "assemble"),
    ("report", "summary"),
    ("show", "display"),
    ("get", "fetch"),
    ("list", "enumerate"),
    ("search", "look"),
    ("save", "store"),
    ("tell", "inform"),
];

/// Runs the augmentation pass over the workload's training split.
///
/// Returns the accepted variants; rejected candidates (outside the ROUGE
/// band) are silently dropped, mirroring the paper's quality gate.
pub fn augment(workload: &Workload, config: &AugmentConfig) -> Vec<AugmentedQuery> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::new();
    for category in categories(&workload.train_queries) {
        let sampled = sample_category(
            &workload.train_queries,
            &category,
            config.per_category,
            &mut rng,
        );
        for query in sampled {
            for _ in 0..config.variants_per_query {
                let candidate = permute(query, workload, &mut rng);
                let score = rouge_l(&candidate.text, &query.text).f1 as f64;
                if score >= config.rouge_min && score <= config.rouge_max {
                    out.push(candidate);
                }
            }
        }
    }
    out
}

fn categories(queries: &[Query]) -> Vec<String> {
    let mut seen: Vec<String> = Vec::new();
    for q in queries {
        if !seen.contains(&q.category) {
            seen.push(q.category.clone());
        }
    }
    seen
}

fn sample_category<'a>(
    queries: &'a [Query],
    category: &str,
    limit: usize,
    rng: &mut StdRng,
) -> Vec<&'a Query> {
    let mut pool: Vec<&Query> = queries.iter().filter(|q| q.category == category).collect();
    // Fisher–Yates prefix shuffle for an unbiased sample.
    let take = limit.min(pool.len());
    for i in 0..take {
        let j = rng.random_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(take);
    pool
}

fn permute(query: &Query, workload: &Workload, rng: &mut StdRng) -> AugmentedQuery {
    let mut tools: Vec<String> = query.steps.iter().map(|s| s.tool.clone()).collect();
    let mut text = paraphrase(&query.text, rng);

    // Tail-tool swap: the paper's motivating permutation ("open the
    // document" → "print it instead"). Replace the final tool with a
    // same-category consumer and say so in the text.
    if query.steps.len() >= 2 && rng.random::<f64>() < 0.5 {
        if let Some(new_tool) = swap_candidate(workload, tools.last().expect("non-empty"), rng) {
            text = format!("{text}, but {} instead", new_tool.replace('_', " "));
            *tools.last_mut().expect("non-empty") = new_tool;
        }
    }

    // Light word dropout: GPT permutations rarely preserve every token.
    let kept: Vec<&str> = text
        .split_whitespace()
        .filter(|_| rng.random::<f64>() > 0.06)
        .collect();
    if !kept.is_empty() {
        text = kept.join(" ");
    }

    AugmentedQuery {
        text,
        tools,
        source_id: query.id,
    }
}

fn paraphrase(text: &str, rng: &mut StdRng) -> String {
    text.split_whitespace()
        .map(|word| {
            let trimmed = word.trim_matches(|c: char| !c.is_alphanumeric());
            let lower = trimmed.to_lowercase();
            for (from, to) in SYNONYMS {
                if lower == *from && rng.random::<f64>() < 0.7 {
                    return word.replace(trimmed, to);
                }
            }
            word.to_owned()
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Picks a same-category replacement for `tool` that can consume upstream
/// output (has a `source` parameter).
fn swap_candidate(workload: &Workload, tool: &str, rng: &mut StdRng) -> Option<String> {
    let spec = workload.registry.get_by_name(tool)?;
    let category = spec.category();
    let candidates: Vec<&str> = workload
        .registry
        .iter()
        .filter(|t| {
            t.category() == category
                && t.name() != tool
                && t.params().iter().any(|p| p.name() == "source")
        })
        .map(|t| t.name())
        .collect();
    if candidates.is_empty() {
        return None;
    }
    Some(candidates[rng.random_range(0..candidates.len())].to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfcl, geoengine};

    #[test]
    fn augmentation_is_deterministic() {
        let w = geoengine(1, 60);
        let cfg = AugmentConfig::default();
        assert_eq!(augment(&w, &cfg), augment(&w, &cfg));
    }

    #[test]
    fn accepted_variants_are_inside_the_rouge_band() {
        let w = geoengine(1, 60);
        let cfg = AugmentConfig::default();
        let variants = augment(&w, &cfg);
        assert!(!variants.is_empty());
        for v in &variants {
            let source = w
                .train_queries
                .iter()
                .find(|q| q.id == v.source_id)
                .expect("source exists");
            let f1 = rouge_l(&v.text, &source.text).f1 as f64;
            assert!(
                f1 >= cfg.rouge_min && f1 <= cfg.rouge_max,
                "f1={f1} for {:?}",
                v.text
            );
        }
    }

    #[test]
    fn variants_preserve_or_swap_tools_within_category() {
        let w = geoengine(2, 60);
        let variants = augment(&w, &AugmentConfig::default());
        for v in &variants {
            let source = w
                .train_queries
                .iter()
                .find(|q| q.id == v.source_id)
                .unwrap();
            let source_tools = source.gold_tools();
            assert_eq!(v.tools.len(), source_tools.len());
            // All but possibly the last tool are identical.
            for (a, b) in v.tools.iter().zip(&source_tools).take(v.tools.len() - 1) {
                assert_eq!(a, b);
            }
            // A swapped tail stays in the same category.
            let last = v.tools.last().unwrap();
            let src_last = source_tools.last().unwrap();
            if last != src_last {
                let cat_new = w.registry.get_by_name(last).unwrap().category();
                let cat_old = w.registry.get_by_name(src_last).unwrap().category();
                assert_eq!(cat_new, cat_old);
            }
        }
    }

    #[test]
    fn tool_co_usage_survives_augmentation() {
        // The whole point: augmented vqa-mapping queries must still carry
        // the load→filter→caption chain so clustering can group them.
        let w = geoengine(3, 60);
        let variants = augment(&w, &AugmentConfig::default());
        let vqa: Vec<&AugmentedQuery> = variants
            .iter()
            .filter(|v| v.tools.contains(&"caption_batch".to_owned()))
            .collect();
        assert!(!vqa.is_empty());
        for v in vqa {
            assert!(v.tools.contains(&"load_fmow_scene".to_owned()));
        }
    }

    #[test]
    fn bfcl_augmentation_works_on_single_call_queries() {
        let w = bfcl(1, 100);
        let variants = augment(&w, &AugmentConfig::default());
        assert!(!variants.is_empty());
        for v in &variants {
            assert_eq!(v.tools.len(), 1);
        }
    }

    #[test]
    fn per_category_budget_is_respected() {
        let w = geoengine(4, 60);
        let cfg = AugmentConfig {
            per_category: 2,
            variants_per_query: 1,
            rouge_min: 0.0,
            rouge_max: 1.0,
            ..AugmentConfig::default()
        };
        let variants = augment(&w, &cfg);
        // At most 2 sources per category.
        for cat in w.categories() {
            let sources: std::collections::HashSet<u64> = variants
                .iter()
                .filter(|v| {
                    w.train_queries
                        .iter()
                        .any(|q| q.id == v.source_id && q.category == cat)
                })
                .map(|v| v.source_id)
                .collect();
            assert!(sources.len() <= 2, "category {cat}");
        }
    }
}
