//! The BFCL-like single-call benchmark: 51 general-purpose functions.
//!
//! Category mix follows the Berkeley Function-Calling Leaderboard's spread
//! of simple-function questions (math, finance, weather, calendar, travel,
//! …). Every query requires exactly one call, and gold arguments are
//! recorded so Success Rate can check "the correct input types according
//! to the function's requirements" (§IV).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lim_json::Value;

use crate::catalog::{build_registry, ParamDef, ToolDef};
use crate::pools::Pool;
use crate::query::{GoldStep, Query, Workload, WorkloadKind};

macro_rules! p {
    ($name:literal, $pool:ident, $req:literal, $desc:literal) => {
        ParamDef {
            name: $name,
            pool: Pool::$pool,
            required: $req,
            desc: $desc,
        }
    };
}

/// The 51 BFCL-like tools.
pub(crate) const TOOLS: &[ToolDef] = &[
    // ------------------------------------------------------ math (6)
    ToolDef {
        name: "calculate_triangle_area",
        category: "math",
        desc: "Calculates the area of a triangle given its base and height",
        params: &[
            p!("base", Amount, true, "Base length of the triangle"),
            p!("height", Amount, true, "Height of the triangle"),
        ],
        templates: &[
            "Find the area of a triangle with base {base} and height {height}",
            "What is the area of a triangle whose base is {base} and height is {height}?",
        ],
    },
    ToolDef {
        name: "solve_quadratic_equation",
        category: "math",
        desc: "Solves a quadratic equation ax^2 + bx + c = 0 and returns its roots",
        params: &[
            p!("a", Amount, true, "Quadratic coefficient"),
            p!("b", Amount, true, "Linear coefficient"),
            p!("c", Amount, true, "Constant term"),
        ],
        templates: &[
            "Solve the quadratic equation with coefficients a={a}, b={b}, c={c}",
            "Find the roots of {a}x^2 + {b}x + {c} = 0",
        ],
    },
    ToolDef {
        name: "matrix_determinant",
        category: "math",
        desc: "Computes the determinant of a square matrix of a given size filled with a value",
        params: &[
            p!("size", SmallInt, true, "Matrix dimension"),
            p!("fill", Amount, true, "Value used to fill the matrix"),
        ],
        templates: &[
            "Compute the determinant of a {size}x{size} matrix filled with {fill}",
        ],
    },
    ToolDef {
        name: "polynomial_integral",
        category: "math",
        desc: "Integrates a polynomial of a given degree over an interval",
        params: &[
            p!("degree", SmallInt, true, "Polynomial degree"),
            p!("lower", Amount, true, "Lower bound of the interval"),
            p!("upper", Amount, true, "Upper bound of the interval"),
        ],
        templates: &[
            "Integrate a degree {degree} polynomial from {lower} to {upper}",
        ],
    },
    ToolDef {
        name: "prime_factorization",
        category: "math",
        desc: "Returns the prime factorization of a positive integer",
        params: &[p!("number", SmallInt, true, "Integer to factorize")],
        templates: &[
            "What is the prime factorization of {number}?",
            "Factor {number} into primes",
        ],
    },
    ToolDef {
        name: "greatest_common_divisor",
        category: "math",
        desc: "Computes the greatest common divisor of two integers",
        params: &[
            p!("first", SmallInt, true, "First integer"),
            p!("second", SmallInt, true, "Second integer"),
        ],
        templates: &["Find the greatest common divisor of {first} and {second}"],
    },
    // ------------------------------------------------ statistics (4)
    ToolDef {
        name: "mean_calculator",
        category: "statistics",
        desc: "Calculates the arithmetic mean of a sequence of equally spaced numbers",
        params: &[
            p!("start", Amount, true, "First number of the sequence"),
            p!("count", SmallInt, true, "How many numbers"),
        ],
        templates: &["Compute the mean of {count} numbers starting at {start}"],
    },
    ToolDef {
        name: "standard_deviation",
        category: "statistics",
        desc: "Calculates the standard deviation of a uniform sample with given range",
        params: &[
            p!("low", Amount, true, "Sample minimum"),
            p!("high", Amount, true, "Sample maximum"),
        ],
        templates: &["What is the standard deviation of a uniform sample between {low} and {high}?"],
    },
    ToolDef {
        name: "linear_regression_fit",
        category: "statistics",
        desc: "Fits a simple linear regression over n synthetic observations and returns slope and intercept",
        params: &[p!("observations", SmallInt, true, "Number of observations")],
        templates: &["Fit a linear regression over {observations} observations"],
    },
    ToolDef {
        name: "binomial_probability",
        category: "statistics",
        desc: "Computes the probability of k successes in n Bernoulli trials",
        params: &[
            p!("trials", SmallInt, true, "Number of trials"),
            p!("successes", SmallInt, true, "Number of successes"),
        ],
        templates: &[
            "What is the probability of {successes} successes in {trials} coin-flip trials?",
        ],
    },
    // --------------------------------------------------- finance (5)
    ToolDef {
        name: "compound_interest",
        category: "finance",
        desc: "Computes compound interest on a principal over a number of years",
        params: &[
            p!("principal", Amount, true, "Initial amount"),
            p!("years", SmallInt, true, "Investment horizon in years"),
        ],
        templates: &[
            "How much is {principal} worth after {years} years of compound interest?",
        ],
    },
    ToolDef {
        name: "stock_price_lookup",
        category: "finance",
        desc: "Looks up the latest stock price for a ticker symbol",
        params: &[p!("ticker", Ticker, true, "Stock ticker symbol")],
        templates: &[
            "What is the current stock price of {ticker}?",
            "Get me the latest quote for {ticker}",
        ],
    },
    ToolDef {
        name: "currency_converter",
        category: "finance",
        desc: "Converts a monetary amount between two currencies using live exchange rates",
        params: &[
            p!("amount", Amount, true, "Amount to convert"),
            p!("from_currency", CurrencyCode, true, "Source currency code"),
            p!("to_currency", CurrencyCode, true, "Target currency code"),
        ],
        templates: &[
            "Convert {amount} {from_currency} to {to_currency}",
            "How much is {amount} {from_currency} in {to_currency}?",
        ],
    },
    ToolDef {
        name: "mortgage_payment",
        category: "finance",
        desc: "Calculates the monthly payment of a fixed-rate mortgage",
        params: &[
            p!("principal", Amount, true, "Loan principal"),
            p!("years", SmallInt, true, "Loan term in years"),
        ],
        templates: &[
            "What is the monthly payment on a {principal} mortgage over {years} years?",
        ],
    },
    ToolDef {
        name: "investment_return",
        category: "finance",
        desc: "Computes the total return of an investment given start and end values",
        params: &[
            p!("initial", Amount, true, "Initial investment value"),
            p!("final_value", Amount, true, "Final investment value"),
        ],
        templates: &[
            "What is the return of an investment that grew from {initial} to {final_value}?",
        ],
    },
    // -------------------------------------------------- datetime (4)
    ToolDef {
        name: "timezone_convert",
        category: "datetime",
        desc: "Converts a time between the local time zones of two cities",
        params: &[
            p!("time_city", City, true, "City whose local time is given"),
            p!("target_city", City, true, "City to convert the time into"),
        ],
        templates: &[
            "If it is noon in {time_city}, what time is it in {target_city}?",
        ],
    },
    ToolDef {
        name: "date_difference",
        category: "datetime",
        desc: "Computes the number of days between two calendar dates",
        params: &[
            p!("start_date", Date, true, "Start date"),
            p!("end_date", Date, true, "End date"),
        ],
        templates: &["How many days are there between {start_date} and {end_date}?"],
    },
    ToolDef {
        name: "add_business_days",
        category: "datetime",
        desc: "Adds a number of business days to a date, skipping weekends",
        params: &[
            p!("date", Date, true, "Starting date"),
            p!("days", SmallInt, true, "Business days to add"),
        ],
        templates: &["What date is {days} business days after {date}?"],
    },
    ToolDef {
        name: "holiday_lookup",
        category: "datetime",
        desc: "Lists the public holidays of a country in a given year",
        params: &[
            p!("country", Country, true, "Country name"),
            p!("year", Year, true, "Calendar year"),
        ],
        templates: &["List the public holidays in {country} for {year}"],
    },
    // --------------------------------------------------- weather (3)
    ToolDef {
        name: "current_weather",
        category: "weather",
        desc: "Fetches the current weather conditions for a city",
        params: &[p!("city", City, true, "City name")],
        templates: &[
            "What's the weather like in {city} right now?",
            "Get the current weather conditions in {city}",
        ],
    },
    ToolDef {
        name: "weather_forecast",
        category: "weather",
        desc: "Fetches a multi-day weather forecast for a city",
        params: &[
            p!("city", City, true, "City name"),
            p!("days", SmallInt, true, "Forecast horizon in days"),
        ],
        templates: &["Give me the {days}-day weather forecast for {city}"],
    },
    ToolDef {
        name: "air_quality_index",
        category: "weather",
        desc: "Reports the current air quality index of a city",
        params: &[p!("city", City, true, "City name")],
        templates: &["What is the air quality index in {city} today?"],
    },
    // ------------------------------------------------- geography (4)
    ToolDef {
        name: "country_capital",
        category: "geography",
        desc: "Returns the capital city of a country",
        params: &[p!("country", Country, true, "Country name")],
        templates: &["What is the capital of {country}?"],
    },
    ToolDef {
        name: "distance_between_cities",
        category: "geography",
        desc: "Computes the great-circle distance between two cities",
        params: &[
            p!("from_city", City, true, "Origin city"),
            p!("to_city", City, true, "Destination city"),
        ],
        templates: &["How far is {from_city} from {to_city}?"],
    },
    ToolDef {
        name: "elevation_lookup",
        category: "geography",
        desc: "Looks up the elevation above sea level of a city",
        params: &[p!("city", City, true, "City name")],
        templates: &["What is the elevation of {city}?"],
    },
    ToolDef {
        name: "timezone_of_location",
        category: "geography",
        desc: "Returns the IANA time zone of a city",
        params: &[p!("city", City, true, "City name")],
        templates: &["Which time zone is {city} in?"],
    },
    // ------------------------------------------------ conversion (4)
    ToolDef {
        name: "unit_convert_length",
        category: "conversion",
        desc: "Converts a length measurement between units",
        params: &[
            p!("value", Amount, true, "Length value"),
            p!("from_unit", LengthUnit, true, "Source unit"),
            p!("to_unit", LengthUnit, true, "Target unit"),
        ],
        templates: &["Convert {value} {from_unit} to {to_unit}"],
    },
    ToolDef {
        name: "unit_convert_mass",
        category: "conversion",
        desc: "Converts a mass measurement between units",
        params: &[
            p!("value", Amount, true, "Mass value"),
            p!("from_unit", MassUnit, true, "Source unit"),
            p!("to_unit", MassUnit, true, "Target unit"),
        ],
        templates: &["Convert {value} {from_unit} into {to_unit}"],
    },
    ToolDef {
        name: "temperature_convert",
        category: "conversion",
        desc: "Converts a temperature between celsius, fahrenheit and kelvin",
        params: &[
            p!("value", Amount, true, "Temperature value"),
            p!("from_unit", TempUnit, true, "Source scale"),
            p!("to_unit", TempUnit, true, "Target scale"),
        ],
        templates: &["Convert {value} degrees {from_unit} to {to_unit}"],
    },
    ToolDef {
        name: "number_base_convert",
        category: "conversion",
        desc: "Converts an integer between numeral bases such as binary and hexadecimal",
        params: &[
            p!("number", SmallInt, true, "Integer to convert"),
            p!("base", SmallInt, true, "Target base"),
        ],
        templates: &["Convert the number {number} to base {base}"],
    },
    // ------------------------------------------------------ text (4)
    ToolDef {
        name: "text_translate",
        category: "text",
        desc: "Translates text into a target natural language",
        params: &[
            p!("text", Phrase, true, "Text to translate"),
            p!("target_language", Language, true, "Target language"),
        ],
        templates: &[
            "Translate '{text}' into {target_language}",
            "How do you say '{text}' in {target_language}?",
        ],
    },
    ToolDef {
        name: "sentiment_analysis",
        category: "text",
        desc: "Classifies the sentiment of a piece of text as positive, negative or neutral",
        params: &[p!("text", Phrase, true, "Text to analyse")],
        templates: &["What is the sentiment of '{text}'?"],
    },
    ToolDef {
        name: "text_summarize",
        category: "text",
        desc: "Produces a short summary of a longer text passage",
        params: &[
            p!("text", Phrase, true, "Text to summarise"),
            p!("sentences", SmallInt, true, "Summary length in sentences"),
        ],
        templates: &["Summarise '{text}' in {sentences} sentences"],
    },
    ToolDef {
        name: "regex_match",
        category: "text",
        desc: "Tests whether a text matches a regular-expression pattern",
        params: &[
            p!("text", Phrase, true, "Text to test"),
            p!("pattern", Phrase, true, "Regular expression"),
        ],
        templates: &["Does '{text}' match the pattern '{pattern}'?"],
    },
    // ------------------------------------------------------- web (4)
    ToolDef {
        name: "web_search",
        category: "web",
        desc: "Searches the web and returns the most relevant page snippets",
        params: &[p!("query", Phrase, true, "Search query")],
        templates: &["Search the web for '{query}'"],
    },
    ToolDef {
        name: "url_shorten",
        category: "web",
        desc: "Shortens a long URL into a compact link",
        params: &[p!("url", Url, true, "URL to shorten")],
        templates: &["Shorten this link: {url}"],
    },
    ToolDef {
        name: "http_get_json",
        category: "web",
        desc: "Fetches a URL and returns its JSON payload",
        params: &[p!("url", Url, true, "Endpoint URL")],
        templates: &["Fetch the JSON data from {url}"],
    },
    ToolDef {
        name: "domain_whois",
        category: "web",
        desc: "Looks up WHOIS registration information for a domain",
        params: &[p!("url", Url, true, "Domain or URL")],
        templates: &["Who registered the domain {url}?"],
    },
    // -------------------------------------------------- calendar (4)
    ToolDef {
        name: "create_calendar_event",
        category: "calendar",
        desc: "Creates a calendar event with a title on a given date",
        params: &[
            p!("title", Phrase, true, "Event title"),
            p!("date", Date, true, "Event date"),
        ],
        templates: &["Create a calendar event '{title}' on {date}"],
    },
    ToolDef {
        name: "list_events",
        category: "calendar",
        desc: "Lists all calendar events on a given date",
        params: &[p!("date", Date, true, "Date to list")],
        templates: &["What's on my calendar for {date}?"],
    },
    ToolDef {
        name: "delete_event",
        category: "calendar",
        desc: "Deletes a calendar event by title on a given date",
        params: &[
            p!("title", Phrase, true, "Event title"),
            p!("date", Date, true, "Event date"),
        ],
        templates: &["Delete the event '{title}' scheduled for {date}"],
    },
    ToolDef {
        name: "find_free_slot",
        category: "calendar",
        desc: "Finds the first free time slot of a given length on a date",
        params: &[
            p!("date", Date, true, "Date to search"),
            p!("duration_minutes", SmallInt, true, "Required slot length in minutes"),
        ],
        templates: &["Find me a free {duration_minutes}-minute slot on {date}"],
    },
    // ---------------------------------------------------- sports (3)
    ToolDef {
        name: "game_score_lookup",
        category: "sports",
        desc: "Looks up the latest game score for a sports team",
        params: &[p!("team", Team, true, "Team name")],
        templates: &["What was the score of the last {team} game?"],
    },
    ToolDef {
        name: "player_stats",
        category: "sports",
        desc: "Fetches season statistics for an athlete",
        params: &[p!("player", Player, true, "Player name")],
        templates: &["Show me the season stats for {player}"],
    },
    ToolDef {
        name: "team_schedule",
        category: "sports",
        desc: "Returns the upcoming schedule of a sports team",
        params: &[p!("team", Team, true, "Team name")],
        templates: &["When do the {team} play next?"],
    },
    // --------------------------------------------------- science (3)
    ToolDef {
        name: "molecular_weight",
        category: "science",
        desc: "Computes the molecular weight of a chemical formula",
        params: &[p!("formula", Molecule, true, "Chemical formula")],
        templates: &["What is the molecular weight of {formula}?"],
    },
    ToolDef {
        name: "planet_info",
        category: "science",
        desc: "Returns physical facts about a planet of the solar system",
        params: &[p!("planet", Planet, true, "Planet name")],
        templates: &["Tell me about the planet {planet}"],
    },
    ToolDef {
        name: "gene_lookup",
        category: "science",
        desc: "Looks up summary information about a human gene symbol",
        params: &[p!("gene", Gene, true, "Gene symbol")],
        templates: &["What does the gene {gene} do?"],
    },
    // ---------------------------------------------------- travel (3)
    ToolDef {
        name: "flight_search",
        category: "travel",
        desc: "Searches for flights between two cities on a date",
        params: &[
            p!("from_city", City, true, "Departure city"),
            p!("to_city", City, true, "Arrival city"),
            p!("date", Date, true, "Travel date"),
        ],
        templates: &["Find flights from {from_city} to {to_city} on {date}"],
    },
    ToolDef {
        name: "hotel_search",
        category: "travel",
        desc: "Searches for hotels in a city for a number of nights",
        params: &[
            p!("city", City, true, "Destination city"),
            p!("nights", SmallInt, true, "Number of nights"),
        ],
        templates: &["Find a hotel in {city} for {nights} nights"],
    },
    ToolDef {
        name: "car_rental_quote",
        category: "travel",
        desc: "Gets a rental car quote in a city for a number of days",
        params: &[
            p!("city", City, true, "Pick-up city"),
            p!("days", SmallInt, true, "Rental duration in days"),
        ],
        templates: &["How much is a rental car in {city} for {days} days?"],
    },
];

/// Builds the BFCL-like workload: 51 tools, `n_queries` single-call
/// evaluation queries and a 60-query training split for the augmenter.
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics only if the static catalog is internally inconsistent (covered
/// by tests).
pub fn bfcl(seed: u64, n_queries: usize) -> Workload {
    let registry = build_registry(TOOLS).expect("static BFCL catalog is valid");
    let queries = generate(seed, n_queries, 0);
    let train_queries = generate(seed ^ 0x5EED_CAFE, 60, 1_000_000);
    Workload {
        name: "bfcl",
        kind: WorkloadKind::SingleCall,
        registry,
        queries,
        train_queries,
    }
}

fn generate(seed: u64, n: usize, id_base: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            // Round-robin over tools to guarantee coverage, shuffled by the
            // template/slot draws.
            let def = &TOOLS[i % TOOLS.len()];
            let (text, args) = instantiate(def, &mut rng);
            Query {
                id: id_base + i as u64,
                text,
                category: def.category.to_owned(),
                steps: vec![GoldStep {
                    tool: def.name.to_owned(),
                    args,
                }],
            }
        })
        .collect()
}

/// Fills one template of `def` with pool draws; returns (query text, gold
/// args). Shared with the GeoEngine generator.
pub(crate) fn instantiate(def: &ToolDef, rng: &mut StdRng) -> (String, Value) {
    let template = def.templates[rng.random_range(0..def.templates.len())];
    let mut text = template.to_owned();
    let mut args = Value::object::<&str, _>([]);
    for p in def.params {
        let (display, value) = p.pool.sample(rng);
        let placeholder = format!("{{{}}}", p.name);
        let mentioned = text.contains(&placeholder);
        if mentioned {
            text = text.replace(&placeholder, &display);
        }
        if p.required || mentioned {
            args.insert(p.name, value);
        }
    }
    (text, args)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_exactly_51_tools() {
        assert_eq!(TOOLS.len(), 51);
    }

    #[test]
    fn catalog_names_are_unique() {
        let mut names: Vec<&str> = TOOLS.iter().map(|t| t.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn every_template_placeholder_is_a_param() {
        for def in TOOLS {
            for template in def.templates {
                let mut rest = *template;
                while let Some(start) = rest.find('{') {
                    let end = rest[start..].find('}').expect("balanced braces") + start;
                    let name = &rest[start + 1..end];
                    assert!(
                        def.params.iter().any(|p| p.name == name),
                        "tool {} references unknown param {{{name}}}",
                        def.name
                    );
                    rest = &rest[end + 1..];
                }
            }
        }
    }

    #[test]
    fn every_tool_has_description_and_template() {
        for def in TOOLS {
            assert!(!def.desc.is_empty(), "{}", def.name);
            assert!(!def.templates.is_empty(), "{}", def.name);
        }
    }

    #[test]
    fn generated_queries_have_valid_gold_calls() {
        let w = bfcl(1, 230);
        for q in &w.queries {
            assert_eq!(q.steps.len(), 1);
            let step = &q.steps[0];
            let spec = w
                .registry
                .get_by_name(&step.tool)
                .expect("gold tool exists");
            let call = lim_tools::ToolCall::new(step.tool.clone(), step.args.clone());
            assert!(
                spec.validate_call(&call).is_ok(),
                "gold args invalid for {}: {:?}",
                step.tool,
                step.args
            );
        }
    }

    #[test]
    fn queries_cover_every_tool() {
        let w = bfcl(2, 230);
        for def in TOOLS {
            assert!(
                w.queries.iter().any(|q| q.steps[0].tool == def.name),
                "no query exercises {}",
                def.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = bfcl(7, 50);
        let b = bfcl(7, 50);
        assert_eq!(a.queries, b.queries);
        let c = bfcl(8, 50);
        assert_ne!(a.queries, c.queries);
    }

    #[test]
    fn query_text_mentions_sampled_values() {
        let w = bfcl(3, 100);
        // No unsubstituted placeholders survive.
        for q in &w.queries {
            assert!(!q.text.contains('{'), "{}", q.text);
            assert!(!q.text.contains('}'), "{}", q.text);
        }
    }

    #[test]
    fn train_split_is_disjoint_from_eval() {
        let w = bfcl(4, 100);
        let eval_ids: Vec<u64> = w.queries.iter().map(|q| q.id).collect();
        assert!(w.train_queries.iter().all(|q| !eval_ids.contains(&q.id)));
        assert_eq!(w.train_queries.len(), 60);
    }
}
