//! Query and workload containers.

use lim_json::Value;
use lim_tools::ToolRegistry;

/// Which benchmark regime a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// One independent function call per query (BFCL-like).
    SingleCall,
    /// Sequential chains; step *i* consumes step *i−1*'s output
    /// (GeoEngine-like).
    Sequential,
}

/// Ground truth for one call step of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldStep {
    /// Name of the tool this step must call.
    pub tool: String,
    /// Gold arguments (JSON object) the call must carry.
    pub args: Value,
}

/// One benchmark query with its gold call chain.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Stable id within the workload (also the per-query RNG stream id).
    pub id: u64,
    /// Natural-language user request.
    pub text: String,
    /// Benchmark category (the paper's "question types" used for
    /// augmentation sampling).
    pub category: String,
    /// Gold steps in execution order; length 1 for single-call workloads.
    pub steps: Vec<GoldStep>,
}

impl Query {
    /// Names of the gold tools, in step order.
    pub fn gold_tools(&self) -> Vec<&str> {
        self.steps.iter().map(|s| s.tool.as_str()).collect()
    }
}

/// A complete benchmark: tool catalog plus evaluation and training queries.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (`"bfcl"` or `"geoengine"`).
    pub name: &'static str,
    /// Single-call or sequential regime.
    pub kind: WorkloadKind,
    /// The full tool catalog queries select from.
    pub registry: ToolRegistry,
    /// Evaluation queries (the paper uses mini-batches of 230).
    pub queries: Vec<Query>,
    /// Held-out training queries used only by the Level-2 augmenter.
    pub train_queries: Vec<Query>,
}

impl Workload {
    /// Distinct categories present in the evaluation queries.
    pub fn categories(&self) -> Vec<&str> {
        let mut seen: Vec<&str> = Vec::new();
        for q in &self.queries {
            if !seen.contains(&q.category.as_str()) {
                seen.push(&q.category);
            }
        }
        seen
    }

    /// Mean gold-chain length over evaluation queries.
    pub fn mean_chain_len(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries.iter().map(|q| q.steps.len()).sum::<usize>() as f64 / self.queries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gold_tools_lists_step_order() {
        let q = Query {
            id: 0,
            text: "t".into(),
            category: "c".into(),
            steps: vec![
                GoldStep {
                    tool: "a".into(),
                    args: Value::object::<&str, _>([]),
                },
                GoldStep {
                    tool: "b".into(),
                    args: Value::object::<&str, _>([]),
                },
            ],
        };
        assert_eq!(q.gold_tools(), vec!["a", "b"]);
    }
}
