//! Table-driven tool-catalog construction.

use lim_tools::{ParamSpec, ParamType, RegistryError, ToolRegistry, ToolSpec};

use crate::pools::Pool;

/// Declarative parameter definition used by the static catalogs.
#[derive(Debug, Clone, Copy)]
pub struct ParamDef {
    /// Parameter name as it appears in the schema and gold arguments.
    pub name: &'static str,
    /// Which pool fills this parameter when generating queries.
    pub pool: Pool,
    /// Whether the schema marks it required.
    pub required: bool,
    /// Schema description.
    pub desc: &'static str,
}

/// Declarative tool definition used by the static catalogs.
#[derive(Debug, Clone, Copy)]
pub struct ToolDef {
    /// Unique tool name.
    pub name: &'static str,
    /// Benchmark category (the paper's question types).
    pub category: &'static str,
    /// Natural-language description (embedded for Search Level 1).
    pub desc: &'static str,
    /// Parameters.
    pub params: &'static [ParamDef],
    /// Query templates; `{param}` placeholders are replaced by pool draws.
    pub templates: &'static [&'static str],
}

impl ToolDef {
    /// Converts the definition into a full [`ToolSpec`].
    pub fn to_spec(&self) -> ToolSpec {
        let mut builder = ToolSpec::builder(self.name)
            .description(self.desc)
            .category(self.category);
        for p in self.params {
            let param_type = pool_param_type(p.pool);
            let spec = if p.required {
                ParamSpec::required(p.name, param_type, p.desc)
            } else {
                ParamSpec::optional(p.name, param_type, p.desc)
            };
            builder = builder.param(spec);
        }
        builder.build()
    }
}

/// JSON type produced by a pool.
fn pool_param_type(pool: Pool) -> ParamType {
    match pool {
        Pool::Year | Pool::SmallInt => ParamType::Integer,
        Pool::Amount => ParamType::Number,
        _ => ParamType::String,
    }
}

/// Builds a [`ToolRegistry`] from a static catalog.
///
/// # Errors
///
/// Returns [`RegistryError`] if the catalog contains duplicate names
/// (a bug in the static tables, caught by tests).
pub fn build_registry(defs: &[ToolDef]) -> Result<ToolRegistry, RegistryError> {
    ToolRegistry::from_specs(defs.iter().map(ToolDef::to_spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &[ToolDef] = &[ToolDef {
        name: "demo_tool",
        category: "demo",
        desc: "A demonstration tool",
        params: &[ParamDef {
            name: "city",
            pool: Pool::City,
            required: true,
            desc: "City name",
        }],
        templates: &["Do the demo for {city}"],
    }];

    #[test]
    fn to_spec_maps_fields() {
        let spec = SAMPLE[0].to_spec();
        assert_eq!(spec.name(), "demo_tool");
        assert_eq!(spec.category(), "demo");
        assert_eq!(spec.params().len(), 1);
        assert!(spec.params()[0].is_required());
    }

    #[test]
    fn registry_builds() {
        let reg = build_registry(SAMPLE).unwrap();
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn numeric_pools_map_to_numeric_types() {
        assert_eq!(pool_param_type(Pool::Year), ParamType::Integer);
        assert_eq!(pool_param_type(Pool::Amount), ParamType::Number);
        assert_eq!(pool_param_type(Pool::City), ParamType::String);
    }
}
