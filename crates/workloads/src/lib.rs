//! Synthetic benchmark workloads — the BFCL and GeoEngine substitutes.
//!
//! The paper evaluates on two benchmarks whose *shapes* differ in exactly
//! one important way:
//!
//! * **BFCL** (Berkeley Function-Calling Leaderboard): 51 functions,
//!   general-purpose categories, one independent function call per query —
//!   "it handles each sub-question independently";
//! * **GeoEngine**: 46 geospatial tools, *sequential* chains where "each
//!   call depends on the previous result".
//!
//! This crate rebuilds both at full size: real tool schemas (rendered to
//! JSON by `lim-tools`, so prompt bytes are honest), seeded query
//! generators with gold labels (tool + arguments per step, enabling exact
//! Tool-Accuracy and Success-Rate scoring), a train/eval split, and the
//! GPT-4-substitute [`augment`] module that produces the "contextually
//! proximate" noisy queries Search Level 2 clusters over (§III-A).
//!
//! For serving experiments, the [`trace`] module turns a workload's query
//! pool into Zipf-skewed session traces (see `lim-serve`), and the
//! [`churn`] module stamps seeded live-catalog mutation schedules
//! (register/retire events) onto those traces.
//!
//! # Examples
//!
//! ```
//! use lim_workloads::{bfcl, geoengine};
//!
//! let b = bfcl(42, 230);
//! assert_eq!(b.registry.len(), 51);
//! assert_eq!(b.queries.len(), 230);
//! assert!(b.queries.iter().all(|q| q.steps.len() == 1));
//!
//! let g = geoengine(42, 230);
//! assert_eq!(g.registry.len(), 46);
//! assert!(g.queries.iter().any(|q| q.steps.len() >= 2));
//! ```

#![warn(missing_docs)]

pub mod augment;
pub mod carbon;
pub mod churn;
pub mod pools;
pub mod synthetic;
pub mod trace;

mod bfcl;
mod catalog;
mod geoengine;
mod query;

pub use bfcl::bfcl;
pub use catalog::{build_registry, ParamDef, ToolDef};
pub use geoengine::geoengine;
pub use query::{GoldStep, Query, Workload, WorkloadKind};

#[cfg(test)]
mod tests;
