//! Seeded live-catalog churn generation.
//!
//! A static trace exercises a frozen catalog; a deployed assistant's
//! catalog *drifts* — plugins install, deprecated tools disappear — while
//! the request stream keeps flowing. This module stamps a deterministic
//! mutation schedule onto an existing [`SessionTrace`]: synthetic tool
//! registrations drawn from a vocabulary orthogonal to the benchmark's
//! (so a probe never hijacks a real query's retrieval), and retirements
//! restricted to tools no evaluation query's gold chain references (plus
//! probes registered earlier in the same schedule). Accuracy through
//! churn is therefore comparable to the static baseline: every tool a
//! gold chain needs stays live for the whole trace.
//!
//! Everything derives from [`ChurnConfig::seed`] alone, so the same
//! config always yields the same schedule — the property the CI churn
//! gate's bit-identity comparisons rest on.
//!
//! # Examples
//!
//! ```
//! use lim_workloads::{bfcl, churn::{with_churn, ChurnConfig}};
//! use lim_workloads::trace::{zipf_trace, TraceConfig};
//!
//! let w = bfcl(7, 60);
//! let base = zipf_trace(&w, &TraceConfig { seed: 1, ..TraceConfig::default() });
//! let churned = with_churn(&w, base.clone(), &ChurnConfig::default());
//! assert_eq!(churned.sessions, base.sessions, "requests untouched");
//! assert!(!churned.churn.is_empty());
//! assert!(churned.validate_churn().is_ok());
//! ```

use lim_tools::{ParamType, ToolDoc};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::query::Workload;
use crate::trace::{ChurnEvent, ChurnOp, SessionTrace};

/// How much catalog churn to stamp onto a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnConfig {
    /// Seed for the mutation schedule (positions, op order, retire
    /// targets). Independent of the trace seed so the same trace can be
    /// replayed under many schedules.
    pub seed: u64,
    /// Number of synthetic tool registrations.
    pub registers: usize,
    /// Number of retirements. Targets are drawn from gold-safe catalog
    /// tools and earlier-registered probes; if both pools run dry the
    /// surplus retirements are dropped (never a gold tool).
    pub retires: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            seed: 0x0C4A_7106,
            registers: 4,
            retires: 4,
        }
    }
}

/// Word bank for synthetic probe descriptions — deliberately orthogonal
/// to the bfcl/geoengine vocabularies so a probe's embedding never
/// outranks a real tool on a real query.
const PROBE_WORDS: [&str; 8] = [
    "zephyr", "quasar", "obsidian", "vellum", "krypton", "solstice", "umbra", "fjord",
];

/// Builds the `n`-th synthetic probe tool for a churn schedule.
///
/// Names embed the seed, so probes from different schedules never
/// collide with each other (or with benchmark tools) in one registry.
pub fn synthetic_tool(seed: u64, n: usize) -> ToolDoc {
    let a = PROBE_WORDS[n % PROBE_WORDS.len()];
    let b = PROBE_WORDS[(n / PROBE_WORDS.len() + n + 1) % PROBE_WORDS.len()];
    ToolDoc::new(
        format!("live_probe_{seed:x}_{n}"),
        "live-probe",
        format!("synthetic {a} {b} probe registered mid-trace"),
    )
    .with_param("payload", ParamType::String, true, "opaque probe payload")
}

/// Catalog indices that no evaluation or training query's gold chain
/// references — the only base tools a generated schedule may retire
/// without making gold chains unservable.
pub fn retirable_tools(workload: &Workload) -> Vec<usize> {
    let mut gold: Vec<&str> = workload
        .queries
        .iter()
        .chain(&workload.train_queries)
        .flat_map(|q| q.steps.iter().map(|s| s.tool.as_str()))
        .collect();
    gold.sort_unstable();
    gold.dedup();
    (0..workload.registry.len())
        .filter(|i| {
            let name = workload.registry.get(*i).expect("dense registry").name();
            gold.binary_search(&name).is_err()
        })
        .collect()
}

/// Stamps a seeded mutation schedule onto `trace` (request content and
/// arrivals untouched; any existing churn is replaced).
///
/// Registers and retires alternate, spread across the whole request
/// stream at seeded positions. Retire targets are drawn uniformly from
/// the gold-safe pool ([`retirable_tools`]) plus probes this schedule
/// registered earlier; registered-probe indices assume the probes land
/// at `registry.len()`, `registry.len() + 1`, … in schedule order —
/// which is exactly what a dense registry allocates when the engine
/// applies the events in order.
pub fn with_churn(workload: &Workload, trace: SessionTrace, config: &ChurnConfig) -> SessionTrace {
    let schedule = tenant_schedule(workload, trace.requests(), 0, config.seed, config);
    let mut trace = trace;
    trace.churn = schedule;
    debug_assert!(trace.validate_churn().is_ok());
    trace
}

/// One tenant's seeded schedule, tagged with its tenant id. Positions
/// count global requests (see [`ChurnEvent::after_requests`]).
fn tenant_schedule(
    workload: &Workload,
    total: usize,
    tenant: u64,
    seed: u64,
    config: &ChurnConfig,
) -> Vec<ChurnEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ops = config.registers + config.retires;
    let mut positions: Vec<usize> = (0..ops).map(|_| rng.random_range(0..=total)).collect();
    positions.sort_unstable();

    let base = workload.registry.len();
    let mut retirable = retirable_tools(workload);
    let mut churn = Vec::with_capacity(ops);
    let mut registered = 0usize;
    let mut retired = 0usize;
    for position in positions {
        // Alternate ops while both kinds remain; a retire with no safe
        // target left is dropped rather than aimed at a gold tool.
        let want_register = registered < config.registers
            && (retired >= config.retires || registered <= retired || retirable.is_empty());
        if want_register {
            churn.push(ChurnEvent {
                after_requests: position,
                tenant,
                op: ChurnOp::Register(synthetic_tool(seed, registered)),
            });
            // Earlier probes become retire candidates at their dense,
            // replay-order index.
            retirable.push(base + registered);
            registered += 1;
        } else if !retirable.is_empty() {
            let target = retirable.swap_remove(rng.random_range(0..retirable.len()));
            churn.push(ChurnEvent {
                after_requests: position,
                tenant,
                op: ChurnOp::Retire(target),
            });
            retired += 1;
        }
    }
    churn
}

/// Salts one tenant's churn seed. Tenant 0's salt is zero, so a
/// single-tenant trace churned through [`with_tenant_churn`] carries
/// exactly the [`with_churn`] schedule for the same config.
fn tenant_churn_seed(seed: u64, tenant: u64) -> u64 {
    seed ^ tenant.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Stamps an *interleaved per-tenant* mutation schedule onto a
/// multi-tenant `trace`: every tenant gets its own [`with_churn`]-shaped
/// schedule (independently seeded via `tenant_churn_seed`, computed
/// against the shared base catalog each tenant boots from), and the
/// schedules are merged in nondecreasing global-position order with
/// tenant id as the deterministic tie-break. Request content and
/// arrivals are untouched; any existing churn is replaced.
///
/// For a `tenants == 1` trace this degenerates to exactly
/// [`with_churn`].
pub fn with_tenant_churn(
    workload: &Workload,
    trace: SessionTrace,
    config: &ChurnConfig,
) -> SessionTrace {
    let total = trace.requests();
    let mut churn: Vec<ChurnEvent> = Vec::new();
    for tenant in 0..trace.tenants as u64 {
        churn.extend(tenant_schedule(
            workload,
            total,
            tenant,
            tenant_churn_seed(config.seed, tenant),
            config,
        ));
    }
    // Stable merge: each tenant's schedule is already nondecreasing, so
    // sorting by (position, tenant) preserves intra-tenant op order.
    churn.sort_by_key(|e| (e.after_requests, e.tenant));
    let mut trace = trace;
    trace.churn = churn;
    debug_assert!(trace.validate_churn().is_ok());
    debug_assert!(trace.validate_tenants().is_ok());
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfcl;
    use crate::trace::{zipf_trace, TraceConfig};

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let w = bfcl(3, 50);
        let base = zipf_trace(&w, &TraceConfig::default());
        let config = ChurnConfig::default();
        let a = with_churn(&w, base.clone(), &config);
        let b = with_churn(&w, base.clone(), &config);
        assert_eq!(a, b);
        let other = with_churn(&w, base, &ChurnConfig { seed: 99, ..config });
        assert_ne!(a.churn, other.churn);
    }

    #[test]
    fn retires_never_target_gold_tools() {
        let w = bfcl(3, 50);
        let safe = retirable_tools(&w);
        let base = zipf_trace(&w, &TraceConfig::default());
        let churned = with_churn(
            &w,
            base,
            &ChurnConfig {
                seed: 5,
                registers: 3,
                retires: 6,
            },
        );
        let registers = churned
            .churn
            .iter()
            .filter(|e| matches!(e.op, ChurnOp::Register(_)))
            .count();
        assert_eq!(registers, 3);
        for event in &churned.churn {
            if let ChurnOp::Retire(id) = event.op {
                assert!(
                    safe.contains(&id) || (w.registry.len()..w.registry.len() + 3).contains(&id),
                    "retire {id} targets a gold tool"
                );
            }
        }
    }

    #[test]
    fn tenant_churn_interleaves_per_tenant_schedules() {
        let w = bfcl(3, 50);
        let base = zipf_trace(
            &w,
            &TraceConfig {
                seed: 7,
                tenants: 3,
                tenant_skew: 1.0,
                ..TraceConfig::default()
            },
        );
        let config = ChurnConfig::default();
        let churned = with_tenant_churn(&w, base.clone(), &config);
        assert_eq!(churned, with_tenant_churn(&w, base.clone(), &config));
        assert_eq!(churned.sessions, base.sessions, "requests untouched");
        churned.validate_churn().expect("merged schedule coherent");
        churned.validate_tenants().expect("tenants in range");
        // Every tenant received its own schedule.
        for tenant in 0..3u64 {
            assert!(
                churned.churn.iter().any(|e| e.tenant == tenant),
                "tenant {tenant} got no churn"
            );
        }
        // Tenant 0's sub-schedule is exactly the single-tenant one.
        let single = with_churn(&w, base.clone(), &config);
        let t0: Vec<_> = churned
            .churn
            .iter()
            .filter(|e| e.tenant == 0)
            .cloned()
            .collect();
        assert_eq!(t0, single.churn);
        // And a single-tenant trace degenerates to with_churn outright.
        let solo = zipf_trace(&w, &TraceConfig::default());
        assert_eq!(
            with_tenant_churn(&w, solo.clone(), &config),
            with_churn(&w, solo, &config)
        );
    }

    #[test]
    fn probe_names_are_unique_and_orthogonal() {
        let w = bfcl(3, 50);
        let names: Vec<String> = (0..16).map(|n| synthetic_tool(7, n).name).collect();
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
        for name in &names {
            assert!(w.registry.get_by_name(name).is_none());
        }
    }
}
