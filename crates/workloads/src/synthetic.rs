//! Seeded synthetic tool catalogs for index-scaling experiments.
//!
//! The paper's benchmarks top out at 51 tools, which says nothing about
//! how dispatch behaves at the 100k-tool marketplace scale the roadmap
//! targets. This module fabricates catalogs of "tool embeddings" at any
//! size — clustered the way real tool corpora are (categories of related
//! tools), so approximate indexes face realistic structure rather than
//! uniform noise — together with query vectors drawn near catalog
//! members, so exact ground truth is cheap to compute with a flat scan.
//!
//! Everything is a pure function of the seed: the same `(seed, size,
//! dim)` always yields byte-identical vectors, which is what lets the ann
//! bench commit a baseline and gate regressions deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated catalog plus its query workload.
#[derive(Debug, Clone)]
pub struct SyntheticCatalog {
    /// Vector dimensionality.
    pub dim: usize,
    /// Catalog entries: `(id, embedding)` with ids `0..size`.
    pub vectors: Vec<(u64, Vec<f32>)>,
    /// Query vectors, each perturbed from a random catalog member.
    pub queries: Vec<Vec<f32>>,
}

/// Generates a clustered catalog of `size` tool embeddings and
/// `query_count` nearby queries.
///
/// The catalog is drawn around `size.sqrt()`-ish cluster centres (min 8,
/// max 256) with small jitter, mimicking how tool descriptions bunch into
/// categories. Queries perturb uniformly chosen members, so every query
/// has well-defined near neighbours for recall scoring.
///
/// # Panics
///
/// Panics if `size`, `dim`, or `query_count` is zero.
pub fn synthetic_catalog(
    seed: u64,
    size: usize,
    dim: usize,
    query_count: usize,
) -> SyntheticCatalog {
    assert!(size > 0, "catalog size must be positive");
    assert!(dim > 0, "dimension must be positive");
    assert!(query_count > 0, "query count must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let center_count = ((size as f64).sqrt() as usize).clamp(8, 256).min(size);
    let centers: Vec<Vec<f32>> = (0..center_count)
        .map(|_| (0..dim).map(|_| rng.random_range(-10.0f32..10.0)).collect())
        .collect();
    let vectors: Vec<(u64, Vec<f32>)> = (0..size)
        .map(|i| {
            let center = &centers[rng.random_range(0..center_count)];
            let v = center
                .iter()
                .map(|c| c + rng.random_range(-1.0f32..1.0))
                .collect();
            (i as u64, v)
        })
        .collect();
    let queries: Vec<Vec<f32>> = (0..query_count)
        .map(|_| {
            let anchor = &vectors[rng.random_range(0..size)].1;
            anchor
                .iter()
                .map(|c| c + rng.random_range(-0.5f32..0.5))
                .collect()
        })
        .collect();
    SyntheticCatalog {
        dim,
        vectors,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = synthetic_catalog(7, 500, 16, 10);
        let b = synthetic_catalog(7, 500, 16, 10);
        assert_eq!(a.vectors, b.vectors);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthetic_catalog(7, 100, 8, 4);
        let b = synthetic_catalog(8, 100, 8, 4);
        assert_ne!(a.vectors, b.vectors);
    }

    #[test]
    fn shapes_match_the_request() {
        let c = synthetic_catalog(1, 1000, 32, 16);
        assert_eq!(c.vectors.len(), 1000);
        assert_eq!(c.queries.len(), 16);
        assert!(c.vectors.iter().all(|(_, v)| v.len() == 32));
        assert!(c.queries.iter().all(|q| q.len() == 32));
        // Ids are the catalog positions.
        assert_eq!(c.vectors[999].0, 999);
    }

    #[test]
    fn catalog_is_clustered_not_uniform() {
        // With ~sqrt(n) centres and ±1 jitter inside a ±10 cube, member
        // vectors hug their centres: nearest-neighbour distances must be
        // far below what uniform sampling would give.
        let c = synthetic_catalog(3, 400, 8, 4);
        let d2 =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        let mut near = 0;
        for (i, (_, v)) in c.vectors.iter().enumerate().take(50) {
            let best = c
                .vectors
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, (_, u))| d2(v, u))
                .fold(f32::INFINITY, f32::min);
            if best < 8.0 * 4.0 {
                near += 1;
            }
        }
        assert!(near > 40, "only {near}/50 vectors have a close neighbour");
    }
}
