//! Inverted-file (IVF) approximate index.

use crate::kmeans::{kmeans, nearest};
use crate::neighbor::top_k;
use crate::{IndexError, Metric, Neighbor, VectorIndex};

/// Construction parameters for [`IvfIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfParams {
    /// Number of coarse cells (k-means clusters).
    pub nlist: usize,
    /// Number of cells probed per query.
    pub nprobe: usize,
    /// Seed for the deterministic coarse quantizer.
    pub seed: u64,
}

impl Default for IvfParams {
    fn default() -> Self {
        Self {
            nlist: 16,
            nprobe: 4,
            seed: 0x11F_5EED,
        }
    }
}

/// Approximate k-NN index that probes only the most promising cells.
///
/// Mirrors FAISS `IndexIVFFlat`: a k-means coarse quantizer partitions the
/// collection; a query scores only the vectors stored in its `nprobe`
/// nearest cells. With `nprobe == nlist` the search is exact.
///
/// # Examples
///
/// ```
/// use lim_vecstore::{IvfIndex, IvfParams, Metric, VectorIndex};
///
/// # fn main() -> Result<(), lim_vecstore::IndexError> {
/// let data: Vec<(u64, Vec<f32>)> = (0..64)
///     .map(|i| (i, vec![(i % 8) as f32, (i / 8) as f32]))
///     .collect();
/// let refs: Vec<(u64, &[f32])> = data.iter().map(|(i, v)| (*i, v.as_slice())).collect();
/// let index = IvfIndex::train(2, Metric::Euclidean, IvfParams::default(), &refs)?;
/// let hits = index.search(&[0.0, 0.0], 1);
/// assert_eq!(hits[0].id, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IvfIndex {
    dim: usize,
    metric: Metric,
    params: IvfParams,
    centroids: Vec<Vec<f32>>,
    /// Per-cell storage of (id, vector).
    cells: Vec<Vec<(u64, Vec<f32>)>>,
    /// Total stored entries, live and tombstoned.
    len: usize,
    /// Tombstoned ids in removal order; their postings stay in `cells`
    /// until compaction rewrites them.
    deleted: Vec<u64>,
}

impl IvfIndex {
    /// Trains the coarse quantizer on `items` and adds all of them.
    ///
    /// # Errors
    ///
    /// * [`IndexError::DimMismatch`] if any vector disagrees with `dim`.
    /// * [`IndexError::DuplicateId`] on repeated ids.
    /// * [`IndexError::InsufficientTrainingData`] if `items` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `params.nlist` is zero.
    pub fn train(
        dim: usize,
        metric: Metric,
        params: IvfParams,
        items: &[(u64, &[f32])],
    ) -> Result<Self, IndexError> {
        assert!(dim > 0, "index dimension must be positive");
        assert!(params.nlist > 0, "nlist must be positive");
        if items.is_empty() {
            return Err(IndexError::InsufficientTrainingData {
                supplied: 0,
                clusters: params.nlist,
            });
        }
        for (_, v) in items {
            if v.len() != dim {
                return Err(IndexError::DimMismatch {
                    expected: dim,
                    got: v.len(),
                });
            }
        }
        let mut seen: Vec<u64> = items.iter().map(|(id, _)| *id).collect();
        seen.sort_unstable();
        if let Some(w) = seen.windows(2).find(|w| w[0] == w[1]) {
            return Err(IndexError::DuplicateId(w[0]));
        }

        let vectors: Vec<Vec<f32>> = items.iter().map(|(_, v)| v.to_vec()).collect();
        let result = kmeans(&vectors, params.nlist, params.seed, 25);
        let nlist = result.centroids.len();
        let mut cells: Vec<Vec<(u64, Vec<f32>)>> = vec![Vec::new(); nlist];
        for ((id, v), cell) in items.iter().zip(&result.assignments) {
            cells[*cell].push((*id, v.to_vec()));
        }
        Ok(Self {
            dim,
            metric,
            params,
            centroids: result.centroids,
            cells,
            len: items.len(),
            deleted: Vec::new(),
        })
    }

    /// Adds one more vector after training (assigned to its nearest cell).
    ///
    /// # Errors
    ///
    /// * [`IndexError::DimMismatch`] on wrong dimensionality.
    /// * [`IndexError::DuplicateId`] on a repeated id.
    pub fn add(&mut self, id: u64, vector: &[f32]) -> Result<(), IndexError> {
        if vector.len() != self.dim {
            return Err(IndexError::DimMismatch {
                expected: self.dim,
                got: vector.len(),
            });
        }
        if self
            .cells
            .iter()
            .flatten()
            .any(|(existing, _)| *existing == id)
        {
            return Err(IndexError::DuplicateId(id));
        }
        let cell = nearest(vector, &self.centroids).0;
        self.cells[cell].push((id, vector.to_vec()));
        self.len += 1;
        Ok(())
    }

    /// Tombstones `id`: its posting is skipped by every probe (without
    /// counting as a distance evaluation) until compaction drops it.
    ///
    /// Returns `true` when the removal tripped [`crate::compaction_due`]
    /// and the cells were rewritten in place. Centroids are untouched, so
    /// probing order is unchanged.
    ///
    /// # Errors
    ///
    /// [`IndexError::UnknownId`] if `id` was never added or is already
    /// tombstoned.
    pub fn remove(&mut self, id: u64) -> Result<bool, IndexError> {
        let stored = self
            .cells
            .iter()
            .flatten()
            .any(|(existing, _)| *existing == id);
        if !stored || self.deleted.contains(&id) {
            return Err(IndexError::UnknownId(id));
        }
        self.deleted.push(id);
        if crate::compaction_due(self.deleted.len(), self.len) {
            self.compact();
            return Ok(true);
        }
        Ok(false)
    }

    /// Tombstoned ids in removal order (empty right after a compaction).
    pub fn tombstones(&self) -> &[u64] {
        &self.deleted
    }

    /// Drops every tombstoned posting from its cell (surviving postings
    /// keep their within-cell order) and clears the tombstone list.
    fn compact(&mut self) {
        for cell in &mut self.cells {
            cell.retain(|(id, _)| !self.deleted.contains(id));
        }
        self.len -= self.deleted.len();
        self.deleted.clear();
    }

    /// Number of coarse cells actually trained (≤ `nlist`).
    pub fn cell_count(&self) -> usize {
        self.centroids.len()
    }

    /// The construction parameters.
    pub fn params(&self) -> IvfParams {
        self.params
    }

    /// The metric this index scores with.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The trained coarse centroids, one per cell.
    pub fn centroids(&self) -> &[Vec<f32>] {
        &self.centroids
    }

    /// Per-cell `(id, vector)` postings, parallel to [`IvfIndex::centroids`].
    ///
    /// This is the persistence view: it includes tombstoned postings, which
    /// [`crate::serial`] captures alongside the tombstone list.
    pub fn cells(&self) -> &[Vec<(u64, Vec<f32>)>] {
        &self.cells
    }

    /// Reassembles an index from previously persisted parts (see
    /// [`crate::serial`]) without re-running k-means, so a restored index
    /// probes exactly like the one that was saved.
    ///
    /// # Errors
    ///
    /// * [`IndexError::NotTrained`] if `centroids` is empty or the cell
    ///   list does not pair up with the centroids.
    /// * [`IndexError::DimMismatch`] if any centroid or stored vector
    ///   disagrees with `dim`.
    /// * [`IndexError::DuplicateId`] on repeated ids.
    pub fn from_parts(
        dim: usize,
        metric: Metric,
        params: IvfParams,
        centroids: Vec<Vec<f32>>,
        cells: Vec<Vec<(u64, Vec<f32>)>>,
    ) -> Result<Self, IndexError> {
        if centroids.is_empty() || centroids.len() != cells.len() {
            return Err(IndexError::NotTrained);
        }
        for v in centroids
            .iter()
            .chain(cells.iter().flatten().map(|(_, v)| v))
        {
            if v.len() != dim {
                return Err(IndexError::DimMismatch {
                    expected: dim,
                    got: v.len(),
                });
            }
        }
        let mut seen: Vec<u64> = cells.iter().flatten().map(|(id, _)| *id).collect();
        let len = seen.len();
        seen.sort_unstable();
        if let Some(w) = seen.windows(2).find(|w| w[0] == w[1]) {
            return Err(IndexError::DuplicateId(w[0]));
        }
        Ok(Self {
            dim,
            metric,
            params,
            centroids,
            cells,
            len,
            deleted: Vec::new(),
        })
    }
}

impl IvfIndex {
    /// Searches and also reports how many vector-distance evaluations the
    /// query cost (coarse centroid rankings plus every probed posting) —
    /// the machine-independent latency proxy the ann bench gates on.
    pub fn search_with_stats(&self, query: &[f32], k: usize) -> (Vec<Neighbor>, usize) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        // Rank cells by centroid distance, probe the best nprobe.
        let mut cell_order: Vec<(usize, f32)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, lim_embed::similarity::euclidean_sq(query, c)))
            .collect();
        cell_order.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let probes = self.params.nprobe.max(1).min(cell_order.len());

        let mut evals = self.centroids.len();
        let mut candidates = Vec::new();
        for (cell, _) in cell_order.into_iter().take(probes) {
            for (id, v) in &self.cells[cell] {
                if self.deleted.contains(id) {
                    continue; // tombstone: skipped without a distance eval
                }
                candidates.push(Neighbor::new(*id, self.metric.score(query, v)));
                evals += 1;
            }
        }
        (top_k(candidates, k), evals)
    }
}

impl VectorIndex for IvfIndex {
    /// Number of **live** vectors; tombstoned entries do not count.
    fn len(&self) -> usize {
        self.len - self.deleted.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_with_stats(query, k).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_items() -> Vec<(u64, Vec<f32>)> {
        (0..100u64)
            .map(|i| (i, vec![(i % 10) as f32, (i / 10) as f32]))
            .collect()
    }

    fn build(params: IvfParams) -> IvfIndex {
        let data = grid_items();
        let refs: Vec<(u64, &[f32])> = data.iter().map(|(i, v)| (*i, v.as_slice())).collect();
        IvfIndex::train(2, Metric::Euclidean, params, &refs).unwrap()
    }

    #[test]
    fn exact_when_probing_all_cells() {
        let idx = build(IvfParams {
            nlist: 8,
            nprobe: 8,
            seed: 3,
        });
        let hits = idx.search(&[3.0, 4.0], 1);
        assert_eq!(hits[0].id, 43); // x=3, y=4 → 4*10+3
    }

    #[test]
    fn approximate_search_finds_local_neighbors() {
        let idx = build(IvfParams {
            nlist: 10,
            nprobe: 3,
            seed: 3,
        });
        let hits = idx.search(&[0.0, 0.0], 4);
        // The true nearest (id 0) must be in the probed region.
        assert!(hits.iter().any(|h| h.id == 0));
    }

    #[test]
    fn add_after_training_is_searchable() {
        let mut idx = build(IvfParams::default());
        idx.add(1000, &[50.0, 50.0]).unwrap();
        let hits = idx.search(&[50.0, 50.0], 1);
        assert_eq!(hits[0].id, 1000);
        assert_eq!(idx.len(), 101);
    }

    #[test]
    fn duplicate_ids_rejected_everywhere() {
        let data = grid_items();
        let refs: Vec<(u64, &[f32])> = data.iter().map(|(i, v)| (*i, v.as_slice())).collect();
        let mut dup = refs.clone();
        dup.push((5, dup[0].1));
        assert!(matches!(
            IvfIndex::train(2, Metric::Euclidean, IvfParams::default(), &dup),
            Err(IndexError::DuplicateId(5))
        ));
        let mut idx = build(IvfParams::default());
        assert!(matches!(
            idx.add(5, &[0.0, 0.0]),
            Err(IndexError::DuplicateId(5))
        ));
    }

    #[test]
    fn empty_training_set_is_an_error() {
        let r = IvfIndex::train(2, Metric::Cosine, IvfParams::default(), &[]);
        assert!(matches!(
            r,
            Err(IndexError::InsufficientTrainingData { .. })
        ));
    }

    #[test]
    fn training_rejects_dim_mismatch() {
        let bad: &[f32] = &[1.0];
        let r = IvfIndex::train(2, Metric::Cosine, IvfParams::default(), &[(0, bad)]);
        assert!(matches!(
            r,
            Err(IndexError::DimMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn removed_id_is_skipped_without_distance_evals() {
        let mut idx = build(IvfParams {
            nlist: 8,
            nprobe: 8,
            seed: 3,
        });
        let (_, evals_before) = idx.search_with_stats(&[3.0, 4.0], 1);
        assert!(!idx.remove(43).unwrap());
        let (hits, evals_after) = idx.search_with_stats(&[3.0, 4.0], 1);
        assert_ne!(hits[0].id, 43);
        assert_eq!(evals_after, evals_before - 1);
        assert_eq!(idx.len(), 99);
        assert_eq!(idx.tombstones(), &[43]);
    }

    #[test]
    fn remove_unknown_or_dead_id_is_an_error() {
        let mut idx = build(IvfParams::default());
        assert_eq!(idx.remove(999).unwrap_err(), IndexError::UnknownId(999));
        idx.remove(5).unwrap();
        assert_eq!(idx.remove(5).unwrap_err(), IndexError::UnknownId(5));
        assert_eq!(
            idx.add(5, &[0.0, 0.0]).unwrap_err(),
            IndexError::DuplicateId(5)
        );
    }

    #[test]
    fn compaction_drops_tombstones_and_keeps_centroids() {
        let mut idx = build(IvfParams::default());
        let centroids_before = idx.centroids().to_vec();
        let mut compacted = false;
        for i in 0..25u64 {
            compacted |= idx.remove(i).unwrap();
        }
        assert!(compacted);
        assert!(idx.tombstones().is_empty());
        assert_eq!(idx.centroids(), centroids_before.as_slice());
        let stored: usize = idx.cells().iter().map(Vec::len).sum();
        assert_eq!(stored, idx.len());
        // A compacted id is free again, assigned to its nearest cell.
        idx.add(0, &[0.0, 0.0]).unwrap();
        assert!(idx.search(&[0.0, 0.0], 1)[0].id == 0);
    }

    #[test]
    fn cell_count_bounded_by_nlist() {
        let idx = build(IvfParams {
            nlist: 7,
            nprobe: 2,
            seed: 1,
        });
        assert!(idx.cell_count() <= 7);
        assert!(idx.cell_count() >= 1);
    }
}
